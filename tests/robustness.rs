//! End-to-end robustness acceptance scenario: with faults injected — a ×4
//! straggler, one killed planning worker, and a degraded link — the
//! planning pipeline still delivers every batch exactly once, in order,
//! with a valid plan, and records which fallback tier produced it. An
//! ε-infeasible partition request degrades to a static placement instead
//! of erroring.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dcp::core::dataloader::PlanFn;
use dcp::core::{DcpDataloader, Planner, PlannerConfig, RetryConfig};
use dcp::data::Batch;
use dcp::mask::MaskSpec;
use dcp::sched::schedule::validate_plan;
use dcp::sim::{simulate_plan_faulted, Fault, FaultSpec};
use dcp::types::{AttnSpec, ClusterSpec, DcpError, PlanTier};

fn planner() -> Planner {
    Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    )
}

fn batches() -> Vec<Batch> {
    (0..5)
        .map(|i| Batch {
            seqs: vec![
                (8192 + 1024 * i, MaskSpec::Causal),
                (4096, MaskSpec::paper_lambda()),
            ],
        })
        .collect()
}

#[test]
fn faulted_pipeline_yields_every_batch_once_with_valid_plans() {
    let bs = batches();
    let p = planner();

    // Fault 2 of 3: the planning worker for batch index 2 is killed (its
    // first planning attempt panics, tearing down the look-ahead thread).
    let kill_len = bs[2].seqs[0].0;
    let killed = AtomicUsize::new(0);
    let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
        if seqs[0].0 == kill_len && killed.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("injected: planning worker killed");
        }
        p.plan(seqs)
    });
    let mut loader = DcpDataloader::with_plan_fn(
        plan_fn,
        bs.clone(),
        2,
        RetryConfig {
            batch_deadline: Some(Duration::from_secs(30)),
            max_retries: 1,
            backoff: Duration::from_millis(1),
        },
    );

    // Faults 1 and 3 of 3: a ×4 straggler and a degraded link, injected
    // into the simulated execution of every planned batch.
    let faults = FaultSpec {
        seed: 7,
        faults: vec![
            Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            Fault::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.1,
            },
        ],
    };

    let cluster = ClusterSpec::p4de(1);
    let mut yielded = Vec::new();
    for item in loader.by_ref() {
        let (batch, out) = item.expect("every batch must survive the faults");
        validate_plan(&out.layout, &out.placement, &out.plan).expect("plan is valid");
        assert_eq!(
            out.tier,
            PlanTier::Partitioned,
            "healthy planning takes the partitioned tier; tier is recorded"
        );
        let sim = simulate_plan_faulted(&cluster, &out.plan, &faults).unwrap();
        assert!(sim.total().is_finite() && sim.total() > 0.0);
        yielded.push(batch);
    }
    assert_eq!(yielded, bs, "every batch exactly once, in order");
    assert!(
        loader.replans() >= 1,
        "the killed worker forced a synchronous re-plan"
    );
}

#[test]
fn epsilon_infeasible_request_degrades_to_a_valid_static_plan() {
    // One huge block per device-sized chunk with ε = 0 and no granularity
    // slack: the partitioner cannot meet the balance constraint, so the
    // fallback chain must take over rather than erroring out.
    let planner = Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 4096,
            eps_intra: 0.0,
            strict_epsilon: true,
            ..Default::default()
        },
    );
    let seqs = vec![(16384u32, MaskSpec::Causal), (2048, MaskSpec::Causal)];
    let out = planner.plan(&seqs).expect("fallback must produce a plan");
    assert_ne!(out.tier, PlanTier::Partitioned);
    assert!(
        out.fallback_reason
            .as_deref()
            .unwrap_or_default()
            .contains("partitioned"),
        "the reason records the skipped tier: {:?}",
        out.fallback_reason
    );
    validate_plan(&out.layout, &out.placement, &out.plan).expect("fallback plan is valid");

    // With the chain disabled the same request surfaces the infeasibility.
    let strict = Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 4096,
            eps_intra: 0.0,
            strict_epsilon: true,
            fallback: false,
            ..Default::default()
        },
    );
    match strict.plan(&seqs) {
        Err(DcpError::Infeasible(_)) => {}
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

#[test]
fn retry_backoff_is_charged_against_the_batch_deadline() {
    // A permanently broken batch with a 100 ms deadline and 300 ms linear
    // backoff used to cost deadline + 300 + 600 + 900 ms before giving up:
    // the backoff sleeps ignored the per-batch deadline. They must be
    // clamped to the remaining deadline budget, bounding total wall time
    // per batch at roughly 2 × deadline regardless of the backoff curve —
    // while still running every re-plan attempt.
    let bs = batches();
    let p = planner();
    let kill_len = bs[1].seqs[0].0;
    let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
        if seqs[0].0 == kill_len {
            panic!("injected: permanently broken batch");
        }
        p.plan(seqs)
    });
    let deadline = Duration::from_millis(100);
    let backoff = Duration::from_millis(300);
    let mut loader = DcpDataloader::with_plan_fn(
        plan_fn,
        bs.clone(),
        0, // no look-ahead: the deadline wait itself stays near zero
        RetryConfig {
            batch_deadline: Some(deadline),
            max_retries: 3,
            backoff,
        },
    );
    let t0 = std::time::Instant::now();
    let results: Vec<_> = loader.by_ref().collect();
    let wall = t0.elapsed();
    assert_eq!(results.len(), bs.len());
    assert!(results[1].is_err(), "the broken batch still fails");
    let ev = &loader.replan_events()[0];
    assert_eq!(ev.attempts, 3, "clamping must not skip re-plan attempts");
    // Old behavior slept 300+600+900 ms = 1.8 s on batch 1 alone. The
    // clamped budget allows at most one deadline's worth of sleeping on
    // top of the deadline wait; the healthy batches plan in milliseconds.
    let sleep_total = backoff * 1 + backoff * 2 + backoff * 3;
    assert!(
        wall < sleep_total,
        "retry sleeps must be deadline-bounded: took {wall:?}"
    );
}

#[test]
fn persistent_planner_failure_surfaces_typed_error_without_poisoning() {
    let bs = batches();
    let p = planner();
    let kill_len = bs[1].seqs[0].0;
    let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
        if seqs[0].0 == kill_len {
            panic!("injected: permanently broken batch");
        }
        p.plan(seqs)
    });
    let loader = DcpDataloader::with_plan_fn(
        plan_fn,
        bs.clone(),
        3,
        RetryConfig {
            max_retries: 1,
            backoff: Duration::ZERO,
            ..Default::default()
        },
    );
    let results: Vec<_> = loader.collect();
    assert_eq!(results.len(), bs.len());
    for (i, r) in results.iter().enumerate() {
        if i == 1 {
            match r {
                Err(DcpError::PlanningFailed {
                    batch_index,
                    attempts,
                    ..
                }) => {
                    assert_eq!(*batch_index, 1);
                    assert_eq!(*attempts, 2);
                }
                other => panic!("expected PlanningFailed for batch 1, got {other:?}"),
            }
        } else {
            let (batch, out) = r.as_ref().expect("other batches are unaffected");
            assert_eq!(batch, &bs[i]);
            validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        }
    }
}
