//! Property tests for the plan-IR pass pipeline and the stream verifier
//! (DESIGN.md Sec. 10).
//!
//! Two families of properties:
//!
//! 1. *Legal streams stay legal and bitwise-equal*: any plan the scheduler
//!    renders for a random (layout, placement) pair passes the verifier,
//!    still passes it after the full optimizer pipeline, and — the
//!    load-bearing promise — executes to bitwise-identical merged outputs
//!    and gradients.
//! 2. *Illegal streams are rejected with a typed diagnostic*: random
//!    mutations of a legal stream (wait-before-launch, out-of-range comm
//!    id, duplicated compute item, self-transfer) must each produce a
//!    [`dcp::sched::Diagnostic`] that names the offending instruction
//!    index, never a pass and never a panic.

use dcp::blocks::{BatchLayout, BlockConfig};
use dcp::exec::plans_equivalent;
use dcp::mask::MaskSpec;
use dcp::sched::{
    build_plan, verify_plan, CommId, ExecutionPlan, Instr, PassConfig, PassManager, Payload,
    PayloadKind, Placement, ScheduleConfig, ViolationKind,
};
use dcp::types::AttnSpec;
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = MaskSpec> {
    prop_oneof![
        Just(MaskSpec::Causal),
        Just(MaskSpec::Full),
        (0u32..4, 1u32..32).prop_map(|(sink, window)| MaskSpec::Lambda { sink, window }),
    ]
}

prop_compose! {
    fn arb_case()(
        lens in prop::collection::vec(1u32..150, 1..4),
        masks in prop::collection::vec(arb_mask(), 4),
        bs in 8u32..64,
        n in 2u32..6,
        t in 1u32..5,
        seed in 0u64..1000,
    ) -> (Vec<(u32, MaskSpec)>, u32, u32, u32, u64) {
        let seqs: Vec<(u32, MaskSpec)> = lens
            .iter()
            .zip(masks.iter().cycle())
            .map(|(&l, m)| (l, m.clone()))
            .collect();
        (seqs, bs, n, t, seed)
    }
}

fn random_placement(layout: &BatchLayout, n: u32, seed: u64) -> Placement {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    Placement {
        num_devices: n,
        token_to_dev: (0..layout.token_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
        comp_to_dev: (0..layout.comp_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
    }
}

fn case_plan(
    seqs: &[(u32, MaskSpec)],
    bs: u32,
    n: u32,
    t: u32,
    seed: u64,
) -> (BatchLayout, Placement, ExecutionPlan) {
    let layout = BatchLayout::build(
        AttnSpec::new(2, 2, 4, 2),
        BlockConfig {
            block_size: bs,
            head_blocks: 1,
        },
        seqs,
    )
    .unwrap();
    let placement = random_placement(&layout, n, seed);
    let plan = build_plan(
        &layout,
        &placement,
        &ScheduleConfig {
            divisions: t,
            ..Default::default()
        },
    )
    .unwrap();
    (layout, placement, plan)
}

/// The seeded illegal rewrites. Each returns `true` when it found a place
/// to apply itself (small plans may e.g. have no remote transfer to turn
/// into a self-transfer).
fn mutate(which: u8, plan: &mut ExecutionPlan) -> bool {
    match which % 4 {
        // Move a wait on an input-only op in front of its launch.
        0 => {
            for stream in &mut plan.fwd.devices {
                for i in 0..stream.instrs.len() {
                    if let Instr::CommLaunch(cid) = stream.instrs[i] {
                        let op = &plan.fwd.comms[cid.0 as usize];
                        let input_only = !op.transfers.is_empty()
                            && op.transfers.iter().all(|t| {
                                matches!(t.payload.kind(), PayloadKind::Q | PayloadKind::Kv)
                            });
                        if !input_only {
                            continue;
                        }
                        if let Some(j) = stream.instrs[i + 1..]
                            .iter()
                            .position(|x| *x == Instr::CommWait(cid))
                        {
                            let wait = stream.instrs.remove(i + 1 + j);
                            stream.instrs.insert(i, wait);
                            return true;
                        }
                    }
                }
            }
            false
        }
        // Wait on a comm id outside the op table.
        1 => {
            let bogus = CommId(plan.fwd.comms.len() as u32 + 3);
            plan.fwd.devices[0].instrs.insert(0, Instr::CommWait(bogus));
            true
        }
        // Schedule one computation block twice.
        2 => {
            for stream in &mut plan.fwd.devices {
                for ins in &mut stream.instrs {
                    if let Instr::Attn { items, .. } = ins {
                        if let Some(&c) = items.first() {
                            items.push(c);
                            return true;
                        }
                    }
                }
            }
            false
        }
        // Point a transfer back at its sender.
        _ => {
            for op in &mut plan.fwd.comms {
                for tr in &mut op.transfers {
                    if matches!(tr.payload, Payload::Q(_) | Payload::Kv(_)) {
                        tr.from = tr.to;
                        return true;
                    }
                }
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scheduler output is always verifier-legal, and stays legal through
    /// the full pass pipeline.
    #[test]
    fn passes_preserve_verifier_validity((seqs, bs, n, t, seed) in arb_case()) {
        let (layout, placement, plan) = case_plan(&seqs, bs, n, t, seed);
        verify_plan(&layout, &placement, &plan)
            .map_err(|d| TestCaseError::fail(format!("raw plan illegal: {d}")))?;
        let mut opt = plan.clone();
        let pm = PassManager::new(PassConfig::optimize());
        pm.run_plan(&layout, &placement, &mut opt);
        verify_plan(&layout, &placement, &opt)
            .map_err(|d| TestCaseError::fail(format!("optimized plan illegal: {d}")))?;
    }

    /// The optimizer pipeline preserves merged outputs and gradients
    /// bitwise, checked by executing both plans (fewer cases: each one
    /// runs a full forward+backward twice).
    #[test]
    fn passes_preserve_outputs_bitwise((seqs, bs, n, t, seed) in arb_case()) {
        let (layout, placement, plan) = case_plan(&seqs, bs, n, t, seed);
        let mut opt = plan.clone();
        let pm = PassManager::new(PassConfig::optimize());
        pm.run_plan(&layout, &placement, &mut opt);
        prop_assert!(
            plans_equivalent(&layout, &placement, &plan, &placement, &opt, seed).unwrap(),
            "optimized plan diverged bitwise"
        );
    }

    /// Launch fusion never grows a comm op past the configured cap — for
    /// the default 256 KiB threshold and for tiny random caps that actually
    /// bind at these block sizes. An op that absorbed transfers (bytes
    /// grew) must sit at or under the cap; untouched ops may be any size.
    #[test]
    fn fusion_never_exceeds_the_cap(
        (seqs, bs, n, t, seed) in arb_case(),
        small_cap in 1u64..4096,
    ) {
        let (layout, placement, plan) = case_plan(&seqs, bs, n, t, seed);
        for cap in [small_cap, PassConfig::default().fuse_threshold_bytes] {
            let mut opt = plan.clone();
            let pm = PassManager::new(PassConfig {
                enabled: true,
                dead_comm: false,
                coalesce: false,
                sink: false,
                fuse_threshold_bytes: cap,
                ..PassConfig::default()
            });
            pm.run_plan(&layout, &placement, &mut opt);
            verify_plan(&layout, &placement, &opt)
                .map_err(|d| TestCaseError::fail(format!("fused plan illegal: {d}")))?;
            for (phase, orig) in [(&opt.fwd, &plan.fwd), (&opt.bwd, &plan.bwd)] {
                for (i, op) in phase.comms.iter().enumerate() {
                    let before = orig.comms[i].bytes();
                    if op.bytes() > before {
                        prop_assert!(
                            op.bytes() <= cap,
                            "op {i} fused past the cap: {} > {cap}",
                            op.bytes()
                        );
                    }
                }
            }
        }
    }

    /// Every seeded illegal mutation is rejected with a typed diagnostic
    /// that names the offending instruction index.
    #[test]
    fn mutated_streams_are_rejected((seqs, bs, n, t, seed) in arb_case(), which in 0u8..4) {
        let (layout, placement, plan) = case_plan(&seqs, bs, n, t, seed);
        let mut bad = plan.clone();
        if !mutate(which, &mut bad) {
            // Nothing to mutate in this plan shape (e.g. fully local):
            // vacuously true.
            return Ok(());
        }
        let diag = verify_plan(&layout, &placement, &bad)
            .expect_err("verifier accepted a seeded-illegal stream");
        prop_assert!(
            diag.instr.is_some(),
            "diagnostic must name the offending instruction: {diag}"
        );
        prop_assert!(
            matches!(
                diag.kind,
                ViolationKind::WaitWithoutLaunch
                    | ViolationKind::CommIdOutOfRange
                    | ViolationKind::DuplicateCompute
                    | ViolationKind::SelfTransfer
                    | ViolationKind::MissingInput
                    | ViolationKind::WaitReceivesNothing
                    | ViolationKind::Deadlock
            ),
            "unexpected diagnostic kind for mutation {which}: {diag}"
        );
    }
}
