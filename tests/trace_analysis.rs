//! Acceptance pins for the causal trace analytics (critical-path
//! attribution, online detection, flight recorder) on the pinned 8-device
//! straggler scenario of `tests/robustness.rs`:
//!
//! 1. the streaming detector flags the injected ×4 straggler and raises
//!    zero false positives on the clean runs,
//! 2. the differential critical path attributes at least half of every
//!    faulted-vs-clean makespan delta to the straggling device,
//! 3. a forced verifier diagnostic trips the flight recorder and the
//!    resulting postmortem bundle validates and contains the triggering
//!    event, and
//! 4. (property) attribution components tile the simulated makespan
//!    exactly on randomized faulted plans.

use dcp::core::{Planner, PlannerConfig};
use dcp::data::Batch;
use dcp::mask::MaskSpec;
use dcp::obs::{
    critical_path, diff_attribution, AnalysisScope, DetectorBank, DetectorConfig, Event,
    FlightRecorder, IncidentKind, ObsSink, Phase, PostmortemBundle, RecorderConfig, Source,
};
use dcp::sched::plan::{Instr, PhasePlan};
use dcp::sched::verify::{verify_phase, VerifyCtx};
use dcp::sim::{estimate_fault_spec, simulate_phase_faulted, trace_to_obs, Fault, FaultSpec};
use dcp::types::{AttnSpec, ClusterSpec};
use proptest::prelude::*;

/// The `tests/robustness.rs` planner: 8 devices, paper-micro attention,
/// 1024-token blocks.
fn planner() -> Planner {
    Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    )
}

/// The `tests/robustness.rs` batches.
fn batches() -> Vec<Batch> {
    (0..5)
        .map(|i| Batch {
            seqs: vec![
                (8192 + 1024 * i, MaskSpec::Causal),
                (4096, MaskSpec::paper_lambda()),
            ],
        })
        .collect()
}

/// The injected straggler: device 0, ×4 (faults 1 of the robustness
/// scenario; the degraded link is exercised by the property test).
fn straggler_spec() -> FaultSpec {
    FaultSpec {
        seed: 7,
        faults: vec![Fault::Straggler {
            device: 0,
            slowdown: 4.0,
        }],
    }
}

/// Simulates one phase clean and faulted, returning both adapted event
/// streams.
fn traces(
    cluster: &ClusterSpec,
    pp: &PhasePlan,
    phase: Phase,
    iter: u64,
    spec: &FaultSpec,
) -> (Vec<Event>, Vec<Event>) {
    let (_, clean) = simulate_phase_faulted(cluster, pp, &FaultSpec::none()).expect("clean sim");
    let (_, faulted) = simulate_phase_faulted(cluster, pp, spec).expect("faulted sim");
    (
        trace_to_obs(&clean, phase, Some(iter)),
        trace_to_obs(&faulted, phase, Some(iter)),
    )
}

#[test]
fn detector_flags_straggler_with_zero_clean_false_positives() {
    let cluster = ClusterSpec::p4de(1);
    let p = planner();
    let spec = straggler_spec();
    let mut clean_bank = DetectorBank::new(DetectorConfig::default());
    let mut fault_bank = DetectorBank::new(DetectorConfig::default());

    for (bi, batch) in batches().iter().enumerate() {
        let out = p.plan(&batch.seqs).expect("plan");
        for (phase, pp) in [(Phase::Fwd, &out.plan.fwd), (Phase::Bwd, &out.plan.bwd)] {
            let (clean_ev, fault_ev) = traces(&cluster, pp, phase, bi as u64, &spec);
            clean_bank.ingest(&clean_ev);
            fault_bank.ingest(&fault_ev);
        }
    }

    assert!(
        clean_bank.incidents().is_empty(),
        "false positives on the clean runs: {:?}",
        clean_bank.incidents()
    );
    let straggler = fault_bank
        .incidents()
        .iter()
        .find_map(|i| match i.kind {
            IncidentKind::Straggler { device, slowdown } => Some((device, slowdown)),
            _ => None,
        })
        .expect("the injected straggler must be flagged");
    assert_eq!(straggler.0, 0, "wrong device blamed");
    assert!(
        (2.5..=6.0).contains(&straggler.1),
        "estimated slowdown {} is far from the injected 4.0",
        straggler.1
    );

    // The estimated spec closes the loop: it names the injected fault.
    let est = estimate_fault_spec(&fault_bank.incidents(), 7);
    assert!(est.faults.iter().any(|f| matches!(
        f,
        Fault::Straggler { device: 0, slowdown } if (2.5..=6.0).contains(slowdown)
    )));
}

#[test]
fn differential_attributes_majority_of_delta_to_straggler() {
    let cluster = ClusterSpec::p4de(1);
    let p = planner();
    let spec = straggler_spec();
    let mut runs = 0usize;
    let mut prime_hits = 0usize;

    for (bi, batch) in batches().iter().enumerate() {
        let out = p.plan(&batch.seqs).expect("plan");
        for (phase, pp) in [(Phase::Fwd, &out.plan.fwd), (Phase::Bwd, &out.plan.bwd)] {
            let (clean_ev, fault_ev) = traces(&cluster, pp, phase, bi as u64, &spec);
            let scope = AnalysisScope::sim_iter(phase, bi as u64);
            let clean = critical_path(&clean_ev, &scope);
            let faulted = critical_path(&fault_ev, &scope);
            for attr in [&clean, &faulted] {
                assert!(
                    attr.sums_to_makespan(1e-6),
                    "components {} != makespan {} (batch {bi} {})",
                    attr.components_total(),
                    attr.makespan,
                    phase.label()
                );
            }
            let delta = diff_attribution(&clean, &faulted);
            assert!(
                delta.makespan_delta > 0.0,
                "a ×4 straggler must stretch the makespan (batch {bi} {})",
                phase.label()
            );
            // The acceptance criterion: at least half of the
            // faulted-vs-clean makespan delta lands on the straggling
            // device, every run.
            let dev0_delta = delta
                .per_device
                .iter()
                .find(|d| d.device == 0)
                .map_or(0.0, |d| d.delta);
            assert!(
                dev0_delta >= 0.5 * delta.makespan_delta,
                "batch {bi} {}: device 0 carries only {:.3}ms of a {:.3}ms delta ({:?})",
                phase.label(),
                dev0_delta * 1e3,
                delta.makespan_delta * 1e3,
                delta.per_device
            );
            runs += 1;
            if delta.prime_suspect == Some(0) {
                prime_hits += 1;
            }
        }
    }
    // Second-order shifts may occasionally crown a downstream device by a
    // hair, but the straggler must be the prime suspect on a clear
    // majority of runs.
    assert!(
        prime_hits * 2 > runs,
        "straggler was prime suspect on only {prime_hits}/{runs} runs"
    );
}

#[test]
fn forced_verifier_diagnostic_dumps_valid_postmortem() {
    let cluster = ClusterSpec::p4de(1);
    let p = planner();
    let out = p.plan(&batches()[0].seqs).expect("plan");

    // Context for the ring: the faulted forward timeline.
    let (_, fault_ev) = traces(&cluster, &out.plan.fwd, Phase::Fwd, 0, &straggler_spec());
    let recorder = FlightRecorder::new(RecorderConfig::default());
    recorder.record_all(fault_ev);

    // Corrupt the forward streams (drop the first CommWait) and push the
    // wreck through the verifier.
    let mut bad = out.plan.fwd.clone();
    let dev = bad
        .devices
        .iter_mut()
        .find(|d| d.instrs.iter().any(|i| matches!(i, Instr::CommWait(_))))
        .expect("the pinned plan communicates");
    let pos = dev
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::CommWait(_)))
        .unwrap();
    dev.instrs.remove(pos);
    let diag = verify_phase(
        &out.layout,
        &out.placement,
        &bad,
        false,
        &VerifyCtx::default(),
    )
    .expect_err("a dropped CommWait must be rejected");

    assert_eq!(recorder.pending(), 0);
    recorder
        .record(Event::instant(Source::Planner, "verify_diagnostic").with_label(diag.to_string()));
    assert_eq!(
        recorder.pending(),
        1,
        "the diagnostic instant must trigger a dump"
    );

    let dir = std::env::temp_dir().join(format!("dcp_trace_analysis_{}", std::process::id()));
    let paths = recorder.write_all(&dir).expect("bundles write");
    assert_eq!(paths.len(), 1);
    let text = std::fs::read_to_string(&paths[0]).expect("bundle readable");
    let bundle: PostmortemBundle = serde_json::from_str(&text).expect("bundle parses");
    bundle.validate().expect("bundle validates");
    assert_eq!(bundle.trigger, "verify_diagnostic");
    assert_eq!(bundle.trigger_event.name, "verify_diagnostic");
    assert_eq!(
        bundle.trigger_event.label.as_deref(),
        Some(diag.to_string()).as_deref()
    );
    assert!(
        bundle.events.iter().any(|e| e.name == "verify_diagnostic"),
        "the triggering event must be inside the ring snapshot"
    );
    // The ring context (sim spans) made it into the bundle too.
    assert!(bundle.events.iter().any(|e| e.source == Source::Sim));
    std::fs::remove_dir_all(&dir).ok();
}

/// Randomized batches and fault cocktails: the five attribution
/// components must tile the simulated makespan exactly, both phases.
fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u32..8, 10u32..80).prop_map(|(device, tenths)| Fault::Straggler {
            device,
            slowdown: f64::from(tenths) / 10.0,
        }),
        (0u32..8, 1u32..8, 5u32..100).prop_map(|(src, off, pct)| Fault::DegradedLink {
            src,
            dst: (src + off) % 8,
            factor: f64::from(pct) / 100.0,
        }),
        (0u32..8, 1u32..8).prop_map(|(src, off)| Fault::FailedLink {
            src,
            dst: (src + off) % 8,
        }),
        (0u32..8, 1u32..50).prop_map(|(device, ticks)| Fault::DelayedStart {
            device,
            delay_s: f64::from(ticks) * 1e-5,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn attribution_components_sum_to_makespan_on_random_faulted_plans(
        long in 2048u32..10240,
        short in 512u32..4096,
        faults in proptest::collection::vec(arb_fault(), 0..4),
        seed in 0u64..1000,
    ) {
        let cluster = ClusterSpec::p4de(1);
        let p = planner();
        let out = p.plan(&[(long, MaskSpec::Causal), (short, MaskSpec::paper_lambda())])
            .expect("plan");
        let spec = FaultSpec { seed, faults };
        for (phase, pp) in [(Phase::Fwd, &out.plan.fwd), (Phase::Bwd, &out.plan.bwd)] {
            let (sim, trace) = simulate_phase_faulted(&cluster, pp, &spec).expect("sim");
            let ev = trace_to_obs(&trace, phase, None);
            let attr = critical_path(&ev, &AnalysisScope::sim(phase));
            prop_assert!((attr.makespan - sim.makespan).abs() <= 1e-9 * sim.makespan.max(1e-12),
                "analysis makespan {} != simulated {}", attr.makespan, sim.makespan);
            prop_assert!(attr.sums_to_makespan(1e-6),
                "components {} != makespan {} ({} steps, residual {})",
                attr.components_total(), attr.makespan, attr.steps.len(), attr.residual());
        }
    }
}
