//! Elastic mid-iteration recovery, end to end: kill one device after k of
//! its attention divisions, patch the plan onto the survivors plus
//! replacement shards, and finish the iteration with output *bitwise
//! identical* to the unfaulted run — redoing only the un-executed
//! computation blocks and salvaging the partials the dead device already
//! reduced.
//!
//! Everything lives in a single `#[test]` because the determinism leg
//! mutates `RAYON_NUM_THREADS`, which is process-global state (mirroring
//! `tests/determinism.rs` and `tests/fault_determinism.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use dcp::blocks::TokenBlockId;
use dcp::core::recovery::{FailureEvent, RecoveryConfig, RecoveryPlanner};
use dcp::core::{
    simulate_iteration, simulate_iteration_with_recovery, E2eConfig, PlanOutput, Planner,
    PlannerConfig,
};
use dcp::exec::executor::{
    execute_backward, execute_forward, execute_forward_recovery, BatchData, BlockOut, ExecObs,
    SalvageCtx,
};
use dcp::mask::MaskSpec;
use dcp::obs::{ObsHandle, RecordingSink};
use dcp::sched::Instr;
use dcp::sim::{simulate_phase, simulate_plan};
use dcp::types::{AttnSpec, ClusterSpec, ModelSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small 8-device batch with skewed sequence lengths and mixed masks, so
/// the placement is non-trivial and every device carries several divisions.
fn plan_small() -> (ClusterSpec, PlanOutput) {
    let cluster = ClusterSpec::single_node(8);
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::new(4, 2, 8, 2),
        PlannerConfig {
            block_size: 16,
            ..Default::default()
        },
    );
    let seqs = vec![
        (200, MaskSpec::Causal),
        (
            160,
            MaskSpec::Lambda {
                sink: 4,
                window: 24,
            },
        ),
        (120, MaskSpec::Causal),
        (96, MaskSpec::Causal),
        (64, MaskSpec::Causal),
    ];
    let out = planner.plan(&seqs).unwrap();
    (cluster, out)
}

/// The device with the most attention divisions in the forward plan (ties
/// broken toward the lowest id), and its division count.
fn busiest_device(out: &PlanOutput) -> (u32, u32) {
    out.plan
        .fwd
        .devices
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let n = s
                .instrs
                .iter()
                .filter(|ins| matches!(ins, Instr::Attn { .. }))
                .count() as u32;
            (i as u32, n)
        })
        .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
        .unwrap()
}

fn salvage_ctx(patch: &dcp::core::RecoveryPatch) -> SalvageCtx {
    SalvageCtx {
        failed: patch.failed,
        salvage_comms: patch.salvage_comms.clone(),
        producer_of: patch.producer_of.clone(),
        reowned: patch.reowned.clone(),
    }
}

/// Bitwise fingerprint of a forward result, in token-block order.
fn out_bits(outs: &HashMap<TokenBlockId, BlockOut>) -> Vec<u32> {
    let mut keys: Vec<TokenBlockId> = outs.keys().copied().collect();
    keys.sort_by_key(|t| t.0);
    let mut bits = Vec::new();
    for id in keys {
        let b = &outs[&id];
        bits.extend(b.o.iter().map(|v| v.to_bits()));
        bits.extend(b.lse.iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn mid_iteration_recovery_end_to_end() {
    let (cluster, out) = plan_small();
    let (dev, nd) = busiest_device(&out);
    assert!(nd >= 3, "victim needs >= 3 attention divisions, got {nd}");
    let k = 2u32;

    // Unfaulted reference run.
    let data = BatchData::random(&out.layout, 2024);
    let clean = execute_forward(&out.layout, &out.placement, &out.plan, &data).unwrap();

    // Patch-plan the failure with a recording sink: the incident and the
    // recovery plan must land in the observability stream.
    let sink = Arc::new(RecordingSink::new());
    let rp = RecoveryPlanner::new(RecoveryConfig::default()).with_obs(ObsHandle::new(
        sink.clone() as Arc<dyn dcp::obs::ObsSink + Send + Sync>
    ));
    let ev = FailureEvent {
        device: dev,
        divisions_done: k,
    };
    let patch = rp.plan_recovery(&out, &ev).unwrap();

    let names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
    for required in ["device_lost", "recovery_plan", "recovery_redone_flops"] {
        assert!(
            names.iter().any(|n| n == required),
            "obs stream missing {required:?}: {names:?}"
        );
    }

    // Only un-executed computation is redone: strictly less than half of
    // the failed device's flops, and something was salvaged rather than
    // recomputed.
    let st = patch.stats;
    assert!(st.failed_flops > 0 && st.redone_flops > 0);
    assert!(
        (st.redone_flops as f64) < 0.5 * st.failed_flops as f64,
        "redid {} of {} flops",
        st.redone_flops,
        st.failed_flops
    );
    assert!(st.salvage_bytes > 0, "no partial outputs were salvaged");
    assert!(st.residual_units > 0);

    // Execute the patched forward: survivors + replacement shards, with the
    // failed device replaying only its pre-failure prefix.
    let ctx = salvage_ctx(&patch);
    let rec = execute_forward_recovery(
        &out.layout,
        &patch.placement,
        &patch.fwd,
        &data,
        &ctx,
        &ExecObs::disabled(),
    )
    .unwrap();

    // The merged output bitwise-equals the unfaulted run, every block.
    assert_eq!(clean.len(), rec.len());
    for (id, c) in &clean {
        let r = &rec[id];
        assert_eq!(
            c.o.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.o.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "O differs on block {id:?}"
        );
        assert_eq!(
            c.lse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.lse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "LSE differs on block {id:?}"
        );
    }

    // Backward completes on the shrunk placement: the dead device gets no
    // backward attention work, and every block still receives gradients.
    let (qh, _) = BatchData::head_counts(&out.layout);
    let dim = out.layout.attn.head_dim as usize;
    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    assert!(patch.bwd.bwd.devices[dev as usize]
        .instrs
        .iter()
        .all(|ins| !matches!(ins, Instr::AttnBwd { .. })));
    let grads = execute_backward(
        &out.layout,
        &patch.bwd_placement,
        &patch.bwd,
        &data,
        &rec,
        &d_o,
    )
    .unwrap();
    assert_eq!(grads.len(), out.layout.token_blocks.len());

    // Recovery wall time is charged into the iteration breakdown: the
    // patched timing plan (shard work spliced onto the survivor hosts) is
    // simulated on the *physical* cluster, and its overhead over the clean
    // forward plus the patch-planning wall time lands in `recovery`.
    let clean_fwd = simulate_phase(&cluster, &out.plan.fwd).unwrap();
    let rec_fwd = simulate_phase(&cluster, &patch.timing).unwrap();
    assert_eq!(rec_fwd.devices.len(), cluster.num_devices() as usize);
    assert!(rec_fwd.makespan > 0.0);
    let overhead = (rec_fwd.makespan - clean_fwd.makespan).max(0.0) + st.plan_wall_s;
    assert!(overhead > 0.0);

    let plan_sim = simulate_plan(&cluster, &out.plan).unwrap();
    let e2e = E2eConfig {
        model: ModelSpec::gpt_8b(),
        tp: 1,
        cluster: cluster.clone(),
    };
    let mut device_tokens = vec![0u64; cluster.num_devices() as usize];
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        device_tokens[out.placement.token_dev(TokenBlockId(i as u32)) as usize] += tb.len as u64;
    }
    let max_tokens = *device_tokens.iter().max().unwrap();
    let total_tokens: u64 = out.layout.seq_lens.iter().map(|&l| l as u64).sum();
    let base = simulate_iteration(&e2e, &plan_sim, max_tokens, total_tokens);
    let with_rec =
        simulate_iteration_with_recovery(&e2e, &plan_sim, max_tokens, total_tokens, overhead);
    assert_eq!(with_rec.recovery, overhead);
    assert!((with_rec.total - base.total - overhead).abs() < 1e-12);

    // Determinism: the whole patch pipeline — plan, patch, execute the
    // recovery — is bitwise identical across thread counts.
    let run = || {
        let (_, out) = plan_small();
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        let data = BatchData::random(&out.layout, 2024);
        let ctx = salvage_ctx(&patch);
        let rec = execute_forward_recovery(
            &out.layout,
            &patch.placement,
            &patch.fwd,
            &data,
            &ctx,
            &ExecObs::disabled(),
        )
        .unwrap();
        (
            patch.placement.token_to_dev.clone(),
            patch.placement.comp_to_dev.clone(),
            patch.stats.redone_flops,
            out_bits(&rec),
        )
    };
    let parallel = run();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let other = run();
        assert_eq!(parallel.0, other.0, "token placement differs at {threads}");
        assert_eq!(parallel.1, other.1, "comp placement differs at {threads}");
        assert_eq!(parallel.2, other.2, "redone flops differ at {threads}");
        assert_eq!(parallel.3, other.3, "recovery bits differ at {threads}");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(parallel.3, out_bits(&rec), "recovery run is not repeatable");
}
