//! Elastic recovery, end to end: kill devices mid-iteration, patch the plan
//! onto the survivors plus replacement shards, and finish with output
//! *bitwise identical* to the unfaulted run — redoing only the un-executed
//! computation blocks and salvaging the partials the dead streams already
//! reduced. Covers single failures, cascading (depth-2) failures where a
//! shard-hosting survivor dies mid-patch, backward-phase failures salvaged
//! at reduction frontiers, and a randomized property sweep.
//!
//! Tests that exercise the determinism leg mutate `RAYON_NUM_THREADS`,
//! which is process-global state; they serialize on [`ENV_LOCK`]
//! (mirroring `tests/determinism.rs` and `tests/fault_determinism.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use dcp::blocks::TokenBlockId;
use dcp::core::recovery::{FailureEvent, RecoveryConfig, RecoveryPlanner};
use dcp::core::{
    simulate_iteration, simulate_iteration_with_recovery, E2eConfig, PlanOutput, Planner,
    PlannerConfig,
};
use dcp::exec::executor::{
    execute_backward, execute_backward_recovery, execute_forward, execute_forward_recovery,
    BatchData, BlockOut, ExecObs, SalvageCtx,
};
use dcp::mask::MaskSpec;
use dcp::obs::{FlightRecorder, ObsHandle, RecorderConfig, RecordingSink};
use dcp::sched::Instr;
use dcp::sim::{simulate_phase, simulate_plan};
use dcp::types::{AttnSpec, ClusterSpec, DcpError, ModelSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Serializes tests that mutate `RAYON_NUM_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A small 8-device batch with skewed sequence lengths and mixed masks, so
/// the placement is non-trivial and every device carries several divisions.
fn plan_small() -> (ClusterSpec, PlanOutput) {
    let cluster = ClusterSpec::single_node(8);
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::new(4, 2, 8, 2),
        PlannerConfig {
            block_size: 16,
            ..Default::default()
        },
    );
    let seqs = vec![
        (200, MaskSpec::Causal),
        (
            160,
            MaskSpec::Lambda {
                sink: 4,
                window: 24,
            },
        ),
        (120, MaskSpec::Causal),
        (96, MaskSpec::Causal),
        (64, MaskSpec::Causal),
    ];
    let out = planner.plan(&seqs).unwrap();
    (cluster, out)
}

/// The device with the most attention divisions in the forward plan (ties
/// broken toward the lowest id), and its division count.
fn busiest_device(out: &PlanOutput) -> (u32, u32) {
    out.plan
        .fwd
        .devices
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let n = s
                .instrs
                .iter()
                .filter(|ins| matches!(ins, Instr::Attn { .. }))
                .count() as u32;
            (i as u32, n)
        })
        .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
        .unwrap()
}

fn salvage_ctx(patch: &dcp::core::RecoveryPatch) -> SalvageCtx {
    SalvageCtx {
        failed: patch.failed_streams.clone(),
        salvage_comms: patch.salvage_comms.clone(),
        producer_of: patch.producer_of.clone(),
        reowned: patch.reowned.clone(),
        ..SalvageCtx::default()
    }
}

fn bwd_salvage_ctx(patch: &dcp::core::BwdRecoveryPatch) -> SalvageCtx {
    SalvageCtx {
        failed: HashSet::from([patch.failed]),
        salvage_comms: patch.salvage_comms.clone(),
        producer_of_dq: patch.producer_of_dq.clone(),
        producer_of_dkv: patch.producer_of_dkv.clone(),
        reowned: patch.reowned.clone(),
        ..SalvageCtx::default()
    }
}

/// Clean-run forward outputs and a seeded output-gradient batch.
#[allow(clippy::type_complexity)]
fn clean_run(
    out: &PlanOutput,
    data: &BatchData,
) -> (
    HashMap<TokenBlockId, BlockOut>,
    HashMap<TokenBlockId, Vec<f32>>,
) {
    let fwd = execute_forward(&out.layout, &out.placement, &out.plan, data).unwrap();
    let (qh, _) = BatchData::head_counts(&out.layout);
    let dim = out.layout.attn.head_dim as usize;
    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    (fwd, d_o)
}

/// Bitwise fingerprint of a forward result, in token-block order.
fn out_bits(outs: &HashMap<TokenBlockId, BlockOut>) -> Vec<u32> {
    let mut keys: Vec<TokenBlockId> = outs.keys().copied().collect();
    keys.sort_by_key(|t| t.0);
    let mut bits = Vec::new();
    for id in keys {
        let b = &outs[&id];
        bits.extend(b.o.iter().map(|v| v.to_bits()));
        bits.extend(b.lse.iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn mid_iteration_recovery_end_to_end() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (cluster, out) = plan_small();
    let (dev, nd) = busiest_device(&out);
    assert!(nd >= 3, "victim needs >= 3 attention divisions, got {nd}");
    let k = 2u32;

    // Unfaulted reference run.
    let data = BatchData::random(&out.layout, 2024);
    let clean = execute_forward(&out.layout, &out.placement, &out.plan, &data).unwrap();

    // Patch-plan the failure with a recording sink: the incident and the
    // recovery plan must land in the observability stream.
    let sink = Arc::new(RecordingSink::new());
    let rp = RecoveryPlanner::new(RecoveryConfig::default()).with_obs(ObsHandle::new(
        sink.clone() as Arc<dyn dcp::obs::ObsSink + Send + Sync>
    ));
    let ev = FailureEvent {
        device: dev,
        divisions_done: k,
    };
    let patch = rp.plan_recovery(&out, &ev).unwrap();

    let names: Vec<String> = sink.events().iter().map(|e| e.name.clone()).collect();
    for required in ["device_lost", "recovery_plan", "recovery_redone_flops"] {
        assert!(
            names.iter().any(|n| n == required),
            "obs stream missing {required:?}: {names:?}"
        );
    }

    // Only un-executed computation is redone: strictly less than half of
    // the failed device's flops, and something was salvaged rather than
    // recomputed.
    let st = patch.stats;
    assert!(st.failed_flops > 0 && st.redone_flops > 0);
    assert!(
        (st.redone_flops as f64) < 0.5 * st.failed_flops as f64,
        "redid {} of {} flops",
        st.redone_flops,
        st.failed_flops
    );
    assert!(st.salvage_bytes > 0, "no partial outputs were salvaged");
    assert!(st.residual_units > 0);

    // Execute the patched forward: survivors + replacement shards, with the
    // failed device replaying only its pre-failure prefix.
    let ctx = salvage_ctx(&patch);
    let rec = execute_forward_recovery(
        &out.layout,
        &patch.placement,
        &patch.fwd,
        &data,
        &ctx,
        &ExecObs::disabled(),
    )
    .unwrap();

    // The merged output bitwise-equals the unfaulted run, every block.
    assert_eq!(clean.len(), rec.len());
    for (id, c) in &clean {
        let r = &rec[id];
        assert_eq!(
            c.o.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.o.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "O differs on block {id:?}"
        );
        assert_eq!(
            c.lse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.lse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "LSE differs on block {id:?}"
        );
    }

    // Backward completes on the shrunk placement: the dead device gets no
    // backward attention work, and every block still receives gradients.
    let (qh, _) = BatchData::head_counts(&out.layout);
    let dim = out.layout.attn.head_dim as usize;
    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    assert!(patch.bwd.bwd.devices[dev as usize]
        .instrs
        .iter()
        .all(|ins| !matches!(ins, Instr::AttnBwd { .. })));
    let grads = execute_backward(
        &out.layout,
        &patch.bwd_placement,
        &patch.bwd,
        &data,
        &rec,
        &d_o,
    )
    .unwrap();
    assert_eq!(grads.len(), out.layout.token_blocks.len());

    // Recovery wall time is charged into the iteration breakdown: the
    // patched timing plan (shard work spliced onto the survivor hosts) is
    // simulated on the *physical* cluster, and its overhead over the clean
    // forward plus the patch-planning wall time lands in `recovery`.
    let clean_fwd = simulate_phase(&cluster, &out.plan.fwd).unwrap();
    let rec_fwd = simulate_phase(&cluster, &patch.timing).unwrap();
    assert_eq!(rec_fwd.devices.len(), cluster.num_devices() as usize);
    assert!(rec_fwd.makespan > 0.0);
    let overhead = (rec_fwd.makespan - clean_fwd.makespan).max(0.0) + st.plan_wall_s;
    assert!(overhead > 0.0);

    let plan_sim = simulate_plan(&cluster, &out.plan).unwrap();
    let e2e = E2eConfig {
        model: ModelSpec::gpt_8b(),
        tp: 1,
        cluster: cluster.clone(),
    };
    let mut device_tokens = vec![0u64; cluster.num_devices() as usize];
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        device_tokens[out.placement.token_dev(TokenBlockId(i as u32)) as usize] += tb.len as u64;
    }
    let max_tokens = *device_tokens.iter().max().unwrap();
    let total_tokens: u64 = out.layout.seq_lens.iter().map(|&l| l as u64).sum();
    let base = simulate_iteration(&e2e, &plan_sim, max_tokens, total_tokens);
    let with_rec =
        simulate_iteration_with_recovery(&e2e, &plan_sim, max_tokens, total_tokens, overhead);
    assert_eq!(with_rec.recovery, overhead);
    assert!((with_rec.total - base.total - overhead).abs() < 1e-12);

    // Determinism: the whole patch pipeline — plan, patch, execute the
    // recovery — is bitwise identical across thread counts.
    let run = || {
        let (_, out) = plan_small();
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        let data = BatchData::random(&out.layout, 2024);
        let ctx = salvage_ctx(&patch);
        let rec = execute_forward_recovery(
            &out.layout,
            &patch.placement,
            &patch.fwd,
            &data,
            &ctx,
            &ExecObs::disabled(),
        )
        .unwrap();
        (
            patch.placement.token_to_dev.clone(),
            patch.placement.comp_to_dev.clone(),
            patch.stats.redone_flops,
            out_bits(&rec),
        )
    };
    let parallel = run();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let other = run();
        assert_eq!(parallel.0, other.0, "token placement differs at {threads}");
        assert_eq!(parallel.1, other.1, "comp placement differs at {threads}");
        assert_eq!(parallel.2, other.2, "redone flops differ at {threads}");
        assert_eq!(parallel.3, other.3, "recovery bits differ at {threads}");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(parallel.3, out_bits(&rec), "recovery run is not repeatable");
}

/// Cascading failure: a survivor that hosts a recovery shard dies while
/// executing the first patch. The second patch composes over the first —
/// salvaging both the victim's own stream and its spliced shard — and the
/// merged output is still bitwise identical to the unfaulted run, with
/// total redone work bounded below 75% of the two dead ranks' flops.
#[test]
fn cascading_failure_composes_patches_bitwise() {
    let (_, out) = plan_small();
    let d = out.plan.num_devices;
    let (dev1, nd1) = busiest_device(&out);
    assert!(nd1 >= 3);
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let patch1 = rp
        .plan_recovery(
            &out,
            &FailureEvent {
                device: dev1,
                divisions_done: nd1 / 2,
            },
        )
        .unwrap();
    assert_eq!(patch1.stats.cascade_depth, 1);

    // Second victim: the shard-hosting survivor whose spliced shard carries
    // the most attention work, so the cascade really kills a mid-patch
    // shard and not just an idle host.
    let divs = |instrs: &[Instr]| {
        instrs
            .iter()
            .filter(|ins| matches!(ins, Instr::Attn { .. }))
            .count() as u32
    };
    let (j2, _) = patch1
        .shard_hosts
        .iter()
        .enumerate()
        .map(|(j, _)| (j, divs(&patch1.fwd.devices[(d + j as u32) as usize].instrs)))
        .max_by_key(|&(j, n)| (n, std::cmp::Reverse(j)))
        .unwrap();
    let dev2 = patch1.shard_hosts[j2];
    let own2 = divs(&patch1.fwd.devices[dev2 as usize].instrs);
    let shard2 = divs(&patch1.fwd.devices[(d + j2 as u32) as usize].instrs);
    assert!(
        shard2 >= 1,
        "second victim must host spliced attention work"
    );
    // Kill after finishing its own stream plus part of the spliced shard.
    let k2 = own2 + (shard2 / 2).max(1).min(shard2);

    // Depth-2 recovery must always leave a postmortem, even when the
    // bundle buffer is already full (max_pending = 0 blocks every
    // ordinary trigger).
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
        max_pending: 0,
        ..RecorderConfig::default()
    }));
    let rp2 = RecoveryPlanner::new(RecoveryConfig::default()).with_obs(ObsHandle::new(
        recorder.clone() as Arc<dyn dcp::obs::ObsSink + Send + Sync>,
    ));
    let patch2 = rp2
        .plan_recovery_onto(
            &out,
            &patch1,
            &FailureEvent {
                device: dev2,
                divisions_done: k2,
            },
        )
        .unwrap();
    assert_eq!(patch2.stats.cascade_depth, 2);
    assert!(patch2.failed_devices == vec![dev1, dev2]);
    assert!(patch2.failed_streams.contains(&dev1));
    assert!(patch2.failed_streams.contains(&dev2));
    assert!(
        patch2.failed_streams.contains(&(d + j2 as u32)),
        "the hosted shard stream dies with its host"
    );

    // The cascade froze a postmortem despite the zero-capacity buffer.
    let bundles = recorder.take_postmortems();
    assert!(
        bundles
            .iter()
            .any(|b| b.trigger == "recovery_plan" && b.trigger_event.value == Some(2.0)),
        "depth-2 recovery must freeze a postmortem bundle"
    );

    // Bitwise-identical merged output at cascade depth 2.
    let data = BatchData::random(&out.layout, 2024);
    let clean = execute_forward(&out.layout, &out.placement, &out.plan, &data).unwrap();
    let rec = execute_forward_recovery(
        &out.layout,
        &patch2.placement,
        &patch2.fwd,
        &data,
        &salvage_ctx(&patch2),
        &ExecObs::disabled(),
    )
    .unwrap();
    assert_eq!(out_bits(&clean), out_bits(&rec), "cascade output diverged");

    // Redone-work bound: both patches together redo strictly less than
    // 75% of the two dead ranks' attention flops.
    let redone = patch1.stats.redone_flops + patch2.stats.redone_flops;
    let lost = patch1.stats.failed_flops + patch2.stats.failed_flops;
    assert!(lost > 0);
    assert!(
        (redone as f64) < 0.75 * lost as f64,
        "cascade redid {redone} of {lost} flops"
    );

    // Determinism at depth 2: both thread counts reproduce the exact
    // placement and bits.
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in ["1", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let other = execute_forward_recovery(
            &out.layout,
            &patch2.placement,
            &patch2.fwd,
            &data,
            &salvage_ctx(&patch2),
            &ExecObs::disabled(),
        )
        .unwrap();
        assert_eq!(
            out_bits(&rec),
            out_bits(&other),
            "cascade bits differ at {threads} threads"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// A failure mid-backward is salvaged at the reduction frontier: the dead
/// stream's partial dQ/dKV running sums move to replacement shards instead
/// of being recomputed, and the final gradients are bitwise identical to
/// the unfaulted backward.
#[test]
fn backward_phase_failure_salvages_partial_accumulators() {
    let (_, out) = plan_small();
    let (dev, nd) = out
        .plan
        .bwd
        .devices
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let n = s
                .instrs
                .iter()
                .filter(|ins| matches!(ins, Instr::AttnBwd { .. }))
                .count() as u32;
            (i as u32, n)
        })
        .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
        .unwrap();
    assert!(nd >= 2, "victim needs >= 2 backward divisions, got {nd}");

    let data = BatchData::random(&out.layout, 2024);
    let (fwd_out, d_o) = clean_run(&out, &data);
    let clean = execute_backward(
        &out.layout,
        &out.placement,
        &out.plan,
        &data,
        &fwd_out,
        &d_o,
    )
    .unwrap();

    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let patch = rp
        .plan_backward_recovery(
            &out,
            &FailureEvent {
                device: dev,
                divisions_done: nd / 2,
            },
        )
        .unwrap();

    // Partial accumulators were salvaged, and strictly less than the whole
    // backward stream is redone.
    let st = &patch.stats;
    assert!(st.salvage_bytes > 0, "no backward accumulators salvaged");
    assert!(st.failed_flops > 0 && st.redone_flops > 0);
    assert!(
        st.redone_flops < st.failed_flops,
        "backward salvage redid the full stream: {} of {}",
        st.redone_flops,
        st.failed_flops
    );

    let rec = execute_backward_recovery(
        &out.layout,
        &patch.placement,
        &patch.bwd,
        &data,
        &fwd_out,
        &d_o,
        &bwd_salvage_ctx(&patch),
        &ExecObs::disabled(),
    )
    .unwrap();
    assert_eq!(clean.len(), rec.len());
    for (id, c) in &clean {
        let r = &rec[id];
        for (name, a, b) in [
            ("dQ", &c.dq, &r.dq),
            ("dK", &c.dk, &r.dk),
            ("dV", &c.dv, &r.dv),
        ] {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{name} differs on block {id:?}"
            );
        }
    }
}

/// An out-of-range frontier is a typed error carrying the device and the
/// bogus `divisions_done`, for both the forward and backward planners.
#[test]
fn out_of_range_frontier_is_a_typed_error() {
    let (_, out) = plan_small();
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let ev = FailureEvent {
        device: 0,
        divisions_done: 10_000,
    };
    for err in [
        rp.plan_recovery(&out, &ev).unwrap_err(),
        rp.plan_backward_recovery(&out, &ev).unwrap_err(),
    ] {
        match err {
            DcpError::InvalidFailureEvent { device, frontier } => {
                assert_eq!(device, 0);
                assert_eq!(frontier, 10_000);
            }
            other => panic!("expected InvalidFailureEvent, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized kills — any (survivor count, victim, frontier) — produce
    /// a patch that passes the stream verifier and executes to merged
    /// output bitwise equal to the clean run at 1, 2 and 8 rayon threads.
    #[test]
    fn random_failures_recover_bitwise(
        n in 2u32..6,
        dev_sel in 0u32..8,
        frac in 0u32..=4,
        seed in 0u64..500,
    ) {
        let planner = Planner::new(
            ClusterSpec::single_node(n),
            AttnSpec::new(4, 2, 8, 2),
            PlannerConfig { block_size: 16, ..Default::default() },
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let seqs: Vec<(u32, MaskSpec)> = (0..4)
            .map(|_| (rng.gen_range(48..220), MaskSpec::Causal))
            .collect();
        let out = planner.plan(&seqs).unwrap();
        let dev = dev_sel % n;
        let nd = out.plan.fwd.devices[dev as usize]
            .instrs
            .iter()
            .filter(|ins| matches!(ins, Instr::Attn { .. }))
            .count() as u32;
        let k = nd * frac / 4;
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &FailureEvent { device: dev, divisions_done: k })
            .unwrap();
        // The patch rendering passes the stream verifier under its own
        // composition context (plan_recovery verifies internally; this
        // re-checks through the public surface).
        dcp::sched::verify_phase(
            &out.layout,
            &patch.placement,
            &patch.fwd,
            false,
            &patch.verify_ctx(),
        )
        .map_err(|d| TestCaseError::fail(format!("patch rejected: {d}")))?;
        dcp::sched::verify_structure(&patch.timing)
            .map_err(|d| TestCaseError::fail(format!("timing rejected: {d}")))?;

        let data = BatchData::random(&out.layout, seed ^ 0xD15EA5E);
        let clean = execute_forward(&out.layout, &out.placement, &out.plan, &data).unwrap();
        let ctx = salvage_ctx(&patch);
        let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut bits: Option<Vec<u32>> = None;
        for threads in ["1", "2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let rec = execute_forward_recovery(
                &out.layout,
                &patch.placement,
                &patch.fwd,
                &data,
                &ctx,
                &ExecObs::disabled(),
            )
            .unwrap();
            prop_assert_eq!(
                out_bits(&clean),
                out_bits(&rec),
                "recovered output diverged at {} threads",
                threads
            );
            match &bits {
                None => bits = Some(out_bits(&rec)),
                Some(b) => prop_assert_eq!(b.clone(), out_bits(&rec)),
            }
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
