//! Cross-crate tests of the reporting surfaces: plan reports, execution
//! traces, and the paper's memory-balance property on planner output.

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sched::PlanReport;
use dcp::sim::{ascii_gantt, simulate_phase_traced, to_chrome_trace, TraceKind};
use dcp::types::{AttnSpec, ClusterSpec};

fn skewed_batch() -> Vec<(u32, MaskSpec)> {
    let mut seqs = vec![(24576u32, MaskSpec::Causal)];
    for i in 0..8u32 {
        seqs.push((1024 + 512 * (i % 4), MaskSpec::Causal));
    }
    seqs
}

#[test]
fn planner_balances_memory_and_flops_together() {
    // The paper's dual-weight constraint: both activation memory (bytes)
    // and computation (FLOPs) stay balanced, unlike pure DP (memory
    // balanced, compute skewed) or naive compute-only balancing.
    let cluster = ClusterSpec::p4de(2);
    let planner = Planner::new(
        cluster,
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    );
    let out = planner.plan(&skewed_batch()).unwrap();
    let report = PlanReport::from_phase(&out.plan.fwd);
    // Memory: owned buffers within ~1 block of granularity slack per device.
    let mem_imb = report.imbalance(|d| d.peak_buffer_bytes);
    assert!(mem_imb < 1.6, "memory imbalance {mem_imb}");
    // Compute within the eps product plus scheduling noise.
    let flop_imb = report.imbalance(|d| d.attn_flops);
    assert!(flop_imb < 1.75, "flops imbalance {flop_imb}");
}

#[test]
fn report_matrix_consistent_with_simulated_comm() {
    let cluster = ClusterSpec::p4de(2);
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    );
    let out = planner.plan(&skewed_batch()).unwrap();
    let report = PlanReport::from_phase(&out.plan.fwd);
    let total: u64 = report.comm_matrix.iter().flat_map(|r| r.iter()).sum();
    assert_eq!(total, out.plan.fwd.total_comm_bytes());
    // Render does not panic and includes every device row.
    let text = report.render();
    assert!(text.contains("dev"));
    assert_eq!(
        text.lines().count(),
        2 + report.devices.len(),
        "header + rows + imbalance line"
    );
}

#[test]
fn traces_cover_plan_activity_for_dcp_and_baselines() {
    let cluster = ClusterSpec::p4de(1);
    let batch = skewed_batch();
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    );
    let dcp = planner.plan(&batch).unwrap();
    let te = Baseline::TransformerEngine { head_groups: 2 }
        .build(AttnSpec::paper_micro(), 8, 256, &batch)
        .unwrap();
    for plan in [&dcp.plan, &te.plan] {
        let (sim, trace) = simulate_phase_traced(&cluster, &plan.fwd).unwrap();
        assert!(!trace.is_empty());
        let attn_time: f64 = trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Attn))
            .map(|e| e.end - e.start)
            .sum();
        let timeline_attn: f64 = sim.devices.iter().map(|d| d.attn).sum();
        assert!((attn_time - timeline_attn).abs() < 1e-9);
        // Exports work.
        let json = to_chrome_trace(&trace);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["traceEvents"].as_array().unwrap().len() >= trace.len());
        let gantt = ascii_gantt(&trace, 80);
        assert!(gantt.contains("dev0"));
    }
}

#[test]
fn early_output_ablation_never_slower() {
    use dcp::sched::{build_plan, ScheduleConfig};
    use dcp::sim::simulate_plan;

    let cluster = ClusterSpec::p4de(2);
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    );
    let out = planner.plan(&skewed_batch()).unwrap();
    let early = simulate_plan(&cluster, &out.plan).unwrap().total();
    let listing3 = build_plan(
        &out.layout,
        &out.placement,
        &ScheduleConfig {
            divisions: 4,
            early_output: false,
        },
    )
    .unwrap();
    let late = simulate_plan(&cluster, &listing3).unwrap().total();
    assert!(
        early <= late * 1.02,
        "early-output {early} vs Listing-3 {late}"
    );
}
