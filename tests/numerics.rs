//! Cross-crate numerical correctness: any plan the DCP planner emits — and
//! the ring baselines' forward plans — must compute exactly the same
//! attention as the dense reference.

use std::collections::HashMap;

use dcp::baselines::Baseline;
use dcp::blocks::TokenBlockId;
use dcp::core::{Planner, PlannerConfig};
use dcp::exec::executor::{execute_backward, execute_forward, BatchData};
use dcp::exec::reference;
use dcp::mask::MaskSpec;
use dcp::sched::{ExecutionPlan, Placement};
use dcp::types::{AttnSpec, ClusterSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Compares plan execution (fwd + bwd) against the dense reference.
fn check_numerics(
    layout: &dcp::blocks::BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
    check_backward: bool,
) {
    let data = BatchData::random(layout, 2024);
    let out = execute_forward(layout, placement, plan, &data).unwrap();

    let (qh, kvh) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;
    let hb = layout.config.head_blocks as usize;

    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    let grads = if check_backward {
        Some(execute_backward(layout, placement, plan, &data, &out, &d_o).unwrap())
    } else {
        None
    };

    for seq in 0..layout.num_seqs() as u32 {
        let (q, k, v) = data.assemble_sequence(layout, seq);
        let len = layout.seq_lens[seq as usize] as usize;
        let (tq, tkv) = (qh * hb, kvh * hb);
        let mask = &layout.masks[seq as usize];
        let (ro, rlse) = reference::attention(&q, &k, &v, len, tq, tkv, dim, mask);
        let mut full_do = vec![0.0f32; len * tq * dim];
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            if tb.seq != seq {
                continue;
            }
            let h0 = tb.head_block as usize * qh;
            let blk = &d_o[&TokenBlockId(i as u32)];
            for t in 0..tb.len as usize {
                for h in 0..qh {
                    for d in 0..dim {
                        full_do[((tb.start as usize + t) * tq + h0 + h) * dim + d] =
                            blk[(t * qh + h) * dim + d];
                    }
                }
            }
        }
        let ref_grads = check_backward.then(|| {
            reference::attention_bwd(&q, &k, &v, &ro, &rlse, &full_do, len, tq, tkv, dim, mask)
        });

        for (i, tb) in layout.token_blocks.iter().enumerate() {
            if tb.seq != seq {
                continue;
            }
            let id = TokenBlockId(i as u32);
            let got = &out[&id];
            let h0q = tb.head_block as usize * qh;
            for t in 0..tb.len as usize {
                let abs = tb.start as usize + t;
                for h in 0..qh {
                    for d in 0..dim {
                        let diff = (got.o[(t * qh + h) * dim + d]
                            - ro[(abs * tq + h0q + h) * dim + d])
                            .abs();
                        assert!(diff < 2e-4, "O mismatch {diff} (seq {seq}, block {i})");
                    }
                }
            }
            if let (Some(grads), Some((rdq, rdk, rdv))) = (&grads, &ref_grads) {
                let g = &grads[&id];
                let h0kv = tb.head_block as usize * kvh;
                for t in 0..tb.len as usize {
                    let abs = tb.start as usize + t;
                    for h in 0..qh {
                        for d in 0..dim {
                            let diff = (g.dq[(t * qh + h) * dim + d]
                                - rdq[(abs * tq + h0q + h) * dim + d])
                                .abs();
                            assert!(diff < 2e-3, "dQ mismatch {diff}");
                        }
                    }
                    for h in 0..kvh {
                        for d in 0..dim {
                            let dk = (g.dk[(t * kvh + h) * dim + d]
                                - rdk[(abs * tkv + h0kv + h) * dim + d])
                                .abs();
                            let dv = (g.dv[(t * kvh + h) * dim + d]
                                - rdv[(abs * tkv + h0kv + h) * dim + d])
                                .abs();
                            assert!(dk < 2e-3 && dv < 2e-3, "dK/dV mismatch {dk}/{dv}");
                        }
                    }
                }
            }
        }
    }
}

fn small_planner(devices: u32, block_size: u32) -> Planner {
    Planner::new(
        ClusterSpec::single_node(devices),
        AttnSpec::new(4, 2, 8, 2),
        PlannerConfig {
            block_size,
            ..Default::default()
        },
    )
}

#[test]
fn dcp_plans_match_reference_all_masks() {
    for (i, mask) in [
        MaskSpec::Causal,
        MaskSpec::Lambda {
            sink: 4,
            window: 24,
        },
        MaskSpec::CausalBlockwise {
            block: 16,
            window_blocks: 2,
            sink_blocks: 1,
        },
        MaskSpec::SharedQuestion {
            question_len: 24,
            answer_lens: vec![24, 24, 24, 24],
        },
    ]
    .into_iter()
    .enumerate()
    {
        let planner = small_planner(4, 16);
        let seqs = vec![(120, mask), (48, MaskSpec::Causal)];
        let out = planner.plan(&seqs).unwrap();
        dcp::sched::schedule::validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        check_numerics(&out.layout, &out.placement, &out.plan, true);
        let _ = i;
    }
}

#[test]
fn dcp_plan_matches_reference_on_skewed_batch() {
    let planner = small_planner(8, 16);
    let seqs: Vec<(u32, MaskSpec)> = vec![
        (200, MaskSpec::Causal),
        (40, MaskSpec::Causal),
        (33, MaskSpec::Causal),
        (64, MaskSpec::Causal),
        (17, MaskSpec::Causal),
    ];
    let out = planner.plan(&seqs).unwrap();
    check_numerics(&out.layout, &out.placement, &out.plan, true);
}

#[test]
fn packed_documents_plan_matches_reference() {
    // Block-diagonal masking (packed pretraining documents): DCP places
    // whole documents like a DP dimension, and the numerics must still be
    // exact.
    let planner = small_planner(4, 16);
    let seqs = vec![(160, MaskSpec::packed_documents(&[50, 30, 48, 32]))];
    let out = planner.plan(&seqs).unwrap();
    dcp::sched::schedule::validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
    check_numerics(&out.layout, &out.placement, &out.plan, true);
    // Documents never attend across boundaries, so with enough devices the
    // plan needs no KV transfers across documents' owners beyond block
    // granularity effects; at minimum it must not exceed the causal plan.
    let causal = planner.plan(&[(160, MaskSpec::Causal)]).unwrap();
    assert!(out.plan.total_comm_bytes() <= causal.plan.total_comm_bytes());
}

#[test]
fn ring_baseline_forward_matches_reference() {
    for b in [Baseline::RfaRing, Baseline::RfaZigzag] {
        let out = b
            .build(
                AttnSpec::new(4, 2, 8, 2),
                4,
                8,
                &[(96, MaskSpec::Causal), (64, MaskSpec::Causal)],
            )
            .unwrap();
        check_numerics(&out.layout, &out.placement, &out.plan, false);
    }
}

#[test]
fn te_baseline_forward_matches_reference_with_masks() {
    let out = Baseline::TransformerEngine { head_groups: 2 }
        .build(
            AttnSpec::new(4, 2, 8, 2),
            4,
            8,
            &[(
                96,
                MaskSpec::SharedQuestion {
                    question_len: 32,
                    answer_lens: vec![32, 32],
                },
            )],
        )
        .unwrap();
    check_numerics(&out.layout, &out.placement, &out.plan, false);
}
