//! Acceptance tests for incremental (warm-started) re-planning.
//!
//! The planner's near-hit tier re-uses a similar prior batch's placement as
//! a warm-start seed. Its correctness contract has two halves:
//!
//! 1. *Identity*: re-planning a block-identical batch through the near-hit
//!    path reproduces the cold plan bit for bit — pinned end to end here by
//!    executing both plans through the `dcp-exec` bitwise oracle.
//! 2. *Legality*: a genuinely different batch that warm-starts from a seed
//!    still yields a balanced, verifier-legal plan whose communication
//!    volume stays within the configured bound of what a cold plan would
//!    produce.

use dcp::core::{IncrementalConfig, Planner, PlannerConfig};
use dcp::exec::plans_equivalent;
use dcp::mask::MaskSpec;
use dcp::sched::schedule::validate_plan;
use dcp::types::{AttnSpec, ClusterSpec, PlanTier};

fn incremental_planner(nodes: u32) -> Planner {
    Planner::new(
        ClusterSpec::p4de(nodes),
        // Tiny heads and blocks: the oracle executes both plans' attention
        // on the CPU, so batches stay numerics-test sized.
        AttnSpec::new(4, 2, 8, 2),
        PlannerConfig {
            block_size: 32,
            // Exact caching off: every repeat exercises the warm path, not
            // the memoized output.
            plan_cache: 0,
            incremental: IncrementalConfig {
                enabled: true,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn warm_replan_of_identical_batch_is_oracle_equivalent_to_cold() {
    for nodes in [1, 2] {
        let p = incremental_planner(nodes);
        let seqs = vec![
            (
                960,
                MaskSpec::Lambda {
                    sink: 2,
                    window: 16,
                },
            ),
            (256, MaskSpec::Causal),
            (128, MaskSpec::Causal),
        ];
        let cold = p.plan(&seqs).unwrap();
        let warm = p.plan(&seqs).unwrap();
        assert!(warm.stats.near_hit, "nodes={nodes}: expected the warm path");
        assert_eq!(warm.placement, cold.placement);
        assert_eq!(warm.plan, cold.plan);
        assert!(
            plans_equivalent(
                &cold.layout,
                &cold.placement,
                &cold.plan,
                &warm.placement,
                &warm.plan,
                7,
            )
            .unwrap(),
            "nodes={nodes}: warm plan diverged bitwise from cold"
        );
    }
}

#[test]
fn warm_replan_of_drifted_batch_is_legal_and_within_the_comm_bound() {
    let p = incremental_planner(2);
    // Same bucketed shape (block counts and mask multiset), different exact
    // lengths: a near hit, not an exact hit.
    let a = vec![(960, MaskSpec::Causal), (256, MaskSpec::Causal)];
    let b = vec![(958, MaskSpec::Causal), (250, MaskSpec::Causal)];
    let seeded = p.plan(&a).unwrap();
    assert_eq!(seeded.tier, PlanTier::Partitioned);
    let out = p.plan(&b).unwrap();
    assert_eq!(p.near_cache_stats().0, 1, "the seed lookup must hit");
    validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
    if out.stats.near_hit {
        // The accepted warm plan honors the configured regression bound
        // against the seeding plan's (scaled) communication volume.
        let cold = incremental_planner(2).plan(&b).unwrap();
        let bound = PlannerConfig::default().incremental.max_regression;
        assert!(
            out.plan.fwd.total_comm_bytes() as f64
                <= (cold.plan.fwd.total_comm_bytes().max(1) as f64) * bound * 1.5,
            "warm comm {} vs cold comm {} exceeds any sane bound",
            out.plan.fwd.total_comm_bytes(),
            cold.plan.fwd.total_comm_bytes()
        );
    }
}
