//! Scale-refactor regression pins.
//!
//! The multi-tier topology model and the incremental max-min network engine
//! both promise *bitwise* compatibility on the default flat topology: a
//! `ClusterSpec` without a `TopologySpec` must produce exactly the plans and
//! simulated makespans the pre-refactor engine produced. The constants below
//! were captured from the engine immediately before the topology/incremental
//! rewrite landed; any low-bit drift in the partitioner hierarchy, the
//! water-fill order, or the event loop shows up here as a hard failure.
//! The CI thread matrix re-runs this at `RAYON_NUM_THREADS` 1/2/8, so the
//! pin doubles as the cross-thread-count determinism check.

use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::{simulate_phase_counted, simulate_phase_scratch, simulate_plan};
use dcp::types::{AttnSpec, ClusterSpec};

fn golden_batch() -> Vec<(u32, MaskSpec)> {
    vec![
        (65536, MaskSpec::Causal),
        (16384, MaskSpec::Causal),
        (16384, MaskSpec::paper_lambda()),
        (8192, MaskSpec::Causal),
    ]
}

/// FNV-1a over the concatenated token and comp assignments.
fn placement_fnv(p: &dcp::sched::Placement) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &d in p.token_to_dev.iter().chain(p.comp_to_dev.iter()) {
        h ^= d as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn flat_topology_plans_and_makespans_are_bitwise_pinned() {
    // (nodes, placement fnv, fwd makespan bits, bwd makespan bits, bytes) —
    // captured from the pre-refactor engine.
    let goldens: [(u32, u64, u64, u64, u64); 3] = [
        (
            1,
            0x2ce2378498f6bec6,
            0x3f8060dadf5adccf,
            0x3f943bd8e5aecb85,
            826343424,
        ),
        (
            2,
            0x5ba0690d7b5baf5b,
            0x3f70c311fab7236a,
            0x3f849101b775bd9a,
            1340702720,
        ),
        (
            4,
            0xc3431b6e89befa6f,
            0x3f69ca882cd15513,
            0x3f7d23c8193a1e44,
            2269216768,
        ),
    ];
    for (nodes, fnv, fwd_bits, bwd_bits, comm) in goldens {
        let cluster = ClusterSpec::p4de(nodes);
        let planner = Planner::new(
            cluster.clone(),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        );
        let out = planner.plan(&golden_batch()).unwrap();
        let sim = simulate_plan(&cluster, &out.plan).unwrap();
        assert_eq!(
            placement_fnv(&out.placement),
            fnv,
            "nodes={nodes}: placement drifted from the pre-refactor golden"
        );
        assert_eq!(
            sim.fwd.makespan.to_bits(),
            fwd_bits,
            "nodes={nodes}: fwd makespan drifted ({} vs golden)",
            sim.fwd.makespan
        );
        assert_eq!(
            sim.bwd.makespan.to_bits(),
            bwd_bits,
            "nodes={nodes}: bwd makespan drifted ({} vs golden)",
            sim.bwd.makespan
        );
        assert_eq!(out.plan.total_comm_bytes(), comm, "nodes={nodes}");
    }
}

#[test]
fn incremental_engine_matches_scratch_on_golden_plans() {
    // Event *times* (makespan, every device finish) agree bitwise — the
    // incremental fill performs the same freeze arithmetic as the global
    // one. The scratch reference's overlap-interval bookkeeping iterates
    // fresh hash maps, so its comm_active/overlap sums wander by an ulp on
    // exact max-min ties; those are held to fp tolerance instead.
    for nodes in [1u32, 2, 4] {
        let cluster = ClusterSpec::p4de(nodes);
        let planner = Planner::new(
            cluster.clone(),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        );
        let out = planner.plan(&golden_batch()).unwrap();
        for phase in [&out.plan.fwd, &out.plan.bwd] {
            let (inc, inc_counters) = simulate_phase_counted(&cluster, phase).unwrap();
            let (scr, scr_counters) = simulate_phase_scratch(&cluster, phase).unwrap();
            assert_eq!(
                inc.makespan.to_bits(),
                scr.makespan.to_bits(),
                "nodes={nodes}: makespans diverged ({} vs {})",
                inc.makespan,
                scr.makespan
            );
            for (d, (a, b)) in inc.devices.iter().zip(&scr.devices).enumerate() {
                assert_eq!(
                    a.finish.to_bits(),
                    b.finish.to_bits(),
                    "nodes={nodes} device {d}: finish diverged"
                );
                for (what, x, y) in [
                    ("comm_active", a.comm_active, b.comm_active),
                    ("overlap", a.overlap, b.overlap),
                    ("exposed_wait", a.exposed_wait, b.exposed_wait),
                ] {
                    assert!(
                        (x - y).abs() <= 1e-9 * y.abs().max(1e-9),
                        "nodes={nodes} device {d}: {what} {x} vs {y}"
                    );
                }
            }
            assert_eq!(inc_counters.events, scr_counters.events);
            assert!(
                inc_counters.touched_flows <= scr_counters.touched_flows,
                "nodes={nodes}: incremental touched {} flows, scratch {}",
                inc_counters.touched_flows,
                scr_counters.touched_flows
            );
        }
    }
}
