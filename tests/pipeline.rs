//! Cross-crate pipeline properties: the headline qualitative results of the
//! paper must hold in the simulated reproduction — DCP communicates less
//! than static context parallelism on skewed batches, wins big under sparse
//! masks, and the dataloader/plan/simulator pipeline composes end to end.

use dcp::baselines::Baseline;
use dcp::core::{cp_cluster, DcpDataloader, Planner, PlannerConfig};
use dcp::data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn micro_cluster() -> ClusterSpec {
    // 2 nodes x 8 GPUs keeps tests fast while still exercising the NIC.
    ClusterSpec::p4de(2)
}

fn planner(cluster: &ClusterSpec) -> Planner {
    Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    )
}

/// A skewed batch: one long sequence plus many short ones (the regime where
/// the paper's Fig. 13 shows the largest DCP win).
fn skewed_batch(mask: MaskSetting) -> Vec<(u32, MaskSpec)> {
    let mut seqs = vec![(32768u32, mask.mask_for(32768))];
    for i in 0..12u32 {
        let len = 1024 + 512 * (i % 5);
        seqs.push((len, mask.mask_for(len)));
    }
    seqs
}

#[test]
fn dcp_communicates_less_than_static_cp_on_skewed_batches() {
    let cluster = micro_cluster();
    let seqs = skewed_batch(MaskSetting::Causal);
    let dcp = planner(&cluster).plan(&seqs).unwrap();
    let te = Baseline::TransformerEngine { head_groups: 2 }
        .build(AttnSpec::paper_micro(), cluster.num_devices(), 1024, &seqs)
        .unwrap();
    let rfa = Baseline::RfaZigzag
        .build(AttnSpec::paper_micro(), cluster.num_devices(), 1024, &seqs)
        .unwrap();
    assert!(
        dcp.plan.total_comm_bytes() < te.plan.total_comm_bytes(),
        "dcp {} !< te {}",
        dcp.plan.total_comm_bytes(),
        te.plan.total_comm_bytes()
    );
    assert!(te.plan.total_comm_bytes() < rfa.plan.total_comm_bytes());
}

#[test]
fn dcp_wins_under_sparse_masks_in_simulated_time() {
    let cluster = micro_cluster();
    for mask in [
        MaskSetting::Lambda,
        MaskSetting::CausalBlockwise,
        MaskSetting::SharedQuestion,
    ] {
        let seqs = skewed_batch(mask);
        let dcp = planner(&cluster).plan(&seqs).unwrap();
        let te = Baseline::TransformerEngine { head_groups: 2 }
            .build(AttnSpec::paper_micro(), cluster.num_devices(), 1024, &seqs)
            .unwrap();
        let t_dcp = simulate_plan(&cluster, &dcp.plan).unwrap().total();
        let t_te = simulate_plan(&cluster, &te.plan).unwrap().total();
        assert!(
            t_dcp < t_te,
            "{}: dcp {t_dcp:.4}s !< te {t_te:.4}s",
            mask.name()
        );
    }
}

#[test]
fn dcp_competitive_on_causal() {
    // On pure causal long sequences DCP is roughly at parity with TE
    // (0.94x–1.16x in the paper); assert it is not catastrophically slower.
    let cluster = micro_cluster();
    let seqs = vec![(65536u32, MaskSpec::Causal), (65536, MaskSpec::Causal)];
    let dcp = planner(&cluster).plan(&seqs).unwrap();
    let te = Baseline::TransformerEngine { head_groups: 2 }
        .build(AttnSpec::paper_micro(), cluster.num_devices(), 1024, &seqs)
        .unwrap();
    let t_dcp = simulate_plan(&cluster, &dcp.plan).unwrap().total();
    let t_te = simulate_plan(&cluster, &te.plan).unwrap().total();
    assert!(
        t_dcp < t_te * 1.25,
        "dcp {t_dcp:.4}s vs te {t_te:.4}s — beyond the paper's worst case"
    );
}

#[test]
fn dataloader_pipeline_composes_with_simulator() {
    let full = ClusterSpec::p4de(2);
    let cp = cp_cluster(&full, 4); // 2 nodes x 2 CP ranks
    let lengths = sample_lengths(DatasetKind::LongDataCollections, 40, 1.0, 16384, 3);
    let batches = pack_batches(&lengths, 32768, |l| MaskSetting::SharedQuestion.mask_for(l));
    let n = batches.len();
    let loader = DcpDataloader::new(planner(&cp), batches, 2);
    let mut seen = 0;
    for item in loader {
        let (batch, out) = item.unwrap();
        assert_eq!(batch.tokens(), out.layout.total_tokens());
        dcp::sched::schedule::validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        let sim = simulate_plan(&cp, &out.plan).unwrap();
        assert!(sim.total() > 0.0);
        seen += 1;
    }
    assert_eq!(seen, n);
}

#[test]
fn plans_survive_json_roundtrip_and_simulate_identically() {
    let cluster = micro_cluster();
    let seqs = skewed_batch(MaskSetting::Lambda);
    let out = planner(&cluster).plan(&seqs).unwrap();
    let json = out.plan.to_json().unwrap();
    let back = dcp::sched::ExecutionPlan::from_json(&json).unwrap();
    assert_eq!(out.plan, back);
    let a = simulate_plan(&cluster, &out.plan).unwrap();
    let b = simulate_plan(&cluster, &back).unwrap();
    assert_eq!(a, b);
}

#[test]
fn loongtrain_best_inner_ring_not_worse_than_plain() {
    let cluster = micro_cluster();
    let seqs = vec![(32768u32, MaskSpec::Causal)];
    let mut times = Vec::new();
    for w in [1u32, 2, 4, 8] {
        let lt = Baseline::LoongTrain {
            head_groups: 2,
            inner_ring: w,
        }
        .build(AttnSpec::paper_micro(), cluster.num_devices(), 1024, &seqs)
        .unwrap();
        times.push(simulate_plan(&cluster, &lt.plan).unwrap().total());
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        best <= times[0] * 1.0001,
        "double ring never hurts: {times:?}"
    );
}
