//! Observability determinism regression: the unified event stream must be
//! *identical up to span durations* at every `RAYON_NUM_THREADS`. Identity
//! covers everything else — `seq` (arrival order at the sink), source,
//! kind, name, iteration, device, phase, division, label, bytes, flops and
//! values — so this pins both what is emitted and the order it arrives in.
//!
//! The workload exercises every emitting layer: the planner (stage spans,
//! cache counters), the look-ahead dataloader (which replays worker-side
//! planner summaries serially on the consumer thread), the numeric
//! executor's instruction spans and buffer gauges, and the adapted
//! simulator timeline.
//!
//! Everything lives in a single `#[test]` because `RAYON_NUM_THREADS` is
//! process-global state.

use std::collections::HashMap;
use std::sync::Arc;

use dcp::blocks::TokenBlockId;
use dcp::core::{DcpDataloader, Planner, PlannerConfig};
use dcp::data::Batch;
use dcp::exec::{execute_backward_obs, execute_forward_obs, BatchData, ExecObs};
use dcp::mask::MaskSpec;
use dcp::obs::{
    critical_path, identities, AnalysisScope, Attribution, Event, ObsHandle, ObsSink, Phase,
    RecordingSink,
};
use dcp::sim::{simulate_phase_traced, trace_to_obs};
use dcp::types::{AttnSpec, ClusterSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The `determinism.rs` skewed batch (one long sequence, many short ones).
fn skewed_batch() -> Vec<(u32, MaskSpec)> {
    let mut seqs = vec![(768u32, MaskSpec::Causal)];
    for i in 0..12u32 {
        let len = 64 + 32 * (i % 5);
        seqs.push((
            len,
            MaskSpec::Lambda {
                sink: 4,
                window: 24,
            },
        ));
    }
    seqs
}

/// A second batch with a distinct signature, so loader runs never depend on
/// racy plan-cache hits between concurrent look-ahead workers.
fn plain_batch() -> Vec<(u32, MaskSpec)> {
    (0..8u32)
        .map(|i| (128 + 64 * (i % 3), MaskSpec::Causal))
        .collect()
}

fn planner_cfg() -> PlannerConfig {
    PlannerConfig {
        block_size: 128,
        ..Default::default()
    }
}

/// Runs the full instrumented pipeline once and returns the captured
/// stream: direct planner pass, look-ahead loader over two distinct
/// batches, executor forward + backward, simulated forward phase.
fn capture() -> Vec<Event> {
    let cluster = ClusterSpec::p4de(1);
    let attn = AttnSpec::new(4, 2, 16, 1);
    let sink = Arc::new(RecordingSink::new());
    let handle = ObsHandle::new(sink.clone());

    // 1. Planner, called directly on this thread.
    let planner = Planner::new(cluster.clone(), attn, planner_cfg()).with_obs(handle.clone());
    let out = planner
        .plan_for_iter(&skewed_batch(), Some(0))
        .expect("plan");

    // 2. Look-ahead dataloader: worker-side planner summaries are replayed
    //    serially on the consumer thread.
    let loader_planner = Planner::new(cluster.clone(), attn, planner_cfg());
    let batches = vec![
        Batch {
            seqs: skewed_batch(),
        },
        Batch {
            seqs: plain_batch(),
        },
    ];
    let loader = DcpDataloader::new(loader_planner, batches, 2).with_obs(handle.clone());
    for item in loader {
        item.expect("loader yields");
    }

    // 3. Executor: per-instruction spans from the serial interpreter loop,
    //    buffer gauges after each phase.
    let data = BatchData::random(&out.layout, 2024);
    let (qh, _) = BatchData::head_counts(&out.layout);
    let dim = out.layout.attn.head_dim as usize;
    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    let eo = ExecObs::new(sink.as_ref()).with_iter(0);
    let fwd =
        execute_forward_obs(&out.layout, &out.placement, &out.plan, &data, &eo).expect("forward");
    execute_backward_obs(
        &out.layout,
        &out.placement,
        &out.plan,
        &data,
        &fwd,
        &d_o,
        &eo,
    )
    .expect("backward");

    // 4. Simulator timeline, adapted into the same stream.
    let (_, trace) = simulate_phase_traced(&cluster, &out.plan.fwd).expect("simulate");
    sink.record_all(trace_to_obs(&trace, Phase::Fwd, Some(0)));

    sink.drain()
}

#[test]
fn event_stream_is_identical_across_thread_counts() {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();

    let mut streams = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        streams.push((threads, capture()));
    }
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    let (_, base) = &streams[0];
    assert!(
        base.len() > 100,
        "expected a substantial stream, got {} events",
        base.len()
    );
    // All four sources present.
    for source in [
        dcp::obs::Source::Planner,
        dcp::obs::Source::Dataloader,
        dcp::obs::Source::Executor,
        dcp::obs::Source::Sim,
    ] {
        assert!(
            base.iter().any(|e| e.source == source),
            "no events from {source:?}"
        );
    }

    let base_ids = identities(base);
    for (threads, stream) in &streams[1..] {
        assert_eq!(
            stream.len(),
            base.len(),
            "event count differs at RAYON_NUM_THREADS={threads}"
        );
        let ids = identities(stream);
        for (i, (a, b)) in base_ids.iter().zip(ids.iter()).enumerate() {
            assert_eq!(
                a, b,
                "event {i} differs at RAYON_NUM_THREADS={threads} (seq/order/payload \
                 must not depend on thread count)"
            );
        }
    }

    // Critical-path analysis over the simulated slice must be *bitwise*
    // identical at every thread count: same makespan bits, same bucket
    // bits, same path. The sim timeline is bitwise deterministic and the
    // walk is serial, so any divergence here is an analysis-order bug.
    let attribute = |events: &[Event]| -> Attribution {
        critical_path(events, &AnalysisScope::sim(Phase::Fwd))
    };
    let base_attr = attribute(base);
    assert!(
        base_attr.makespan > 0.0 && !base_attr.steps.is_empty(),
        "the sim slice must yield a non-trivial critical path"
    );
    assert!(base_attr.sums_to_makespan(1e-6));
    let base_json = serde_json::to_string(&base_attr).expect("attribution serializes");
    for (threads, stream) in &streams[1..] {
        let attr = attribute(stream);
        assert_eq!(
            attr.makespan.to_bits(),
            base_attr.makespan.to_bits(),
            "makespan bits differ at RAYON_NUM_THREADS={threads}"
        );
        for (a, b, what) in [
            (attr.compute, base_attr.compute, "compute"),
            (attr.exposed_comm, base_attr.exposed_comm, "exposed_comm"),
            (attr.wait, base_attr.wait, "wait"),
            (attr.straggle, base_attr.straggle, "straggle"),
            (attr.recovery, base_attr.recovery, "recovery"),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what} bits differ at RAYON_NUM_THREADS={threads}"
            );
        }
        let json = serde_json::to_string(&attr).expect("attribution serializes");
        assert_eq!(
            json, base_json,
            "full attribution differs at RAYON_NUM_THREADS={threads}"
        );
    }

    // Sanity on the identity contract itself: durations are excluded.
    let with_time = Event::span(dcp::obs::Source::Executor, "attn").with_time(1.0, 2.0);
    assert_eq!(with_time.identity(), with_time.identity());
    assert_eq!(with_time.identity().start_s, 0.0);
    assert_eq!(with_time.identity().dur_s, 0.0);
}
