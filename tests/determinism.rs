//! Parallel determinism regression: the executor runs its hot path on a
//! thread pool whose width is controlled by `RAYON_NUM_THREADS`, and the
//! contract is that results are *bitwise identical* at every thread count.
//! This executes a scaled-down version of the `pipeline.rs` skewed batch
//! (one long sequence plus many short ones) through plan → forward →
//! backward at the default width and at one thread, and compares every
//! output float exactly.
//!
//! Everything lives in a single `#[test]` because `RAYON_NUM_THREADS` is
//! process-global state.

use std::collections::HashMap;

use dcp::blocks::TokenBlockId;
use dcp::core::{Planner, PlannerConfig};
use dcp::exec::executor::{execute_backward, execute_forward, BatchData, BlockGrads, BlockOut};
use dcp::exec::reference;
use dcp::mask::MaskSpec;
use dcp::types::{AttnSpec, ClusterSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The `pipeline.rs` skewed batch shape (one long sequence, many short
/// ones), scaled down ~40x so the numeric executor finishes in milliseconds.
fn skewed_batch() -> Vec<(u32, MaskSpec)> {
    let mut seqs = vec![(768u32, MaskSpec::Causal)];
    for i in 0..12u32 {
        let len = 64 + 32 * (i % 5);
        seqs.push((
            len,
            MaskSpec::Lambda {
                sink: 4,
                window: 24,
            },
        ));
    }
    seqs
}

type ExecResult = (
    HashMap<TokenBlockId, BlockOut>,
    HashMap<TokenBlockId, BlockGrads>,
    Vec<f32>,
    Vec<f32>,
);

#[test]
fn executor_is_bitwise_deterministic_across_thread_counts() {
    let cluster = ClusterSpec::p4de(1);
    let attn = AttnSpec::new(4, 2, 16, 1);
    let planner = Planner::new(
        cluster,
        attn,
        PlannerConfig {
            block_size: 128,
            ..Default::default()
        },
    );
    let seqs = skewed_batch();
    let out = planner.plan(&seqs).unwrap();
    let (layout, placement, plan) = (&out.layout, &out.placement, &out.plan);
    let data = BatchData::random(layout, 2024);
    let (qh, _) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;

    let mut d_o = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(99);
    for (i, tb) in layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }

    let run = || -> ExecResult {
        let fwd = execute_forward(layout, placement, plan, &data).unwrap();
        let bwd = execute_backward(layout, placement, plan, &data, &fwd, &d_o).unwrap();
        // Also cover the dense reference's parallel paths on the long
        // sequence.
        let (q, k, v) = data.assemble_sequence(layout, 0);
        let len = layout.seq_lens[0] as usize;
        let mask = &layout.masks[0];
        let (ro, rlse) = reference::attention(&q, &k, &v, len, 4, 2, dim, mask);
        let full_do: Vec<f32> = (0..len * 4 * dim).map(|i| (i as f32).sin()).collect();
        let (rdq, rdk, rdv) =
            reference::attention_bwd(&q, &k, &v, &ro, &rlse, &full_do, len, 4, 2, dim, mask);
        let mut ref_pack = ro;
        ref_pack.extend(rdq);
        ref_pack.extend(rdk);
        ref_pack.extend(rdv);
        (fwd, bwd, rlse, ref_pack)
    };

    let parallel = run();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::set_var("RAYON_NUM_THREADS", "3");
    let three = run();
    std::env::remove_var("RAYON_NUM_THREADS");

    for other in [&serial, &three] {
        for (tb, out) in &parallel.0 {
            assert_eq!(out, &other.0[tb], "forward output differs for {tb:?}");
        }
        for (tb, g) in &parallel.1 {
            assert_eq!(g, &other.1[tb], "gradients differ for {tb:?}");
        }
        assert_eq!(parallel.2, other.2, "reference lse differs");
        assert_eq!(parallel.3, other.3, "reference fwd/bwd pack differs");
    }
}
