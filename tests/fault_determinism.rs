//! Fault-injection determinism regression: planning runs on the rayon
//! pool (`RAYON_NUM_THREADS`-wide) and fault-injected simulation draws
//! straggler jitter from `FaultSpec::seed`, and the contract is that the
//! whole faulted pipeline — plan, then simulate under a fixed fault spec —
//! is *bitwise identical* at every thread count.
//!
//! Everything lives in a single `#[test]` because `RAYON_NUM_THREADS` is
//! process-global state (mirroring `tests/determinism.rs`).

use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::{simulate_plan_faulted, Fault, FaultSpec, PlanSim};
use dcp::types::{AttnSpec, ClusterSpec};

fn spec() -> FaultSpec {
    FaultSpec {
        seed: 2025,
        faults: vec![
            Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            Fault::DegradedLink {
                src: 2,
                dst: 0,
                factor: 0.05,
            },
            Fault::FailedLink { src: 5, dst: 1 },
            Fault::DelayedStart {
                device: 3,
                delay_s: 0.002,
            },
        ],
    }
}

fn bits(sim: &PlanSim) -> Vec<u64> {
    let mut out = vec![sim.fwd.makespan.to_bits(), sim.bwd.makespan.to_bits()];
    for phase in [&sim.fwd, &sim.bwd] {
        for d in &phase.devices {
            for v in [
                d.attn,
                d.reduce,
                d.copy,
                d.exposed_wait,
                d.comm_active,
                d.overlap,
                d.finish,
            ] {
                out.push(v.to_bits());
            }
        }
    }
    out
}

#[test]
fn faulted_simulation_is_bitwise_deterministic_across_thread_counts() {
    let cluster = ClusterSpec::p4de(2);
    let planner = Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig::default(),
    );
    // Skewed batch: one long sequence plus several short ones, mixed masks.
    let mut seqs = vec![(32768u32, MaskSpec::Causal)];
    for i in 0..6u32 {
        seqs.push((4096 + 1024 * (i % 3), MaskSpec::paper_lambda()));
    }

    let fault_spec = spec();
    let run = || {
        let out = planner.plan(&seqs).unwrap();
        let sim = simulate_plan_faulted(&cluster, &out.plan, &fault_spec).unwrap();
        (
            out.placement.token_to_dev.clone(),
            out.placement.comp_to_dev.clone(),
            out.tier,
            bits(&sim),
        )
    };

    let parallel = run();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::set_var("RAYON_NUM_THREADS", "3");
    let three = run();
    std::env::remove_var("RAYON_NUM_THREADS");

    for (name, other) in [("serial", &serial), ("three", &three)] {
        assert_eq!(parallel.0, other.0, "token placement differs vs {name}");
        assert_eq!(parallel.1, other.1, "comp placement differs vs {name}");
        assert_eq!(parallel.2, other.2, "plan tier differs vs {name}");
        assert_eq!(parallel.3, other.3, "faulted sim bits differ vs {name}");
    }

    // Same spec, same process, repeated: still bitwise identical.
    let again = run();
    assert_eq!(parallel.3, again.3);
}
