//! Serde round-trip regression for every report struct that reaches a
//! machine-readable artifact (`BENCH_*.json`, `TRACE_e2e.json`, figure
//! JSON). The contract: serialize → deserialize must reproduce the value
//! exactly. Because the vendored serde derive treats *missing* fields as
//! errors for non-`Option` types, adding a field to any of these structs
//! breaks deserialization of old documents — which is exactly the loud
//! schema drift the versioned reports are designed to surface.

use std::fmt::Debug;

use dcp::core::{
    simulate_iteration_with_recovery, E2eConfig, FailureClass, PlanStats, Planner, PlannerConfig,
    PlanningTimes, ReplanEvent,
};
use dcp::mask::MaskSpec;
use dcp::obs::{Event, Phase, Source};
use dcp::sched::{DivisionReport, PlanReport};
use dcp::sim::{simulate_plan, Fault, FaultSpec, TraceEvent, TraceKind};
use dcp::types::{AttnSpec, ClusterSpec};
use serde::{Deserialize, Serialize};

/// Serialize → deserialize → compare, through both a JSON string and a
/// `serde_json::Value` (the path the report binaries use).
fn roundtrip<T>(val: &T)
where
    T: Serialize + Deserialize + PartialEq + Debug,
{
    let text = serde_json::to_string(val).expect("serialize");
    let back: T = serde_json::from_str(&text).expect("deserialize");
    assert_eq!(&back, val, "JSON string round-trip changed the value");
    let value = serde_json::to_value(val).expect("to_value");
    let back: T = serde_json::from_value(&value).expect("from_value");
    assert_eq!(&back, val, "Value round-trip changed the value");
}

/// One small planned workload shared by the structural tests.
fn plan_small() -> dcp::core::PlanOutput {
    let planner = Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::new(4, 2, 16, 1),
        PlannerConfig {
            block_size: 128,
            ..Default::default()
        },
    );
    planner
        .plan(&[(768, MaskSpec::Causal), (256, MaskSpec::Causal)])
        .expect("plan")
}

#[test]
fn plan_report_structs_roundtrip() {
    let out = plan_small();
    let report = PlanReport::from_phase(&out.plan.fwd);
    assert!(!report.devices.is_empty());
    assert!(report.divisions.iter().any(|d| !d.is_empty()));
    roundtrip(&report);
    roundtrip(&report.devices[0]);
    let div: &DivisionReport = report
        .divisions
        .iter()
        .flatten()
        .next()
        .expect("at least one division");
    roundtrip(div);
}

#[test]
fn planner_stats_roundtrip() {
    let out = plan_small();
    roundtrip(&out.stats);
    roundtrip(&out.times);
    // Defaults too: all-zero values must not serialize differently.
    roundtrip(&PlanStats::default());
    roundtrip(&PlanningTimes::default());
}

#[test]
fn dataloader_events_roundtrip() {
    for failure in [
        FailureClass::WorkerDied,
        FailureClass::Timeout,
        FailureClass::PlanError,
    ] {
        roundtrip(&failure);
        roundtrip(&ReplanEvent {
            batch_index: 3,
            failure,
            attempts: 2,
            recovered: failure != FailureClass::PlanError,
            recovery_wall_s: 0.125,
        });
    }
}

#[test]
fn e2e_breakdown_roundtrip() {
    let cfg = E2eConfig {
        model: dcp::types::ModelSpec::gpt_8b(),
        tp: 1,
        cluster: ClusterSpec::p4de(1),
    };
    let out = plan_small();
    let sim = simulate_plan(&cfg.cluster, &out.plan).expect("simulate");
    let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
    let it =
        simulate_iteration_with_recovery(&cfg, &sim, max_tokens, out.layout.total_tokens(), 0.25);
    assert_eq!(it.recovery, 0.25);
    roundtrip(&it);
}

#[test]
fn sim_structs_roundtrip() {
    let out = plan_small();
    let sim = simulate_plan(&ClusterSpec::p4de(1), &out.plan).expect("simulate");
    roundtrip(&sim);
    roundtrip(&sim.fwd);
    roundtrip(&sim.fwd.devices[0]);
    roundtrip(&TraceEvent {
        device: 2,
        kind: TraceKind::Transfer { from: 1 },
        start: 0.5e-3,
        end: 0.9e-3,
    });
    roundtrip(&FaultSpec {
        seed: 7,
        faults: vec![
            Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            Fault::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.1,
            },
            Fault::DelayedStart {
                device: 2,
                delay_s: 1e-3,
            },
        ],
    });
}

#[test]
fn pass_pipeline_structs_roundtrip() {
    use dcp::sched::{PassConfig, PassManager, PassOutcome};

    roundtrip(&PassConfig::default());
    roundtrip(&PassConfig::optimize());
    roundtrip(&PassOutcome::default());

    // Real outcomes from a planner run with passes enabled, and the
    // `PlanOutput.passes` field they land in.
    let planner = Planner::new(
        ClusterSpec::p4de(1),
        AttnSpec::new(4, 2, 16, 1),
        PlannerConfig {
            block_size: 128,
            passes: PassConfig::optimize(),
            ..Default::default()
        },
    );
    let out = planner
        .plan(&[(768, MaskSpec::Causal), (256, MaskSpec::Causal)])
        .expect("plan");
    for outcome in &out.passes {
        roundtrip(outcome);
    }

    // Outcomes from a direct PassManager run round-trip too.
    let mut opt = out.plan.clone();
    let outcomes =
        PassManager::new(PassConfig::optimize()).run_plan(&out.layout, &out.placement, &mut opt);
    assert_eq!(outcomes.len(), 4 * 2, "four passes over two phases");
    for outcome in &outcomes {
        roundtrip(outcome);
    }
}

#[test]
fn obs_events_roundtrip() {
    let span = Event::span(Source::Executor, "attn")
        .with_iter(4)
        .with_device(3)
        .with_phase(Phase::Bwd)
        .with_division(2)
        .with_label("tier partitioned")
        .with_bytes(4096)
        .with_flops(1 << 20)
        .with_time(0.25, 0.125);
    roundtrip(&span);
    roundtrip(&Event::counter(Source::Planner, "plan_cache_hit", 1.0));
    roundtrip(&Event::gauge(Source::Executor, "peak_buffer_bytes", 2048.0).with_device(1));
    roundtrip(&Event::span(Source::Executor, "comm_launch").with_comm(17));
    // Identity (timing-stripped) events serialize cleanly too.
    roundtrip(&span.identity());
}

#[test]
fn trace_analysis_structs_roundtrip() {
    use dcp::obs::{
        critical_path, AnalysisScope, DetectorBank, DetectorConfig, FlightRecorder, ObsSink,
        RecorderConfig,
    };
    use dcp::sim::{simulate_phase_faulted, trace_to_obs};

    let out = plan_small();
    let cluster = ClusterSpec::p4de(1);
    let spec = FaultSpec {
        seed: 7,
        faults: vec![Fault::Straggler {
            device: 0,
            slowdown: 4.0,
        }],
    };
    let (_, trace) = simulate_phase_faulted(&cluster, &out.plan.fwd, &spec).expect("sim");
    let events = trace_to_obs(&trace, Phase::Fwd, Some(0));

    // Attribution (with its nested path steps and per-device rows).
    let attr = critical_path(&events, &AnalysisScope::sim(Phase::Fwd));
    assert!(attr.makespan > 0.0);
    roundtrip(&attr);
    roundtrip(&attr.per_device[0]);
    roundtrip(&attr.steps[0]);

    // Incidents out of the detector bank (fed the straggler repeatedly so
    // it trips), and the detector config itself.
    let mut bank = DetectorBank::new(DetectorConfig::default());
    for _ in 0..4 {
        bank.ingest(&events);
    }
    roundtrip(&DetectorConfig::default());
    for incident in bank.incidents() {
        roundtrip(&incident);
    }

    // A full postmortem bundle through the flight recorder.
    let recorder = FlightRecorder::new(RecorderConfig::default());
    recorder.record_all(events);
    for incident in bank.incidents() {
        recorder.note_incident(incident);
    }
    let bundle = recorder.force_dump("gate_failure");
    bundle.validate().expect("bundle validates");
    roundtrip(&bundle);
}
