//! `dcpctl` — command-line driver for the DCP stack.
//!
//! ```text
//! dcpctl gen-workload --dataset ldc --batches 2 --budget 131072 --mask lambda --out w.json
//! dcpctl plan      --workload w.json --nodes 2 [--block 1024] [--out plan.json]
//! dcpctl simulate  --workload w.json --nodes 2 [--trace trace.json] [--gantt]
//! dcpctl compare   --workload w.json --nodes 4
//! ```
//!
//! Workload files are JSON: `{ "attn": {...}, "batches": [[[len, mask], ...], ...] }`.

use std::collections::HashMap;
use std::process::ExitCode;

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
use dcp::mask::MaskSpec;
use dcp::sim::{ascii_gantt, simulate_phase_traced, simulate_plan, to_chrome_trace};
use dcp::types::{AttnSpec, ClusterSpec};
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct Workload {
    attn: AttnSpec,
    batches: Vec<Vec<(u32, MaskSpec)>>,
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::from("true")
            };
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dcpctl <gen-workload|plan|simulate|compare> [flags]\n\
         \n\
         gen-workload  --dataset <longalign|ldc> --batches N --budget TOKENS\n\
         \u{20}             --mask <causal|lambda|causal_blockwise|shared_question>\n\
         \u{20}             [--scale F] [--seed N] --out FILE\n\
         plan          --workload FILE --nodes N [--block B] [--out FILE]\n\
         simulate      --workload FILE --nodes N [--block B] [--trace FILE] [--gantt]\n\
         compare       --workload FILE --nodes N [--block B]"
    );
    ExitCode::from(2)
}

fn load_workload(flags: &HashMap<String, String>) -> Result<Workload, String> {
    let path = flags.get("workload").ok_or("missing --workload")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn cluster_of(flags: &HashMap<String, String>) -> Result<ClusterSpec, String> {
    let nodes: u32 = flags
        .get("nodes")
        .ok_or("missing --nodes")?
        .parse()
        .map_err(|e| format!("--nodes: {e}"))?;
    Ok(ClusterSpec::p4de(nodes.max(1)))
}

fn planner_of(
    flags: &HashMap<String, String>,
    cluster: &ClusterSpec,
    attn: AttnSpec,
) -> Result<Planner, String> {
    let block: u32 = flags
        .get("block")
        .map(|b| b.parse())
        .transpose()
        .map_err(|e| format!("--block: {e}"))?
        .unwrap_or(1024);
    Ok(Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: block,
            ..Default::default()
        },
    ))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = match flags.get("dataset").map(String::as_str) {
        Some("longalign") => DatasetKind::LongAlign,
        Some("ldc") | None => DatasetKind::LongDataCollections,
        Some(other) => return Err(format!("unknown dataset {other}")),
    };
    let mask = match flags.get("mask").map(String::as_str) {
        Some("causal") | None => MaskSetting::Causal,
        Some("lambda") => MaskSetting::Lambda,
        Some("causal_blockwise") => MaskSetting::CausalBlockwise,
        Some("shared_question") => MaskSetting::SharedQuestion,
        Some(other) => return Err(format!("unknown mask {other}")),
    };
    let n: usize = flags
        .get("batches")
        .map_or(Ok(1), |v| v.parse())
        .map_err(|e| format!("--batches: {e}"))?;
    let budget: u64 = flags
        .get("budget")
        .map_or(Ok(131_072), |v| v.parse())
        .map_err(|e| format!("--budget: {e}"))?;
    let scale: f64 = flags
        .get("scale")
        .map_or(Ok(1.0), |v| v.parse())
        .map_err(|e| format!("--scale: {e}"))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(7), |v| v.parse())
        .map_err(|e| format!("--seed: {e}"))?;
    let out = flags.get("out").ok_or("missing --out")?;

    let lengths = sample_lengths(dataset, n * 64, scale, budget as u32, seed);
    let batches: Vec<Vec<(u32, MaskSpec)>> = pack_batches(&lengths, budget, |l| mask.mask_for(l))
        .into_iter()
        .take(n)
        .map(|b| b.seqs)
        .collect();
    let w = Workload {
        attn: AttnSpec::paper_micro(),
        batches,
    };
    std::fs::write(out, serde_json::to_string_pretty(&w).expect("serializable"))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} batches to {out}", w.batches.len());
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = load_workload(flags)?;
    let cluster = cluster_of(flags)?;
    let planner = planner_of(flags, &cluster, w.attn)?;
    for (i, batch) in w.batches.iter().enumerate() {
        let out = planner.plan(batch).map_err(|e| e.to_string())?;
        println!(
            "batch {i}: {} seqs, {} tokens -> {} comp blocks, comm {:.1} MiB, planned in {:.1} ms",
            batch.len(),
            out.layout.total_tokens(),
            out.layout.comp_blocks.len(),
            out.plan.total_comm_bytes() as f64 / (1 << 20) as f64,
            out.times.total() * 1e3
        );
        if let Some(path) = flags.get("out") {
            let path = if w.batches.len() == 1 {
                path.clone()
            } else {
                format!("{path}.{i}")
            };
            std::fs::write(&path, out.plan.to_json().map_err(|e| e.to_string())?)
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("  plan written to {path}");
        }
    }
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = load_workload(flags)?;
    let cluster = cluster_of(flags)?;
    let planner = planner_of(flags, &cluster, w.attn)?;
    for (i, batch) in w.batches.iter().enumerate() {
        let out = planner.plan(batch).map_err(|e| e.to_string())?;
        let sim = simulate_plan(&cluster, &out.plan).map_err(|e| e.to_string())?;
        println!(
            "batch {i}: attention fwd {:.3} ms, bwd {:.3} ms (max exposed wait {:.3} ms)",
            sim.fwd.makespan * 1e3,
            sim.bwd.makespan * 1e3,
            (sim.fwd.max_exposed() + sim.bwd.max_exposed()) * 1e3
        );
        if flags.contains_key("gantt") {
            let (_, trace) =
                simulate_phase_traced(&cluster, &out.plan.fwd).map_err(|e| e.to_string())?;
            print!("{}", ascii_gantt(&trace, 100));
        }
        if let Some(path) = flags.get("trace") {
            let (_, trace) =
                simulate_phase_traced(&cluster, &out.plan.fwd).map_err(|e| e.to_string())?;
            let path = if w.batches.len() == 1 {
                path.clone()
            } else {
                format!("{path}.{i}")
            };
            std::fs::write(&path, to_chrome_trace(&trace))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("  chrome trace written to {path} (open in chrome://tracing)");
        }
    }
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let w = load_workload(flags)?;
    let cluster = cluster_of(flags)?;
    let planner = planner_of(flags, &cluster, w.attn)?;
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "system", "fwd_ms", "bwd_ms", "comm_MiB"
    );
    for (i, batch) in w.batches.iter().enumerate() {
        println!("--- batch {i} ({} seqs) ---", batch.len());
        let out = planner.plan(batch).map_err(|e| e.to_string())?;
        let sim = simulate_plan(&cluster, &out.plan).map_err(|e| e.to_string())?;
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>12.1}",
            "dcp",
            sim.fwd.makespan * 1e3,
            sim.bwd.makespan * 1e3,
            out.plan.total_comm_bytes() as f64 / (1 << 20) as f64
        );
        let causal_only = batch.iter().all(|(_, m)| matches!(m, MaskSpec::Causal));
        let mut baselines = vec![
            Baseline::RfaRing,
            Baseline::RfaZigzag,
            Baseline::TransformerEngine { head_groups: 2 },
        ];
        if causal_only {
            baselines.push(Baseline::LoongTrain {
                head_groups: 2,
                inner_ring: 1,
            });
        }
        for b in baselines {
            match b.build(w.attn, cluster.num_devices(), 256, batch) {
                Ok(o) => {
                    let s = simulate_plan(&cluster, &o.plan).map_err(|e| e.to_string())?;
                    println!(
                        "{:<16} {:>10.3} {:>10.3} {:>12.1}",
                        b.name(),
                        s.fwd.makespan * 1e3,
                        s.bwd.makespan * 1e3,
                        o.plan.total_comm_bytes() as f64 / (1 << 20) as f64
                    );
                }
                Err(e) => println!("{:<16} unsupported: {e}", b.name()),
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "gen-workload" => cmd_gen(&flags),
        "plan" => cmd_plan(&flags),
        "simulate" => cmd_simulate(&flags),
        "compare" => cmd_compare(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcpctl {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}
