//! # DCP: Dynamic Context Parallelism — facade crate
//!
//! A Rust reproduction of *DCP: Addressing Input Dynamism In Long-Context
//! Training via Dynamic Context Parallelism* (SOSP '25). This crate
//! re-exports the whole workspace under one roof; see the individual crates
//! for details:
//!
//! - [`types`]: cluster topology, attention/model shapes.
//! - [`mask`]: attention mask specifications (causal, lambda, causal
//!   blockwise, shared question) and blockwise sparsity queries.
//! - [`obs`]: unified observability layer — structured spans/counters/
//!   gauges threaded through planner, dataloader, executor and sim, with
//!   Chrome-trace/JSONL/Prometheus exporters.
//! - [`blocks`]: fine-grained data/computation block generation (paper §4.1).
//! - [`hypergraph`]: multilevel multi-constraint hypergraph partitioner
//!   (paper §4.2; a from-scratch KaHyPar replacement).
//! - [`sched`]: division scheduling, buffer management and the five-
//!   instruction execution-plan IR (paper §4.3, §5).
//! - [`exec`]: numerical blockwise attention executor (CPU f32) used to
//!   validate plan correctness and reproduce the loss-curve experiment.
//! - [`sim`]: discrete-event cluster simulator with a max-min fair network
//!   model, standing in for the paper's A100 testbed.
//! - [`baselines`]: RingFlashAttention (ring/zigzag), LoongTrain and
//!   TransformerEngine-style static context parallelism plan builders.
//! - [`data`]: synthetic long-context dataset generators and batching.
//! - [`core`]: the DCP planner, dataloader and end-to-end iteration model.
//!
//! ## Quickstart
//!
//! ```
//! use dcp::core::{Planner, PlannerConfig};
//! use dcp::mask::MaskSpec;
//! use dcp::types::{AttnSpec, ClusterSpec};
//!
//! // Two nodes of 8 GPUs, the paper's micro-benchmark attention op.
//! let cluster = ClusterSpec::p4de(2);
//! let planner = Planner::new(cluster, AttnSpec::paper_micro(), PlannerConfig::default());
//!
//! // A batch of three sequences with different masks.
//! let batch = vec![
//!     (4096u32, MaskSpec::Causal),
//!     (8192, MaskSpec::paper_lambda()),
//!     (2048, MaskSpec::Causal),
//! ];
//! let plan = planner.plan(&batch).unwrap();
//! assert_eq!(plan.num_devices(), 16);
//! ```

pub use dcp_baselines as baselines;
pub use dcp_blocks as blocks;
pub use dcp_core as core;
pub use dcp_data as data;
pub use dcp_exec as exec;
pub use dcp_hypergraph as hypergraph;
pub use dcp_mask as mask;
pub use dcp_obs as obs;
pub use dcp_sched as sched;
pub use dcp_sim as sim;
pub use dcp_types as types;
