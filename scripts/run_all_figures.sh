#!/usr/bin/env bash
# Regenerates every figure of the paper's evaluation. Results land in
# results/*.json; tables print to stdout.
#
# Usage: run_all_figures.sh [--smoke]
#   --smoke   run a small representative subset (micro-benchmark, planning
#             time, loss curves) — used by CI to keep the figure pipeline
#             honest without paying for the full sweep.
#
# DCP_BENCH_BATCHES (default 8) controls batches per configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig01_comm_overhead
  fig02_seqlen_dist
  fig05_motivating
  fig07_redundant_comm
  fig13_micro_causal
  fig14_micro_masks
  fig15_e2e_longalign
  fig16_e2e_ldc
  fig17_comm_vs_blocksize
  fig18_planning_time
  fig19_comm_vs_sparsity
  fig20_comm_vs_epsilon
  fig21_loss_curves
  fig22_decomposition
  ablations
  memory_report
  scaling_report
)

SMOKE_BINS=(
  fig13_micro_causal
  fig18_planning_time
  fig21_loss_curves
)

if [[ "${1:-}" == "--smoke" ]]; then
  BINS=("${SMOKE_BINS[@]}")
  echo "[smoke mode: ${#BINS[@]} of 17 figure bins]"
fi

cargo build --release -p dcp-bench --bins
for bin in "${BINS[@]}"; do
  echo
  echo "==================== $bin ===================="
  cargo run --release -q -p dcp-bench --bin "$bin"
done
