//! Quickstart: plan one mixed batch with DCP, inspect the plan, and compare
//! its communication and simulated time against static context parallelism.
//!
//! Run with: `cargo run --release --example quickstart`

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two p4de nodes: 16 A100s, NVSwitch inside a node, 4x100 Gbps between.
    let cluster = ClusterSpec::p4de(2);
    // The paper's micro-benchmark attention op (GQA 8Q/2KV heads, d=128).
    let attn = AttnSpec::paper_micro();
    let planner = Planner::new(cluster.clone(), attn, PlannerConfig::default());

    // A realistic skewed batch: one long document and a pile of short ones.
    let batch: Vec<(u32, MaskSpec)> = vec![
        (65536, MaskSpec::Causal),
        (8192, MaskSpec::Causal),
        (4096, MaskSpec::Causal),
        (4096, MaskSpec::Causal),
        (2048, MaskSpec::Causal),
        (2048, MaskSpec::Causal),
        (1024, MaskSpec::Causal),
    ];

    let out = planner.plan(&batch)?;
    println!("== DCP plan ==");
    println!(
        "batch: {} sequences, {} tokens",
        out.layout.num_seqs(),
        out.layout.total_tokens()
    );
    println!(
        "blocks: {} token blocks, {} computation blocks",
        out.layout.token_blocks.len(),
        out.layout.comp_blocks.len()
    );
    println!(
        "planning: {:.1} ms (blocks {:.1} / partition {:.1} / schedule {:.1})",
        out.times.total() * 1e3,
        out.times.block_gen * 1e3,
        out.times.partition * 1e3,
        out.times.schedule * 1e3,
    );
    let loads = out.placement.comp_loads(&out.layout);
    let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    println!("compute balance: max/avg = {:.3}", max / avg);
    println!(
        "communication: {:.1} MiB total ({:.1} MiB inter-node)",
        out.plan.total_comm_bytes() as f64 / (1 << 20) as f64,
        out.plan.fwd.comm_bytes_where(|a, b| {
            cluster.node_of(dcp::types::DeviceId(a)) != cluster.node_of(dcp::types::DeviceId(b))
        }) as f64
            / (1 << 20) as f64
    );

    // Compare against the TransformerEngine-style static baseline.
    let te = Baseline::TransformerEngine { head_groups: 2 }.build(
        attn,
        cluster.num_devices(),
        planner.config().block_size,
        &batch,
    )?;
    let sim_dcp = simulate_plan(&cluster, &out.plan)?;
    let sim_te = simulate_plan(&cluster, &te.plan)?;
    println!("\n== simulated attention time (fwd + bwd) ==");
    println!(
        "DCP: {:.2} ms   TE (static head+zigzag CP): {:.2} ms   speed-up {:.2}x",
        sim_dcp.total() * 1e3,
        sim_te.total() * 1e3,
        sim_te.total() / sim_dcp.total()
    );
    println!(
        "comm volume: DCP {:.1} MiB vs TE {:.1} MiB",
        out.plan.total_comm_bytes() as f64 / (1 << 20) as f64,
        te.plan.total_comm_bytes() as f64 / (1 << 20) as f64
    );
    Ok(())
}
