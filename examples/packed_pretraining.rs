//! Packed-pretraining batches: documents concatenated into fixed-length
//! sequences with block-diagonal masking. Tokens never attend across
//! document boundaries, so a dynamic planner can place whole documents like
//! a data-parallel dimension inside one "sequence" — static CP still rings
//! the full KV around.
//!
//! Run with: `cargo run --release --example packed_pretraining`

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::data::{sample_lengths, DatasetKind};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::p4de(2);
    let attn = AttnSpec::paper_micro();

    // Pack sampled documents into 32k-token training sequences.
    let docs = sample_lengths(DatasetKind::LongDataCollections, 64, 0.5, 16384, 21);
    let target = 32_768u32;
    let mut batch: Vec<(u32, MaskSpec)> = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    let mut cur_len = 0u32;
    for mut d in docs {
        while cur_len + d >= target {
            let take = target - cur_len;
            if take > 0 {
                cur.push(take);
            }
            batch.push((target, MaskSpec::packed_documents(&cur)));
            cur.clear();
            cur_len = 0;
            d -= take;
            if batch.len() == 4 {
                break;
            }
        }
        if batch.len() == 4 {
            break;
        }
        if d > 0 {
            cur.push(d);
            cur_len += d;
        }
    }
    println!(
        "packed batch: {} sequences of {target} tokens each",
        batch.len()
    );
    for (i, (len, mask)) in batch.iter().enumerate() {
        let m = mask.instantiate(*len)?;
        println!(
            "  seq {i}: sparsity vs causal {:.2}",
            m.sparsity_vs_causal()
        );
    }

    let planner = Planner::new(cluster.clone(), attn, PlannerConfig::default());
    let dcp = planner.plan(&batch)?;
    let te = Baseline::TransformerEngine { head_groups: 2 }.build(
        attn,
        cluster.num_devices(),
        256,
        &batch,
    )?;
    let sim_dcp = simulate_plan(&cluster, &dcp.plan)?;
    let sim_te = simulate_plan(&cluster, &te.plan)?;
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!("\n                 DCP        TE (static)");
    println!(
        "comm         {:7.1} MiB {:7.1} MiB",
        mib(dcp.plan.total_comm_bytes()),
        mib(te.plan.total_comm_bytes())
    );
    println!(
        "attn fwd+bwd {:7.2} ms  {:7.2} ms   ({:.2}x)",
        sim_dcp.total() * 1e3,
        sim_te.total() * 1e3,
        sim_te.total() / sim_dcp.total()
    );
    println!(
        "\nBlock-diagonal masking turns intra-sequence parallelism into document-level\n\
         data parallelism — only a dynamic planner can exploit it."
    );
    Ok(())
}
