//! Scaling to bigger batches with DP groups (paper Sec. 8): split the batch
//! across node groups balanced by attention FLOPs, run DCP inside each
//! group, and compare against planning the whole batch on the whole
//! cluster.
//!
//! Run with: `cargo run --release --example grouped_dp`

use dcp::core::{plan_grouped, Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::p4de(4);
    let attn = AttnSpec::paper_micro();
    let cfg = PlannerConfig {
        block_size: 1024,
        ..Default::default()
    };

    // A double-size batch (two micro-batches worth of tokens).
    let batch: Vec<(u32, MaskSpec)> = [
        49152u32, 32768, 16384, 16384, 12288, 8192, 8192, 8192, 4096, 4096, 4096, 2048, 2048, 2048,
        1024, 1024,
    ]
    .iter()
    .map(|&l| (l, MaskSpec::Causal))
    .collect();

    // Whole-cluster DCP.
    let planner = Planner::new(cluster.clone(), attn, cfg.clone());
    let flat = planner.plan(&batch)?;
    let flat_sim = simulate_plan(&cluster, &flat.plan)?;

    // Two DP groups of two nodes each.
    let grouped = plan_grouped(&cluster, attn, &cfg, 2, &batch)?;
    let sub_cluster = ClusterSpec {
        nodes: 2,
        ..cluster.clone()
    };
    let mut worst = 0.0f64;
    println!("group assignment (sequence indices): {:?}", grouped.groups);
    for (g, plan) in grouped.plans.iter().enumerate() {
        let sim = simulate_plan(&sub_cluster, &plan.plan)?;
        println!(
            "group {g}: {} tokens, attention {:.2} ms, comm {:.1} MiB",
            plan.layout.total_tokens(),
            sim.total() * 1e3,
            plan.plan.total_comm_bytes() as f64 / (1 << 20) as f64
        );
        worst = worst.max(sim.total());
    }
    println!(
        "\nDP-group FLOPs imbalance: {:.3} (LPT on quadratic attention cost)",
        grouped.imbalance()
    );
    println!(
        "attention time: grouped (slowest group) {:.2} ms vs whole-cluster {:.2} ms",
        worst * 1e3,
        flat_sim.total() * 1e3
    );
    println!(
        "comm volume: grouped {:.1} MiB vs whole-cluster {:.1} MiB",
        grouped
            .plans
            .iter()
            .map(|p| p.plan.total_comm_bytes())
            .sum::<u64>() as f64
            / (1 << 20) as f64,
        flat.plan.total_comm_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "\nGroups cut the hypergraph size per planning call and bound CP communication\n\
         to two nodes; the price is a DP gradient all-reduce across groups (identical\n\
         to ordinary data parallelism, accounted by the end-to-end model)."
    );
    Ok(())
}
