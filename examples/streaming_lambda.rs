//! Long-document training with the lambda mask (attention sinks + sliding
//! window, paper Fig. 6b): the mask is extremely sparse at long context, so
//! a static CP scheme moves almost entirely wasted KV. DCP's communication
//! scales with the mask's *useful* work instead.
//!
//! Sweeps context length and prints the comm volume and simulated time of
//! DCP vs the static baseline at each length.
//!
//! Run with: `cargo run --release --example streaming_lambda`

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::p4de(2);
    let attn = AttnSpec::paper_micro();
    let planner = Planner::new(cluster.clone(), attn, PlannerConfig::default());

    println!("lambda mask: 64 sink tokens, window 4096 (paper Sec. 7.1)");
    println!("\n  context   sparsity   DCP comm   TE comm    DCP time   TE time   speed-up");
    for len in [16384u32, 32768, 65536, 131072] {
        let spec = MaskSpec::paper_lambda();
        let sparsity = spec.instantiate(len)?.sparsity_vs_causal();
        let batch = vec![(len, spec)];

        let dcp = planner.plan(&batch)?;
        let te = Baseline::TransformerEngine { head_groups: 2 }.build(
            attn,
            cluster.num_devices(),
            planner.config().block_size,
            &batch,
        )?;
        let sim_dcp = simulate_plan(&cluster, &dcp.plan)?;
        let sim_te = simulate_plan(&cluster, &te.plan)?;
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        println!(
            "  {:7}   {:8.3}   {:7.1}MiB {:7.1}MiB  {:7.2}ms {:7.2}ms   {:.2}x",
            len,
            sparsity,
            mib(dcp.plan.total_comm_bytes()),
            mib(te.plan.total_comm_bytes()),
            sim_dcp.total() * 1e3,
            sim_te.total() * 1e3,
            sim_te.total() / sim_dcp.total()
        );
    }
    println!(
        "\nDCP's communication tracks mask sparsity (paper Fig. 19); the static\n\
         baseline relays the full KV ring regardless of the mask."
    );
    Ok(())
}
