//! RLHF/DPO-style training with the shared-question mask (paper Fig. 6d and
//! Fig. 7): one prompt, several candidate answers that attend to the prompt
//! but not to each other. Static ring attention communicates KV blocks that
//! the receiving device never uses; DCP's block-level planning drops them.
//!
//! Run with: `cargo run --release --example rlhf_shared_question`

use dcp::baselines::Baseline;
use dcp::core::{Planner, PlannerConfig};
use dcp::mask::MaskSpec;
use dcp::sim::simulate_plan;
use dcp::types::{AttnSpec, ClusterSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::p4de(2);
    let attn = AttnSpec::paper_micro();

    // A preference-tuning batch: each sequence is a question plus four
    // sampled answers (the paper's setting: answers are 20% of the
    // sequence each).
    let batch: Vec<(u32, MaskSpec)> = [40960u32, 20480, 20480, 10240]
        .iter()
        .map(|&len| (len, MaskSpec::paper_shared_question(len)))
        .collect();

    let mask = MaskSpec::paper_shared_question(40960).instantiate(40960)?;
    println!(
        "shared-question mask sparsity vs causal: {:.2}",
        mask.sparsity_vs_causal()
    );

    let planner = Planner::new(cluster.clone(), attn, PlannerConfig::default());
    let dcp = planner.plan(&batch)?;
    let te = Baseline::TransformerEngine { head_groups: 2 }.build(
        attn,
        cluster.num_devices(),
        planner.config().block_size,
        &batch,
    )?;

    let sim_dcp = simulate_plan(&cluster, &dcp.plan)?;
    let sim_te = simulate_plan(&cluster, &te.plan)?;

    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!("\n                    DCP        TE (static)");
    println!(
        "comm volume      {:8.1} MiB {:8.1} MiB",
        mib(dcp.plan.total_comm_bytes()),
        mib(te.plan.total_comm_bytes())
    );
    println!(
        "attention fwd    {:8.2} ms  {:8.2} ms",
        sim_dcp.fwd.makespan * 1e3,
        sim_te.fwd.makespan * 1e3
    );
    println!(
        "attention bwd    {:8.2} ms  {:8.2} ms",
        sim_dcp.bwd.makespan * 1e3,
        sim_te.bwd.makespan * 1e3
    );
    println!("speed-up         {:8.2}x", sim_te.total() / sim_dcp.total());

    // Compute balance: static CP assigns the answer-heavy tail chunks very
    // unevenly under this mask (the paper's Fig. 7); DCP balances by
    // construction.
    let imbalance = |loads: &[u64]| {
        let max = *loads.iter().max().unwrap() as f64;
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        max / avg
    };
    println!(
        "\ncompute imbalance (max/avg): DCP {:.3} vs TE {:.3}",
        imbalance(&dcp.placement.comp_loads(&dcp.layout)),
        imbalance(&te.placement.comp_loads(&te.layout)),
    );
    Ok(())
}
