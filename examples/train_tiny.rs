//! Really train a tiny transformer twice — once with dense single-device
//! attention, once with DCP-planned distributed attention (4 simulated
//! devices) — and show the loss curves coincide (the paper's Fig. 21
//! precision claim, at laptop scale).
//!
//! Run with: `cargo run --release --example train_tiny`

use dcp::exec::train::{train, AttnBackend, TrainConfig};
use dcp::mask::MaskSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TrainConfig {
        seq_len: 64,
        lr: 0.2,
        ..Default::default()
    };
    let steps = 40;
    println!("training a tiny transformer on a synthetic Markov stream ({steps} steps)");

    let dense = train(cfg, AttnBackend::Dense, &MaskSpec::Causal, steps)?;
    let planned = train(
        cfg,
        AttnBackend::Planned {
            num_devices: 4,
            block_size: 8,
        },
        &MaskSpec::Causal,
        steps,
    )?;

    println!("\n step   dense-attn   dcp-planned   |diff|");
    let mut max_diff = 0.0f32;
    for (i, (a, b)) in dense.iter().zip(&planned).enumerate() {
        let d = (a - b).abs();
        max_diff = max_diff.max(d);
        if i % 5 == 0 || i + 1 == steps {
            println!(" {i:4}   {a:10.6}   {b:11.6}   {d:.2e}");
        }
    }
    println!(
        "\nloss dropped {:.3} -> {:.3}; max curve deviation {max_diff:.2e}",
        dense[0],
        dense.last().unwrap()
    );
    println!("DCP's plan round-trip changes nothing about training dynamics (Fig. 21).");
    Ok(())
}
