//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Implements the subset the workspace uses: the [`Distribution`] trait and
//! [`LogNormal`] / [`Normal`] samplers (Box–Muller on the vendored `rand`
//! generator). Deterministic per seed, like the real crate.

use rand::{Rng, RngCore};

/// Types that sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError;

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for ParamError {}

/// Normal (Gaussian) distribution with mean `mu` and std-dev `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Builds the distribution; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError);
        }
        Ok(Normal { mu, sigma })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Builds the distribution; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_positive_and_deterministic() {
        let d = LogNormal::new(0.5, 0.75).unwrap();
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = d.sample(&mut a);
            assert!(x > 0.0 && x.is_finite());
            assert_eq!(x.to_bits(), d.sample(&mut b).to_bits());
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
