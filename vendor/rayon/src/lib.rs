//! Offline vendored stand-in for the `rayon` crate.
//!
//! Implements the data-parallel subset the workspace uses on top of
//! `std::thread::scope`: `into_par_iter().map(..).collect()`, slice
//! `par_chunks_mut`, `spawn`, and `join`. Two properties the repo depends
//! on:
//!
//! - **Determinism**: results are always assembled in item order, so any
//!   `collect`/`for_each` output is identical at every thread count.
//! - **Env-controlled width**: `RAYON_NUM_THREADS` is re-read on every
//!   parallel call (the real crate reads it once at pool construction), so
//!   a process can benchmark 1-thread vs N-thread execution in one run —
//!   `perf_report` relies on this.
//!
//! Work is distributed dynamically: items are grouped into ~4 chunks per
//! thread and threads grab chunks from a shared queue, which keeps skewed
//! workloads (variable-cost attention blocks) balanced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use: `RAYON_NUM_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs a fire-and-forget closure on a background thread.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    std::thread::spawn(f);
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Applies `f` to every item, in parallel, returning results in item order
/// regardless of thread count or scheduling.
fn par_apply<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let len = items.len();
    let nt = current_num_threads().min(len);
    if nt <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunk the items; threads pull chunks dynamically for load balance.
    // Each slot holds `(start_index, chunk_items)` behind a `Mutex` so a
    // worker can take ownership of the chunk it claimed.
    type ChunkSlot<I> = Mutex<Option<(usize, Vec<I>)>>;
    let nchunks = (nt * 4).min(len);
    let base = len / nchunks;
    let extra = len % nchunks;
    let mut chunks: Vec<ChunkSlot<I>> = Vec::with_capacity(nchunks);
    {
        let mut iter = items.into_iter();
        let mut start = 0;
        for c in 0..nchunks {
            let size = base + usize::from(c < extra);
            let chunk: Vec<I> = iter.by_ref().take(size).collect();
            chunks.push(Mutex::new(Some((start, chunk))));
            start += size;
        }
    }

    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::<(usize, Vec<R>)>::new());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nt);
        for _ in 0..nt {
            handles.push(s.spawn(|| {
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks.len() {
                        break;
                    }
                    let (start, chunk) = chunks[c]
                        .lock()
                        .expect("chunk lock")
                        .take()
                        .expect("chunk taken twice");
                    local.push((start, chunk.into_iter().map(&f).collect()));
                }
                done.lock().expect("result lock").extend(local);
            }));
        }
        for h in handles {
            h.join().expect("rayon worker panicked");
        }
    });

    let mut parts = done.into_inner().expect("result lock");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(len);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// An eager parallel iterator: adapters apply immediately on the pool.
pub struct ParIter<T>(Vec<T>);

impl<T: Send> ParIter<T> {
    /// Parallel map; result order matches item order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter(par_apply(self.0, f))
    }

    /// Parallel side-effecting loop.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_apply(self.0, f);
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter(self.0.into_iter().enumerate().collect())
    }

    /// Materializes into any `FromIterator` collection, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Parallel sum.
    pub fn sum<S: std::iter::Sum<T> + Send>(self) -> S {
        self.0.into_iter().sum()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter(self)
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter(self.collect())
            }
        }
    )*};
}
impl_into_par_range!(u32, u64, usize, i32, i64);

/// Parallel iteration over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over non-overlapping chunks of `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter(self.chunks(chunk_size).collect())
    }
}

/// Parallel iteration over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter(self.chunks_mut(chunk_size).collect())
    }
}

/// The traits and functions the real crate exposes via its prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut buf = vec![0u32; 64];
        buf.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        for (j, &x) in buf.iter().enumerate() {
            assert_eq!(x as usize, j / 7);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn respects_env_thread_count() {
        // With RAYON_NUM_THREADS=1 the serial path must produce the same
        // output as the parallel path (bitwise, trivially).
        let par: Vec<f64> = (0u32..257)
            .into_par_iter()
            .map(|x| (x as f64).sqrt())
            .collect();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let ser: Vec<f64> = (0u32..257)
            .into_par_iter()
            .map(|x| (x as f64).sqrt())
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(par, ser);
    }
}
