//! Offline vendored stand-in for the `proptest` crate.
//!
//! A deterministic mini property-testing framework covering the surface the
//! workspace uses: the [`Strategy`] trait, integer-range and tuple
//! strategies, [`Just`], [`any`], `collection::vec`, [`prop_oneof!`],
//! [`prop_compose!`], and the [`proptest!`] test macro with
//! `#![proptest_config(...)]`.
//!
//! Differences from the real crate, deliberate for an offline build:
//! - cases are generated from a fixed per-test RNG seed (derived from the
//!   test's module path and name), so every run explores the same inputs;
//! - there is no shrinking — a failing case reports its case number and
//!   message and panics immediately.
//! - `PROPTEST_CASES` still overrides the per-test case count.

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case: seeded from the test identity and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the identity, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// How many cases a [`proptest!`] test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous [`prop_oneof!`] arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy backed by a generation closure ([`prop_compose!`] uses this).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 spans can overflow the i128->u64 cast path above only at extremes the
// tests never use, but handle it exactly anyway.
impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Whole-type strategies ([`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice among heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines a function returning a composite strategy, like the real
/// `prop_compose!`: the first parameter list is ordinary arguments, the
/// second binds strategy draws, and the body computes the composed value.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
        ($($var:pat in $strategy:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $var = $crate::Strategy::generate(&($strategy), rng);)*
                $body
            })
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($var:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(test_id, case);
                    $(let $var = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = run() {
                        ::std::panic!(
                            "proptest {}: case {}/{} failed: {}",
                            test_id, case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    prop_compose! {
        fn pair()(a in 0u32..10, b in 10u32..20) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u64..1000, z in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn composed_and_mapped(p in pair(), s in (0u32..3, 1u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(p.0 < 10 && (10..20).contains(&p.1));
            prop_assert!((1..7).contains(&s));
        }

        #[test]
        fn oneof_and_collections(
            v in prop::collection::vec(1usize..6, 1..5),
            k in prop_oneof![Just(1u32), Just(2u32), (5u32..7).boxed()],
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(k == 1 || k == 2 || (5..7).contains(&k));
            let _ = flag;
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u32..1000, 0u32..1000);
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(crate::Strategy::generate(&s, &mut a), {
            crate::Strategy::generate(&s, &mut b)
        });
    }
}
