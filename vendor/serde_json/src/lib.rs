//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Text layer over the vendored `serde` value model: a recursive-descent
//! JSON parser, compact and pretty printers, and the [`json!`] literal
//! macro. Output is deterministic (objects print in sorted key order) and
//! integers round-trip at full 64-bit precision.

pub use serde::{Error, Map, Number, Value};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep a fractional part so the value re-parses as a float.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            self.pos -= 1; // re-aligned by the += 1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::PosInt(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::NegInt(i)
            } else {
                Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                )
            }
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        };
        Ok(Value::Number(n))
    }
}

// ---------------------------------------------------------------------------
// json! literal macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal, interpolating expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`] — a token-tree muncher handling
/// nested object/array literals mixed with Rust expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: accumulate elements into [$($elems)*] ----
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entry munching: key tts accumulate in ($($key)*) ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- primary forms ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn integers_keep_precision() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": 1.25}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x\ny"));
        assert!((v["d"].as_f64().unwrap() - 1.25).abs() < 1e-12);
        // Reparse of a pretty print is identical.
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn json_macro_shapes() {
        let x = 3u32;
        let v = json!({
            "a": x,
            "b": [1, 2.5, "s", {"nested": true}],
            "c": x + 1,
        });
        assert!(v["a"] == 3);
        assert!(v["b"][3]["nested"] == true);
        assert!(v["c"] == 4);
        let arr = json!([v.clone(), {"k": "v"}, null]);
        assert_eq!(arr[0], v);
        assert_eq!(arr[1]["k"], "v");
        assert!(arr[2].is_null());
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let s = to_string(&Value::Number(Number::Float(2.0))).unwrap();
        assert_eq!(s, "2.0");
        let v: Value = from_str(&s).unwrap();
        assert!(matches!(v, Value::Number(Number::Float(_))));
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
