//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`rngs::SmallRng`]
//! (xoshiro256++, the same generator family rand 0.8 uses on 64-bit
//! targets), uniform range sampling and [`seq::SliceRandom`]. Streams are
//! deterministic for a given seed, which is all the repo relies on — every
//! test and benchmark derives its expectations from the same seeded stream
//! rather than from hard-coded values.

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the "whole type" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (Lemire's multiply-shift with a
/// rejection step), `span > 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform draw covering the whole type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (what rand 0.8's `SmallRng`
    /// resolves to on 64-bit platforms), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
