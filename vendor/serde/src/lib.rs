//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace carries a
//! small data-model replacement: [`Serialize`] converts a type into a JSON
//! [`Value`] tree and [`Deserialize`] converts back. The derive macros in
//! the vendored `serde_derive` generate externally-tagged representations
//! matching real serde's defaults, so JSON written by this stub is
//! interchangeable with JSON written by the real crates for the shapes the
//! workspace uses (structs, enums with every variant kind, `#[serde(rename)]`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// JSON object representation. A `BTreeMap` keeps key order deterministic,
/// which the repo's golden files and tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Value as `f64` (always possible, may lose integer precision).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// Value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
                    return a == b;
                }
            }
        }
        if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
            return a == b;
        }
        self.as_f64() == other.as_f64()
    }
}

/// A JSON value tree: the serialization currency of this stub.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member access: `Null` for a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        n == &Number::from(*other)
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                #[allow(unused_comparisons)]
                if v < 0 {
                    Number::NegInt(v as i64)
                } else {
                    Number::PosInt(v as u64)
                }
            }
        }
    )*};
}
impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Serialization error (also reused by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, erroring on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        v
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!(stringify!($t), " out of range: {}"), n))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        v
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!(stringify!($t), " out of range: {}"), n))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // Real serde_json maps non-finite floats to null.
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                let expect = [$($idx),+].len();
                if a.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, got {} elements",
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

fn key_to_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Map ordering is normalized to sorted keys for determinism.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
        let v: Vec<(u32, bool)> = vec![(1, true), (2, false)];
        assert_eq!(Vec::<(u32, bool)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn value_indexing_and_eq() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Number(Number::PosInt(3)));
        let v = Value::Object(m);
        assert!(v["x"] == 3);
        assert!(v["x"] == 3u64);
        assert!(v["missing"].is_null());
        let s = Value::String("X".into());
        assert!(s == "X");
    }

    #[test]
    fn out_of_range_rejected() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&v).is_err());
        assert!(u32::from_value(&Value::Number(Number::NegInt(-1))).is_err());
    }
}
