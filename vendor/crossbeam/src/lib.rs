//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset the workspace uses, layered over
//! `std::sync::mpsc`. Semantics match for this usage: `bounded(n)` blocks
//! senders when full, receivers block on `recv` until a message or
//! disconnect.

/// Multi-producer multi-consumer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Receiving half of a channel; cloneable (multi-consumer) like the
    /// real `crossbeam-channel` receiver. Clones share one underlying
    /// queue: each message is delivered to exactly one receiver. Blocking
    /// receives hold the internal lock, so contending clones are served
    /// one message at a time (sufficient for work-queue usage).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    /// Sending half of a channel; cloneable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected with no buffered message.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // mpsc's unbounded channel has a distinct type; emulate with a
        // large sync buffer to keep one Sender type.
        let (tx, rx) = mpsc::sync_channel(1 << 20);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered or the receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .expect("channel poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Returns immediately with a message if one is buffered.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("channel poisoned").try_recv()
        }

        /// Blocks until a message arrives, all senders are dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .expect("channel poisoned")
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }
    }

    /// Draining iterator over a receiver (ends at disconnect).
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.extend(rx2);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(rx.recv().is_err(), "queue drained and disconnected");
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
