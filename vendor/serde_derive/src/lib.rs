//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. The item is parsed directly from the `TokenStream`
//! (no `syn`/`quote` — those crates are unreachable offline) and the impl is
//! emitted as source text parsed back into a `TokenStream`.
//!
//! Supported shapes (everything the workspace derives on):
//! - named / tuple / newtype / unit structs,
//! - enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, matching real serde's default),
//! - lifetime-only or simple type generics,
//! - `#[serde(rename = "...")]` on fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

struct Field {
    ident: String,
    /// JSON key: the identifier, or the `#[serde(rename = "...")]` override.
    key: String,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity (arity 1 = newtype).
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    /// Tuple struct with the given arity (arity 1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter list with bounds, e.g. `<'a, T: Clone>` (or empty).
    impl_generics: String,
    /// Generic arguments for the type, e.g. `<'a, T>` (or empty).
    type_generics: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips any `#[...]` attributes at `i`, returning a rename if one carries
/// `#[serde(rename = "...")]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut rename = None;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                if let Some(r) = extract_rename(&g.stream()) {
                    rename = Some(r);
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
    rename
}

/// Pulls the string out of a `serde(rename = "...")` attribute body.
fn extract_rename(attr: &TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(id) = &inner[j] {
                    if id.to_string() == "rename" {
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                return Some(unquote(&lit.to_string()));
                            }
                        }
                    }
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skips `pub` / `pub(...)` visibility at `i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Counts top-level (angle-bracket aware) commas to find tuple arity.
fn tuple_arity(body: &TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for t in body.clone() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

/// Parses the named fields of a brace-delimited body.
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let rename = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let ident = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field name, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            key: rename.unwrap_or_else(|| ident.clone()),
            ident,
        });
    }
    fields
}

/// Parses the variants of an enum body.
fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let ident = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the comma separating variants (covers discriminants).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { ident, kind });
    }
    variants
}

/// Splits a generic parameter list into impl generics (with bounds) and
/// type generics (parameter names only).
fn split_generics(params: &[TokenTree]) -> (String, String) {
    let full: TokenStream = params.iter().cloned().collect();
    let impl_generics = format!("<{}>", full);

    // Per-parameter: keep tokens up to the first top-level ':' (bounds) or
    // '=' (defaults).
    let mut names = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut skipping = false;
    let mut depth = 0i32;
    for t in params.iter().cloned() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                let ts: TokenStream = current.drain(..).collect();
                names.push(ts.to_string());
                skipping = false;
                continue;
            }
            TokenTree::Punct(p) if (p.as_char() == ':' || p.as_char() == '=') && depth == 0 => {
                skipping = true;
            }
            _ => {}
        }
        if !skipping {
            current.push(t);
        }
    }
    if !current.is_empty() {
        let ts: TokenStream = current.drain(..).collect();
        names.push(ts.to_string());
    }
    let type_generics = format!("<{}>", names.join(", "));
    (impl_generics, type_generics)
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let is_enum = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde_derive: expected struct or enum, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;

    let (impl_generics, type_generics) = match toks.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            i += 1;
            let mut depth = 1i32;
            let mut params = Vec::new();
            while i < toks.len() {
                match &toks[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                params.push(toks[i].clone());
                i += 1;
            }
            split_generics(&params)
        }
        _ => (String::new(), String::new()),
    };

    // `where` clauses are not used in the workspace; skip any to the body.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    ItemKind::Enum(parse_variants(&g.stream()))
                } else {
                    ItemKind::NamedStruct(parse_named_fields(&g.stream()))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break ItemKind::TupleStruct(tuple_arity(&g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
                break ItemKind::UnitStruct;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: missing item body for {name}"),
        }
    };

    Item {
        name,
        impl_generics,
        type_generics,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl{} ::serde::{} for {}{} {{\n",
        item.impl_generics, trait_name, item.name, item.type_generics
    )
}

fn gen_serialize(item: &Item) -> String {
    let mut out = impl_header(item, "Serialize");
    out.push_str("    fn to_value(&self) -> ::serde::Value {\n");
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            out.push_str("        let mut __m = ::serde::Map::new();\n");
            for f in fields {
                let _ = writeln!(
                    out,
                    "        __m.insert(::std::string::String::from(\"{}\"), \
                     ::serde::Serialize::to_value(&self.{}));",
                    f.key, f.ident
                );
            }
            out.push_str("        ::serde::Value::Object(__m)\n");
        }
        ItemKind::TupleStruct(1) => {
            out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            let _ = writeln!(
                out,
                "        ::serde::Value::Array(::std::vec![{}])",
                elems.join(", ")
            );
        }
        ItemKind::UnitStruct => {
            out.push_str("        ::serde::Value::Null\n");
        }
        ItemKind::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            out,
                            "            Self::{} => ::serde::Value::String(\
                             ::std::string::String::from(\"{}\")),",
                            v.ident, v.ident
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            out,
                            "            Self::{}(f0) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{}\"), \
                             ::serde::Serialize::to_value(f0));\n\
                             ::serde::Value::Object(__m)\n\
                             }},",
                            v.ident, v.ident
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "            Self::{}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{}\"), \
                             ::serde::Value::Array(::std::vec![{}]));\n\
                             ::serde::Value::Object(__m)\n\
                             }},",
                            v.ident,
                            binds.join(", "),
                            v.ident,
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::new();
                        for f in fields {
                            let _ = writeln!(
                                inner,
                                "__inner.insert(::std::string::String::from(\"{}\"), \
                                 ::serde::Serialize::to_value({}));",
                                f.key, f.ident
                            );
                        }
                        let _ = writeln!(
                            out,
                            "            Self::{} {{ {} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{}\"), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                             }},",
                            v.ident,
                            binds.join(", "),
                            inner,
                            v.ident
                        );
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = impl_header(item, "Deserialize");
    out.push_str(
        "    fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {\n",
    );
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let _ = writeln!(
                out,
                "        let m = match v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 other => return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected object for struct {name}, got {{other:?}}\"))),\n\
                 }};"
            );
            out.push_str("        ::std::result::Result::Ok(Self {\n");
            for f in fields {
                let _ = writeln!(
                    out,
                    "            {}: ::serde::Deserialize::from_value(\
                     m.get(\"{}\").unwrap_or(&::serde::Value::Null))?,",
                    f.ident, f.key
                );
            }
            out.push_str("        })\n");
        }
        ItemKind::TupleStruct(1) => {
            out.push_str(
                "        ::std::result::Result::Ok(Self(\
                 ::serde::Deserialize::from_value(v)?))\n",
            );
        }
        ItemKind::TupleStruct(n) => {
            let _ = writeln!(
                out,
                "        let a = match v {{\n\
                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                 other => return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                 }};"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            let _ = writeln!(
                out,
                "        ::std::result::Result::Ok(Self({}))",
                elems.join(", ")
            );
        }
        ItemKind::UnitStruct => {
            out.push_str("        ::std::result::Result::Ok(Self)\n");
        }
        ItemKind::Enum(variants) => {
            // Unit variants arrive as strings; data variants as one-key objects.
            out.push_str("        match v {\n");
            out.push_str("            ::serde::Value::String(s) => match s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let _ = writeln!(
                        out,
                        "                \"{}\" => ::std::result::Result::Ok(Self::{}),",
                        v.ident, v.ident
                    );
                }
            }
            let _ = writeln!(
                out,
                "                other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},"
            );
            out.push_str("            ::serde::Value::Object(m) => {\n");
            let _ = writeln!(
                out,
                "                let (tag, inner) = match m.iter().next() {{\n\
                 ::std::option::Option::Some(kv) => kv,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"empty object for enum {name}\")),\n\
                 }};"
            );
            out.push_str("                match tag.as_str() {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        // A unit variant may also arrive as {"Name": null}.
                        let _ = writeln!(
                            out,
                            "                    \"{}\" => \
                             ::std::result::Result::Ok(Self::{}),",
                            v.ident, v.ident
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            out,
                            "                    \"{}\" => ::std::result::Result::Ok(\
                             Self::{}(::serde::Deserialize::from_value(inner)?)),",
                            v.ident, v.ident
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "                    \"{}\" => match inner {{\n\
                             ::serde::Value::Array(a) if a.len() == {n} => \
                             ::std::result::Result::Ok(Self::{}({})),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"expected {n}-element array for {name}::{}, \
                             got {{other:?}}\"))),\n\
                             }},",
                            v.ident,
                            v.ident,
                            elems.join(", "),
                            v.ident
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut assigns = String::new();
                        for f in fields {
                            let _ = writeln!(
                                assigns,
                                "{}: ::serde::Deserialize::from_value(\
                                 f.get(\"{}\").unwrap_or(&::serde::Value::Null))?,",
                                f.ident, f.key
                            );
                        }
                        let _ = writeln!(
                            out,
                            "                    \"{}\" => match inner {{\n\
                             ::serde::Value::Object(f) => \
                             ::std::result::Result::Ok(Self::{} {{ {} }}),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"expected object for {name}::{}, \
                             got {{other:?}}\"))),\n\
                             }},",
                            v.ident, v.ident, assigns, v.ident
                        );
                    }
                }
            }
            let _ = writeln!(
                out,
                "                    other => ::std::result::Result::Err(\
                 ::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n\
                 }},"
            );
            let _ = writeln!(
                out,
                "            other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected string or object for enum {name}, \
                 got {{other:?}}\"))),\n\
                 }}"
            );
        }
    }
    out.push_str("    }\n}\n");
    out
}
