//! Offline vendored stand-in for the `criterion` crate.
//!
//! Mimics the harness shape the workspace's `harness = false` bench targets
//! use. Like the real crate, behavior depends on how the binary is invoked:
//!
//! - under `cargo bench` (argv contains `--bench`), each closure is timed
//!   over a handful of batches and a mean wall-clock time is printed;
//! - under `cargo test` (no `--bench` flag), each benchmark body runs
//!   exactly once as a smoke test, keeping test runs fast.

use std::time::Instant;

/// Prevents the optimizer from deleting a value computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. a block size.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Conversion of the various id forms benches pass.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean seconds per iteration from the last `iter` call.
    last_mean: Option<f64>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// `cargo test`: run once, don't measure.
    Smoke,
}

impl Bencher {
    /// Times `f`, running it repeatedly in measure mode and once in smoke
    /// mode.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure => {
                // Warm up, then time a few fixed batches.
                black_box(f());
                let mut iters = 1u64;
                // Grow the batch until it takes >= ~20ms, capped.
                let per_iter = loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    if dt >= 0.02 || iters >= 1 << 20 {
                        break dt / iters as f64;
                    }
                    iters = (iters * 4).max(1);
                };
                self.last_mean = Some(per_iter);
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's batch sizing is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, |b| f(b));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion behaves the same way: `cargo bench` passes
        // `--bench`; a plain `cargo test` run of the bench binary doesn't.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.run_one(&name, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            mode: self.mode,
            last_mean: None,
        };
        f(&mut b);
        if self.mode == Mode::Measure {
            match b.last_mean {
                Some(mean) => println!("{name:<40} {}", format_time(mean)),
                None => println!("{name:<40} (no iter call)"),
            }
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.3} µs", secs * 1e6)
    } else {
        format!("{:9.1} ns", secs * 1e9)
    }
}

/// Declares the benchmark functions a harness runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut count = 0u32;
        c.bench_function("counted", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_reports_mean() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let input = 5u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).contains("s"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
