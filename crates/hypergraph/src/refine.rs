//! FM refinement and balance repair.
//!
//! Refinement maintains, for every hyperedge, the number of its pins in each
//! part (`lambda` table). The gain of moving vertex `v` from part `a` to
//! part `b` under the connectivity−1 objective is
//!
//! ```text
//!   gain = sum_{e ∋ v} w_e * ( [Lambda(e,a) == 1] - [Lambda(e,b) == 0] )
//! ```
//!
//! i.e. edges that would stop spanning `a` minus edges that would start
//! spanning `b`.
//!
//! [`refine`] runs Fiduccia–Mattheyses passes: each pass greedily applies the
//! best available move (including negative-gain moves, which lets it climb
//! out of local minima), locks the moved vertex, and finally rolls back to
//! the best prefix of the move sequence.
//!
//! Moves are drawn from a [`GainCache`] — per-vertex removal benefits and
//! per-(vertex, part) insertion penalties that are **updated incrementally**
//! on every move (delta-gain updates over the `lambda` table) — through an
//! addressable max-priority queue ([`MoveHeap`]) whose keys are adjusted in
//! place instead of re-pushed. This replaces the original lazily-revalidated
//! `BinaryHeap`, which recomputed every popped vertex's best move from
//! scratch (`O(deg · k)` per pop) and accumulated stale entries for locked
//! and moved vertices. The original implementation is preserved verbatim in
//! [`reference`] so benchmarks can pin the speedup and tests can compare
//! solution quality.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::graph::{Hypergraph, VertexWeight};
use crate::initial::Caps;

/// Incremental state for k-way refinement.
pub struct RefineState {
    k: u32,
    /// `lambda[e * k + p]`: pins of edge `e` in part `p`.
    lambda: Vec<u32>,
    /// Per-part total weight.
    pub loads: Vec<VertexWeight>,
    /// Current connectivity−1 cost.
    pub cost: u64,
}

impl RefineState {
    /// Builds the lambda table and loads for `assignment`.
    pub fn new(hg: &Hypergraph, assignment: &[u32], k: u32) -> Self {
        let mut lambda = vec![0u32; hg.num_edges() * k as usize];
        for e in 0..hg.num_edges() as u32 {
            for &p in hg.pins(e) {
                lambda[e as usize * k as usize + assignment[p as usize] as usize] += 1;
            }
        }
        RefineState {
            k,
            lambda,
            loads: hg.part_weights(assignment, k),
            cost: hg.connectivity_cost(assignment, k),
        }
    }

    #[inline]
    fn lam(&self, e: u32, p: u32) -> u32 {
        self.lambda[e as usize * self.k as usize + p as usize]
    }

    /// Connectivity gain of moving `v` from `from` to `to` (positive is an
    /// improvement).
    pub fn gain(&self, hg: &Hypergraph, v: u32, from: u32, to: u32) -> i64 {
        let mut g = 0i64;
        for &e in hg.incident_edges(v) {
            let w = hg.edge_weight(e) as i64;
            if self.lam(e, from) == 1 {
                g += w;
            }
            if self.lam(e, to) == 0 {
                g -= w;
            }
        }
        g
    }

    /// Applies the move, updating lambda, loads and cost.
    pub fn apply(&mut self, hg: &Hypergraph, v: u32, from: u32, to: u32) {
        debug_assert_ne!(from, to);
        let g = self.gain(hg, v, from, to);
        for &e in hg.incident_edges(v) {
            let base = e as usize * self.k as usize;
            self.lambda[base + from as usize] -= 1;
            self.lambda[base + to as usize] += 1;
        }
        let w = hg.vertex_weight(v);
        self.loads[from as usize][0] -= w[0];
        self.loads[from as usize][1] -= w[1];
        self.loads[to as usize][0] += w[0];
        self.loads[to as usize][1] += w[1];
        self.cost = (self.cost as i64 - g) as u64;
    }

    /// Whether `v` touches an edge spanning more than one part.
    pub fn is_boundary(&self, hg: &Hypergraph, v: u32) -> bool {
        hg.incident_edges(v).iter().any(|&e| {
            let pins = hg.pins(e).len() as u32;
            // Edge spans > 1 part iff no part holds all its pins.
            (0..self.k).all(|p| self.lam(e, p) < pins)
        })
    }

    /// Best feasible move for `v`: `(to, gain)` maximizing gain, tie-broken
    /// toward the lighter destination. `None` when no destination fits.
    fn best_move(
        &self,
        hg: &Hypergraph,
        v: u32,
        from: u32,
        caps: &Caps,
        total: VertexWeight,
    ) -> Option<(u32, i64)> {
        let w = hg.vertex_weight(v);
        let mut best: Option<(u32, i64, f64)> = None;
        for to in 0..self.k {
            if to == from {
                continue;
            }
            let l = self.loads[to as usize];
            if !admissible(l, w, caps.at(to)) {
                continue;
            }
            let g = self.gain(hg, v, from, to);
            let load_after = norm_load(total, [l[0] + w[0], l[1] + w[1]]);
            let better = match best {
                None => true,
                Some((_, bg, bl)) => g > bg || (g == bg && load_after < bl),
            };
            if better {
                best = Some((to, g, load_after));
            }
        }
        best.map(|(to, g, _)| (to, g))
    }
}

/// Whether moving a vertex of weight `w` into a part with load `l` is
/// admissible under the destination's cap: each dimension the move actually
/// increases must stay under its cap. Dimensions the move leaves unchanged
/// may already be over cap (otherwise a part over its *data* cap could never
/// accept the *compute*-only vertices needed to repair a compute imbalance
/// elsewhere).
#[inline]
fn admissible(l: VertexWeight, w: VertexWeight, cap: VertexWeight) -> bool {
    (0..2).all(|d| w[d] == 0 || l[d] + w[d] <= cap[d])
}

fn norm_load(total: VertexWeight, w: VertexWeight) -> f64 {
    let a = if total[0] > 0 {
        w[0] as f64 / total[0] as f64
    } else {
        0.0
    };
    let b = if total[1] > 0 {
        w[1] as f64 / total[1] as f64
    } else {
        0.0
    };
    a.max(b)
}

/// Per-vertex incremental gain cache.
///
/// Decomposes the connectivity gain of moving `v` from its current part to
/// `to` into
///
/// ```text
///   gain(v, to) = benefit(v) − penalty(v, to)
///   benefit(v)     = Σ_{e ∋ v} w_e [Lambda(e, part(v)) == 1]
///   penalty(v, to) = Σ_{e ∋ v} w_e [Lambda(e, to) == 0]
/// ```
///
/// Both tables are maintained incrementally: a move only changes cache
/// entries of pins on edges whose `lambda` counters cross the `0 ↔ 1` or
/// `1 ↔ 2` thresholds, so [`GainCache::apply`] costs `O(deg(v))` plus the
/// pins of those threshold edges — instead of the `O(deg · k)` from-scratch
/// recomputation the lazy heap needed per pop.
pub struct GainCache {
    k: u32,
    /// `benefit[v]`: total weight of edges `v` would un-span by leaving its
    /// part (it is their last pin there).
    benefit: Vec<i64>,
    /// `penalty[v * k + p]`: total weight of edges `v` would newly span by
    /// moving into part `p`.
    penalty: Vec<i64>,
}

impl GainCache {
    /// Builds the cache from scratch for `state`'s lambda table.
    pub fn new(hg: &Hypergraph, state: &RefineState, assignment: &[u32]) -> Self {
        let n = hg.num_vertices();
        let k = state.k;
        let mut benefit = vec![0i64; n];
        let mut penalty = vec![0i64; n * k as usize];
        for v in 0..n as u32 {
            let from = assignment[v as usize];
            let base = v as usize * k as usize;
            for &e in hg.incident_edges(v) {
                let w = hg.edge_weight(e) as i64;
                if state.lam(e, from) == 1 {
                    benefit[v as usize] += w;
                }
                for p in 0..k {
                    if state.lam(e, p) == 0 {
                        penalty[base + p as usize] += w;
                    }
                }
            }
        }
        GainCache {
            k,
            benefit,
            penalty,
        }
    }

    /// Cached connectivity gain of moving `v` to `to` (`to` must differ from
    /// `v`'s current part).
    #[inline]
    pub fn gain(&self, v: u32, to: u32) -> i64 {
        self.benefit[v as usize] - self.penalty[v as usize * self.k as usize + to as usize]
    }

    /// Applies the move `v → to`, updating `state` (lambda, loads, cost),
    /// `assignment`, and the cache via delta-gain updates. Vertices whose
    /// cached gains changed are appended to `touched` (duplicates possible).
    pub fn apply(
        &mut self,
        hg: &Hypergraph,
        state: &mut RefineState,
        assignment: &mut [u32],
        v: u32,
        to: u32,
        touched: &mut Vec<u32>,
    ) {
        let from = assignment[v as usize];
        debug_assert_ne!(from, to);
        let k = self.k as usize;
        let g = self.gain(v, to);
        for &e in hg.incident_edges(v) {
            let w = hg.edge_weight(e) as i64;
            let base = e as usize * k;
            let la = state.lambda[base + from as usize];
            let lb = state.lambda[base + to as usize];
            // v's own benefit contribution from e: [la == 1] before the
            // move, [lb + 1 == 1] after it.
            self.benefit[v as usize] += w * (i64::from(lb == 0) - i64::from(la == 1));
            if la == 1 {
                // `from` loses its last pin of e: moving into `from` now
                // spans e anew, for every pin.
                for &u in hg.pins(e) {
                    self.penalty[u as usize * k + from as usize] += w;
                    touched.push(u);
                }
            } else if la == 2 {
                // Exactly one pin remains in `from`: e becomes removable
                // for it.
                for &u in hg.pins(e) {
                    if u != v && assignment[u as usize] == from {
                        self.benefit[u as usize] += w;
                        touched.push(u);
                    }
                }
            }
            if lb == 0 {
                // `to` gains its first pin of e: moving into `to` no longer
                // spans e, for every pin.
                for &u in hg.pins(e) {
                    self.penalty[u as usize * k + to as usize] -= w;
                    touched.push(u);
                }
            } else if lb == 1 {
                // The pin that was alone in `to` can no longer un-span e by
                // leaving.
                for &u in hg.pins(e) {
                    if u != v && assignment[u as usize] == to {
                        self.benefit[u as usize] -= w;
                        touched.push(u);
                    }
                }
            }
            state.lambda[base + from as usize] -= 1;
            state.lambda[base + to as usize] += 1;
        }
        let w = hg.vertex_weight(v);
        state.loads[from as usize][0] -= w[0];
        state.loads[from as usize][1] -= w[1];
        state.loads[to as usize][0] += w[0];
        state.loads[to as usize][1] += w[1];
        state.cost = (state.cost as i64 - g) as u64;
        assignment[v as usize] = to;
        touched.push(v);
    }

    /// Best feasible move for `v` using cached gains: `(to, gain)`
    /// maximizing gain, tie-broken toward the lighter destination — the same
    /// policy as [`RefineState::best_move`], at `O(k)` instead of
    /// `O(deg · k)`.
    fn best_move(
        &self,
        hg: &Hypergraph,
        state: &RefineState,
        v: u32,
        from: u32,
        caps: &Caps,
        total: VertexWeight,
    ) -> Option<(u32, i64)> {
        let w = hg.vertex_weight(v);
        let mut best: Option<(u32, i64, f64)> = None;
        for to in 0..self.k {
            if to == from {
                continue;
            }
            let l = state.loads[to as usize];
            if !admissible(l, w, caps.at(to)) {
                continue;
            }
            let g = self.gain(v, to);
            let load_after = norm_load(total, [l[0] + w[0], l[1] + w[1]]);
            let better = match best {
                None => true,
                Some((_, bg, bl)) => g > bg || (g == bg && load_after < bl),
            };
            if better {
                best = Some((to, g, load_after));
            }
        }
        best.map(|(to, g, _)| (to, g))
    }
}

/// An addressable max-priority queue over vertices, keyed by
/// `(gain, salt, vertex)`. Unlike a `BinaryHeap` of move entries, keys are
/// updated **in place** (sift up/down from the vertex's tracked position),
/// so the queue never holds stale entries for moved or locked vertices.
struct MoveHeap {
    /// Heap of vertex ids, ordered by `key`.
    heap: Vec<u32>,
    /// `pos[v]`: index of `v` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `key[v]`: `(gain, salt)` for vertices currently in the heap.
    key: Vec<(i64, u32)>,
}

const ABSENT: usize = usize::MAX;

impl MoveHeap {
    fn new(n: usize) -> Self {
        MoveHeap {
            heap: Vec::with_capacity(n),
            pos: vec![ABSENT; n],
            key: vec![(0, 0); n],
        }
    }

    #[inline]
    fn ord(&self, v: u32) -> (i64, u32, u32) {
        let (g, s) = self.key[v as usize];
        (g, s, v)
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `v` with `key`, or adjusts its key if already present.
    fn push_or_update(&mut self, v: u32, key: (i64, u32)) {
        let i = self.pos[v as usize];
        self.key[v as usize] = key;
        if i == ABSENT {
            self.pos[v as usize] = self.heap.len();
            self.heap.push(v);
            self.sift_up(self.heap.len() - 1);
        } else {
            self.sift_up(i);
            self.sift_down(self.pos[v as usize]);
        }
    }

    /// Removes `v` if present.
    fn remove(&mut self, v: u32) {
        let i = self.pos[v as usize];
        if i == ABSENT {
            return;
        }
        self.pos[v as usize] = ABSENT;
        let last = self.heap.pop().expect("nonempty");
        if i < self.heap.len() {
            self.heap[i] = last;
            self.pos[last as usize] = i;
            self.sift_up(i);
            self.sift_down(self.pos[last as usize]);
        }
    }

    /// Pops the maximum-key vertex.
    fn pop(&mut self) -> Option<(u32, i64)> {
        let top = *self.heap.first()?;
        self.remove(top);
        Some((top, self.key[top as usize].0))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.ord(self.heap[i]) <= self.ord(self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < self.heap.len() && self.ord(self.heap[l]) > self.ord(self.heap[m]) {
                m = l;
            }
            if r < self.heap.len() && self.ord(self.heap[r]) > self.ord(self.heap[m]) {
                m = r;
            }
            if m == i {
                break;
            }
            self.swap(i, m);
            i = m;
        }
    }

    #[inline]
    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// How many consecutive non-improving moves an FM pass tolerates before
/// giving up on the current trajectory.
const STALL_LIMIT: usize = 48;

/// One FM pass over the gain cache. Returns `true` if the pass improved the
/// cost.
fn fm_pass(
    hg: &Hypergraph,
    assignment: &mut [u32],
    state: &mut RefineState,
    cache: &mut GainCache,
    caps: &Caps,
    rng: &mut SmallRng,
) -> bool {
    let n = hg.num_vertices();
    let k = state.k;
    let total = hg.total_weight();
    let mut locked = vec![false; n];
    // Equal-gain pops are salt-ordered, and a vertex draws a fresh salt
    // every time it is (re-)keyed — matching the lazy heap, where every
    // push carried a fresh salt. Re-salting on every re-key is load-bearing
    // for quality: it keeps plateau walks (chains of zero-gain moves) from
    // locking into a fixed direction and stalling. Draws happen in the
    // serial move loop only, so the stream is identical at every thread
    // count.
    let mut salts: Vec<u32> = (0..n).map(|_| rng.gen()).collect();

    // Seed the queue with boundary vertices. Boundary flags come from one
    // sweep over the edges (an edge spanning > 1 part marks all its pins)
    // instead of a per-vertex `O(deg · k)` test.
    let mut heap = MoveHeap::new(n);
    let mut boundary = vec![false; n];
    for e in 0..hg.num_edges() as u32 {
        let spans = (0..k).filter(|&p| state.lam(e, p) > 0).count();
        if spans > 1 {
            for &u in hg.pins(e) {
                boundary[u as usize] = true;
            }
        }
    }
    for v in 0..n as u32 {
        if !boundary[v as usize] {
            continue;
        }
        if let Some((_, g)) = cache.best_move(hg, state, v, assignment[v as usize], caps, total) {
            heap.push_or_update(v, (g, salts[v as usize]));
        }
    }

    let start_cost = state.cost;
    let mut best_cost = state.cost;
    let mut moves: Vec<(u32, u32)> = Vec::new(); // (vertex, previous part)
    let mut best_len = 0usize;
    let mut stall = 0usize;
    let mut touched: Vec<u32> = Vec::new();
    // Dedup stamp for `touched` (stamp[v] == move counter => already seen).
    let mut stamp = vec![u64::MAX; n];
    let mut move_ctr = 0u64;

    while !heap.is_empty() {
        let Some((v, key_gain)) = heap.pop() else {
            break;
        };
        debug_assert!(!locked[v as usize], "locked vertices leave the queue");
        let from = assignment[v as usize];
        // The key may lag the loads (admissibility and tie-breaks drift as
        // parts fill); recheck against the cache before committing.
        let Some((to, g)) = cache.best_move(hg, state, v, from, caps, total) else {
            continue;
        };
        if g != key_gain {
            salts[v as usize] = rng.gen();
            heap.push_or_update(v, (g, salts[v as usize]));
            continue;
        }
        // The popped gain must agree with a from-scratch recomputation —
        // this is the regression guard for the delta-update rules.
        debug_assert_eq!(
            g,
            state.gain(hg, v, from, to),
            "gain cache out of sync for v={v} {from}->{to}"
        );
        touched.clear();
        cache.apply(hg, state, assignment, v, to, &mut touched);
        locked[v as usize] = true;
        heap.remove(v);
        moves.push((v, from));
        if state.cost < best_cost {
            best_cost = state.cost;
            best_len = moves.len();
            stall = 0;
        } else {
            stall += 1;
            if stall > STALL_LIMIT {
                break;
            }
        }
        // Re-key the vertices whose cached gains the move changed.
        move_ctr += 1;
        for &u in &touched {
            if locked[u as usize] || stamp[u as usize] == move_ctr {
                continue;
            }
            stamp[u as usize] = move_ctr;
            salts[u as usize] = rng.gen();
            match cache.best_move(hg, state, u, assignment[u as usize], caps, total) {
                Some((_, ug)) => heap.push_or_update(u, (ug, salts[u as usize])),
                None => heap.remove(u),
            }
        }
    }

    // Roll back past the best prefix (through the cache, so it stays exact).
    while moves.len() > best_len {
        let (v, prev) = moves.pop().unwrap();
        touched.clear();
        cache.apply(hg, state, assignment, v, prev, &mut touched);
    }
    debug_assert_eq!(state.cost, best_cost);
    best_cost < start_cost
}

/// Runs up to `passes` FM passes over `assignment` in place. Returns the
/// resulting connectivity cost.
pub fn refine(
    hg: &Hypergraph,
    assignment: &mut [u32],
    k: u32,
    caps: &Caps,
    passes: u32,
    rng: &mut SmallRng,
) -> u64 {
    let mut state = RefineState::new(hg, assignment, k);
    let mut cache = GainCache::new(hg, &state, assignment);
    for _ in 0..passes {
        if !fm_pass(hg, assignment, &mut state, &mut cache, caps, rng) {
            break;
        }
    }
    state.cost
}

/// Moves vertices out of parts exceeding `caps` until the assignment is
/// balanced or no improving move exists. Chooses, at each step, the move that
/// minimizes the connectivity cost increase per unit of overload relieved.
/// Returns whether the final assignment satisfies the caps.
pub fn rebalance(hg: &Hypergraph, assignment: &mut [u32], k: u32, caps: &Caps) -> bool {
    let mut state = RefineState::new(hg, assignment, k);
    // Bounded number of moves to guarantee termination.
    let max_moves = hg.num_vertices() * 2;
    for _ in 0..max_moves {
        // Find the most overloaded (part, dim), comparing overloads as a
        // fraction of the dimension's cap (FLOPs and bytes are not
        // commensurable in absolute terms).
        let mut worst: Option<(u32, usize, f64)> = None;
        for p in 0..k {
            for (d, &cap) in caps.at(p).iter().enumerate() {
                let over = state.loads[p as usize][d].saturating_sub(cap);
                if over == 0 {
                    continue;
                }
                let frac = over as f64 / cap.max(1) as f64;
                if worst.is_none_or(|(_, _, o)| frac > o) {
                    worst = Some((p, d, frac));
                }
            }
        }
        let Some((from, dim, _)) = worst else {
            return true;
        };
        // Best (vertex, destination): minimal cost increase per unit of the
        // overloaded dimension relieved; destination must fit.
        let mut best: Option<(u32, u32, f64)> = None;
        for v in 0..hg.num_vertices() as u32 {
            if assignment[v as usize] != from {
                continue;
            }
            let w = hg.vertex_weight(v);
            if w[dim] == 0 {
                continue;
            }
            for to in 0..k {
                if to == from {
                    continue;
                }
                let l = state.loads[to as usize];
                if !admissible(l, w, caps.at(to)) {
                    continue;
                }
                let g = state.gain(hg, v, from, to);
                let score = (-g) as f64 / w[dim] as f64;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((v, to, score));
                }
            }
        }
        let Some((v, to, _)) = best else {
            return false;
        };
        state.apply(hg, v, from, to);
        assignment[v as usize] = to;
    }
    state.loads.iter().enumerate().all(|(p, l)| {
        let cap = caps.at(p as u32);
        l[0] <= cap[0] && l[1] <= cap[1]
    })
}

/// The original lazily-revalidated `BinaryHeap` FM implementation, kept
/// verbatim as a comparison baseline for the gain-cache path: the
/// `refinement` microbenchmark in `crates/bench` pins the speedup, and the
/// partitioner proptests compare solution quality. Not used by
/// [`crate::partition`].
pub mod reference {
    use std::collections::BinaryHeap;

    use rand::rngs::SmallRng;
    use rand::Rng;

    use super::{RefineState, STALL_LIMIT};
    use crate::graph::Hypergraph;
    use crate::initial::Caps;

    /// A heap entry: cached best move of a vertex. Lazily revalidated on
    /// pop — entries for locked or already-moved vertices stay in the heap
    /// and are filtered out only when popped (the heap-churn bug class the
    /// gain cache eliminates).
    #[derive(PartialEq, Eq)]
    struct Entry {
        gain: i64,
        v: u32,
        to: u32,
        /// Random tiebreaker so equal-gain pops are not index-ordered.
        salt: u32,
    }

    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.gain, self.salt, self.v, self.to)
                .cmp(&(other.gain, other.salt, other.v, other.to))
        }
    }

    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    /// One FM pass. Returns `true` if the pass improved the cost.
    fn fm_pass(
        hg: &Hypergraph,
        assignment: &mut [u32],
        state: &mut RefineState,
        caps: &Caps,
        rng: &mut SmallRng,
    ) -> bool {
        let n = hg.num_vertices();
        let total = hg.total_weight();
        let mut locked = vec![false; n];
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        for v in 0..n as u32 {
            if !state.is_boundary(hg, v) {
                continue;
            }
            if let Some((to, gain)) = state.best_move(hg, v, assignment[v as usize], caps, total) {
                heap.push(Entry {
                    gain,
                    v,
                    to,
                    salt: rng.gen(),
                });
            }
        }

        let start_cost = state.cost;
        let mut best_cost = state.cost;
        let mut moves: Vec<(u32, u32)> = Vec::new(); // (vertex, previous part)
        let mut best_len = 0usize;
        let mut stall = 0usize;

        while let Some(Entry { gain, v, to, .. }) = heap.pop() {
            if locked[v as usize] {
                continue;
            }
            let from = assignment[v as usize];
            // Revalidate lazily: the cached move may be stale.
            match state.best_move(hg, v, from, caps, total) {
                Some((to2, g2)) => {
                    if to2 != to || g2 != gain {
                        heap.push(Entry {
                            gain: g2,
                            v,
                            to: to2,
                            salt: rng.gen(),
                        });
                        continue;
                    }
                }
                None => continue,
            }
            state.apply(hg, v, from, to);
            assignment[v as usize] = to;
            locked[v as usize] = true;
            moves.push((v, from));
            if state.cost < best_cost {
                best_cost = state.cost;
                best_len = moves.len();
                stall = 0;
            } else {
                stall += 1;
                if stall > STALL_LIMIT {
                    break;
                }
            }
            // Refresh neighbors whose gains may have changed.
            for &e in hg.incident_edges(v) {
                for &u in hg.pins(e) {
                    if locked[u as usize] || u == v {
                        continue;
                    }
                    if let Some((uto, ug)) =
                        state.best_move(hg, u, assignment[u as usize], caps, total)
                    {
                        heap.push(Entry {
                            gain: ug,
                            v: u,
                            to: uto,
                            salt: rng.gen(),
                        });
                    }
                }
            }
        }

        // Roll back past the best prefix.
        while moves.len() > best_len {
            let (v, prev) = moves.pop().unwrap();
            let cur = assignment[v as usize];
            state.apply(hg, v, cur, prev);
            assignment[v as usize] = prev;
        }
        debug_assert_eq!(state.cost, best_cost);
        best_cost < start_cost
    }

    /// Runs up to `passes` FM passes over `assignment` in place, using the
    /// original lazy-heap implementation. Returns the resulting
    /// connectivity cost.
    pub fn refine(
        hg: &Hypergraph,
        assignment: &mut [u32],
        k: u32,
        caps: &Caps,
        passes: u32,
        rng: &mut SmallRng,
    ) -> u64 {
        let mut state = RefineState::new(hg, assignment, k);
        for _ in 0..passes {
            if !fm_pass(hg, assignment, &mut state, caps, rng) {
                break;
            }
        }
        state.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HypergraphBuilder;
    use rand::SeedableRng;

    fn ring(n: usize, w: u64) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n {
            b.set_vertex_weight(v, [1, 1]);
        }
        for v in 0..n {
            b.add_edge(w, &[v as u32, ((v + 1) % n) as u32]);
        }
        b.build().unwrap()
    }

    #[test]
    fn gain_matches_recomputation() {
        let hg = ring(8, 3);
        let assignment = vec![0, 0, 1, 1, 0, 1, 0, 1];
        let state = RefineState::new(&hg, &assignment, 2);
        for v in 0..8u32 {
            let from = assignment[v as usize];
            let to = 1 - from;
            let g = state.gain(&hg, v, from, to);
            let mut after = assignment.clone();
            after[v as usize] = to;
            let recomputed = hg.connectivity_cost(&assignment, 2) as i64
                - hg.connectivity_cost(&after, 2) as i64;
            assert_eq!(g, recomputed, "v={v}");
        }
    }

    #[test]
    fn apply_keeps_cost_in_sync() {
        let hg = ring(8, 2);
        let mut assignment = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut state = RefineState::new(&hg, &assignment, 2);
        for v in [1u32, 3, 5] {
            let from = assignment[v as usize];
            state.apply(&hg, v, from, 1 - from);
            assignment[v as usize] = 1 - from;
            assert_eq!(state.cost, hg.connectivity_cost(&assignment, 2));
        }
    }

    #[test]
    fn gain_cache_matches_state_gain() {
        let hg = ring(10, 3);
        let assignment: Vec<u32> = (0..10).map(|v| (v / 5) as u32).collect();
        let state = RefineState::new(&hg, &assignment, 2);
        let cache = GainCache::new(&hg, &state, &assignment);
        for v in 0..10u32 {
            let from = assignment[v as usize];
            assert_eq!(
                cache.gain(v, 1 - from),
                state.gain(&hg, v, from, 1 - from),
                "v={v}"
            );
        }
    }

    #[test]
    fn gain_cache_delta_updates_stay_exact() {
        let hg = ring(12, 2);
        let mut assignment: Vec<u32> = (0..12).map(|v| (v % 3) as u32).collect();
        let mut state = RefineState::new(&hg, &assignment, 3);
        let mut cache = GainCache::new(&hg, &state, &assignment);
        let mut touched = Vec::new();
        // Apply a fixed move sequence; after each, the cache must agree with
        // a from-scratch rebuild for every (vertex, target).
        for (v, to) in [(0u32, 1u32), (4, 2), (7, 0), (0, 2), (11, 1)] {
            if assignment[v as usize] == to {
                continue;
            }
            touched.clear();
            cache.apply(&hg, &mut state, &mut assignment, v, to, &mut touched);
            assert_eq!(state.cost, hg.connectivity_cost(&assignment, 3));
            let fresh_state = RefineState::new(&hg, &assignment, 3);
            let fresh = GainCache::new(&hg, &fresh_state, &assignment);
            for u in 0..12u32 {
                for p in 0..3u32 {
                    if p == assignment[u as usize] {
                        continue;
                    }
                    assert_eq!(
                        cache.gain(u, p),
                        fresh.gain(u, p),
                        "stale gain for u={u} -> {p} after moving {v} -> {to}"
                    );
                }
            }
        }
    }

    #[test]
    fn move_heap_updates_in_place() {
        let mut heap = MoveHeap::new(4);
        heap.push_or_update(0, (5, 0));
        heap.push_or_update(1, (9, 0));
        heap.push_or_update(2, (1, 0));
        // Re-key vertex 2 above everything; vertex 1 below.
        heap.push_or_update(2, (20, 0));
        heap.push_or_update(1, (0, 0));
        assert_eq!(heap.pop(), Some((2, 20)));
        assert_eq!(heap.pop(), Some((0, 5)));
        heap.remove(1);
        assert!(heap.pop().is_none());
        // Removing an absent vertex is a no-op.
        heap.remove(3);
    }

    #[test]
    fn refine_untangles_alternating_ring() {
        let hg = ring(16, 5);
        // Worst-case alternating assignment: every edge cut.
        let mut assignment: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let before = hg.connectivity_cost(&assignment, 2);
        let mut rng = SmallRng::seed_from_u64(4);
        let after = refine(
            &hg,
            &mut assignment,
            2,
            &Caps::uniform([10, 10]),
            16,
            &mut rng,
        );
        // FM with negative-gain moves should reach the optimum: two arcs,
        // two cut edges.
        assert_eq!(after, hg.connectivity_cost(&assignment, 2));
        assert!(after <= 4 * 5, "{after} vs before {before}");
        // Balance maintained.
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 10));
    }

    #[test]
    fn refine_respects_caps() {
        let hg = ring(8, 1);
        let mut assignment = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut rng = SmallRng::seed_from_u64(8);
        refine(&hg, &mut assignment, 2, &Caps::uniform([4, 4]), 8, &mut rng);
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 4 && w[1] <= 4));
    }

    #[test]
    fn refine_never_worsens() {
        let mut rng = SmallRng::seed_from_u64(99);
        for n in [6usize, 12, 30] {
            let hg = ring(n, 2);
            let mut assignment: Vec<u32> = (0..n).map(|v| (v as u32 * 3) % 3).collect();
            let before = hg.connectivity_cost(&assignment, 3);
            let caps = Caps::uniform([n as u64, n as u64]);
            let after = refine(&hg, &mut assignment, 3, &caps, 8, &mut rng);
            assert!(after <= before);
        }
    }

    /// Two 12-vertex clusters held together by weight-10 intra-cluster ring
    /// edges, joined by two weight-1 bridges. Optimum: one cluster per part,
    /// cost 2.
    fn planted_two_clusters() -> Hypergraph {
        let mut b = HypergraphBuilder::new(24);
        for v in 0..24 {
            b.set_vertex_weight(v, [1, 1]);
        }
        for c in 0..2u32 {
            let base = c * 12;
            for i in 0..12u32 {
                b.add_edge(10, &[base + i, base + (i + 1) % 12]);
            }
        }
        b.add_edge(1, &[0, 12]);
        b.add_edge(1, &[6, 18]);
        b.build().unwrap()
    }

    #[test]
    fn gain_cache_refine_matches_reference_quality() {
        // Refinement's job in the multilevel pipeline is local cleanup of a
        // projected coarse solution, not global repair — so the parity
        // check starts both implementations from a mildly perturbed
        // optimum. (From adversarial starts, e.g. fully alternating, flat
        // FM of either flavor gets stuck in zero-gain plateaus and the
        // outcome is move-order luck.) Both must restore the optimum:
        // cluster per part, only the two bridges cut, cost 2.
        for seed in [1u64, 7, 23] {
            let hg = planted_two_clusters();
            let mut base: Vec<u32> = (0..24).map(|v| (v / 12) as u32).collect();
            for v in [0usize, 1, 12, 13] {
                base[v] = 1 - base[v];
            }
            let mut a = base.clone();
            let mut b = base.clone();
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let caps = Caps::uniform([14, 14]);
            let cost_new = refine(&hg, &mut a, 2, &caps, 16, &mut rng_a);
            let cost_ref = reference::refine(&hg, &mut b, 2, &caps, 16, &mut rng_b);
            assert_eq!(cost_new, 2, "seed {seed}");
            assert_eq!(cost_ref, 2, "seed {seed}");
        }
    }

    #[test]
    fn rebalance_fixes_overload() {
        let hg = ring(8, 1);
        // Everything on part 0.
        let mut assignment = vec![0u32; 8];
        let ok = rebalance(&hg, &mut assignment, 2, &Caps::uniform([5, 5]));
        assert!(ok);
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 5 && w[1] <= 5));
    }

    #[test]
    fn rebalance_reports_impossible() {
        // One giant vertex cannot be split.
        let mut b = HypergraphBuilder::new(2);
        b.set_vertex_weight(0, [100, 0]);
        b.set_vertex_weight(1, [1, 0]);
        b.add_edge(1, &[0, 1]);
        let hg = b.build().unwrap();
        let mut assignment = vec![0, 0];
        assert!(!rebalance(
            &hg,
            &mut assignment,
            2,
            &Caps::uniform([50, 50])
        ));
    }
}
