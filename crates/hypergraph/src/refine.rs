//! FM refinement and balance repair.
//!
//! Refinement maintains, for every hyperedge, the number of its pins in each
//! part (`lambda` table). The gain of moving vertex `v` from part `a` to
//! part `b` under the connectivity−1 objective is
//!
//! ```text
//!   gain = sum_{e ∋ v} w_e * ( [Lambda(e,a) == 1] - [Lambda(e,b) == 0] )
//! ```
//!
//! i.e. edges that would stop spanning `a` minus edges that would start
//! spanning `b`.
//!
//! [`refine`] runs Fiduccia–Mattheyses passes: each pass greedily applies the
//! best available move (including negative-gain moves, which lets it climb
//! out of local minima), locks the moved vertex, and finally rolls back to
//! the best prefix of the move sequence. Moves are drawn from a lazily
//! revalidated max-heap. Balance caps are enforced on every move.

use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::graph::{Hypergraph, VertexWeight};
use crate::initial::Caps;

/// Incremental state for k-way refinement.
pub struct RefineState {
    k: u32,
    /// `lambda[e * k + p]`: pins of edge `e` in part `p`.
    lambda: Vec<u32>,
    /// Per-part total weight.
    pub loads: Vec<VertexWeight>,
    /// Current connectivity−1 cost.
    pub cost: u64,
}

impl RefineState {
    /// Builds the lambda table and loads for `assignment`.
    pub fn new(hg: &Hypergraph, assignment: &[u32], k: u32) -> Self {
        let mut lambda = vec![0u32; hg.num_edges() * k as usize];
        for e in 0..hg.num_edges() as u32 {
            for &p in hg.pins(e) {
                lambda[e as usize * k as usize + assignment[p as usize] as usize] += 1;
            }
        }
        RefineState {
            k,
            lambda,
            loads: hg.part_weights(assignment, k),
            cost: hg.connectivity_cost(assignment, k),
        }
    }

    #[inline]
    fn lam(&self, e: u32, p: u32) -> u32 {
        self.lambda[e as usize * self.k as usize + p as usize]
    }

    /// Connectivity gain of moving `v` from `from` to `to` (positive is an
    /// improvement).
    pub fn gain(&self, hg: &Hypergraph, v: u32, from: u32, to: u32) -> i64 {
        let mut g = 0i64;
        for &e in hg.incident_edges(v) {
            let w = hg.edge_weight(e) as i64;
            if self.lam(e, from) == 1 {
                g += w;
            }
            if self.lam(e, to) == 0 {
                g -= w;
            }
        }
        g
    }

    /// Applies the move, updating lambda, loads and cost.
    pub fn apply(&mut self, hg: &Hypergraph, v: u32, from: u32, to: u32) {
        debug_assert_ne!(from, to);
        let g = self.gain(hg, v, from, to);
        for &e in hg.incident_edges(v) {
            let base = e as usize * self.k as usize;
            self.lambda[base + from as usize] -= 1;
            self.lambda[base + to as usize] += 1;
        }
        let w = hg.vertex_weight(v);
        self.loads[from as usize][0] -= w[0];
        self.loads[from as usize][1] -= w[1];
        self.loads[to as usize][0] += w[0];
        self.loads[to as usize][1] += w[1];
        self.cost = (self.cost as i64 - g) as u64;
    }

    /// Whether `v` touches an edge spanning more than one part.
    pub fn is_boundary(&self, hg: &Hypergraph, v: u32) -> bool {
        hg.incident_edges(v).iter().any(|&e| {
            let pins = hg.pins(e).len() as u32;
            // Edge spans > 1 part iff no part holds all its pins.
            (0..self.k).all(|p| self.lam(e, p) < pins)
        })
    }

    /// Best feasible move for `v`: `(to, gain)` maximizing gain, tie-broken
    /// toward the lighter destination. `None` when no destination fits.
    fn best_move(
        &self,
        hg: &Hypergraph,
        v: u32,
        from: u32,
        caps: Caps,
        total: VertexWeight,
    ) -> Option<(u32, i64)> {
        let w = hg.vertex_weight(v);
        let mut best: Option<(u32, i64, f64)> = None;
        for to in 0..self.k {
            if to == from {
                continue;
            }
            let l = self.loads[to as usize];
            if !admissible(l, w, caps) {
                continue;
            }
            let g = self.gain(hg, v, from, to);
            let load_after = norm_load(total, [l[0] + w[0], l[1] + w[1]]);
            let better = match best {
                None => true,
                Some((_, bg, bl)) => g > bg || (g == bg && load_after < bl),
            };
            if better {
                best = Some((to, g, load_after));
            }
        }
        best.map(|(to, g, _)| (to, g))
    }
}

/// Whether moving a vertex of weight `w` into a part with load `l` is
/// admissible under `caps`: each dimension the move actually increases must
/// stay under its cap. Dimensions the move leaves unchanged may already be
/// over cap (otherwise a part over its *data* cap could never accept the
/// *compute*-only vertices needed to repair a compute imbalance elsewhere).
#[inline]
fn admissible(l: VertexWeight, w: VertexWeight, caps: Caps) -> bool {
    (0..2).all(|d| w[d] == 0 || l[d] + w[d] <= caps[d])
}

fn norm_load(total: VertexWeight, w: VertexWeight) -> f64 {
    let a = if total[0] > 0 {
        w[0] as f64 / total[0] as f64
    } else {
        0.0
    };
    let b = if total[1] > 0 {
        w[1] as f64 / total[1] as f64
    } else {
        0.0
    };
    a.max(b)
}

/// A heap entry: cached best move of a vertex. Lazily revalidated on pop.
#[derive(PartialEq, Eq)]
struct Entry {
    gain: i64,
    v: u32,
    to: u32,
    /// Random tiebreaker so equal-gain pops are not index-ordered.
    salt: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.gain, self.salt, self.v, self.to).cmp(&(other.gain, other.salt, other.v, other.to))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How many consecutive non-improving moves an FM pass tolerates before
/// giving up on the current trajectory.
const STALL_LIMIT: usize = 48;

/// One FM pass. Returns `true` if the pass improved the cost.
fn fm_pass(
    hg: &Hypergraph,
    assignment: &mut [u32],
    state: &mut RefineState,
    caps: Caps,
    rng: &mut SmallRng,
) -> bool {
    let n = hg.num_vertices();
    let total = hg.total_weight();
    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    for v in 0..n as u32 {
        if !state.is_boundary(hg, v) {
            continue;
        }
        if let Some((to, gain)) = state.best_move(hg, v, assignment[v as usize], caps, total) {
            heap.push(Entry {
                gain,
                v,
                to,
                salt: rng.gen(),
            });
        }
    }

    let start_cost = state.cost;
    let mut best_cost = state.cost;
    let mut moves: Vec<(u32, u32)> = Vec::new(); // (vertex, previous part)
    let mut best_len = 0usize;
    let mut stall = 0usize;

    while let Some(Entry { gain, v, to, .. }) = heap.pop() {
        if locked[v as usize] {
            continue;
        }
        let from = assignment[v as usize];
        // Revalidate lazily: the cached move may be stale.
        match state.best_move(hg, v, from, caps, total) {
            Some((to2, g2)) => {
                if to2 != to || g2 != gain {
                    heap.push(Entry {
                        gain: g2,
                        v,
                        to: to2,
                        salt: rng.gen(),
                    });
                    continue;
                }
            }
            None => continue,
        }
        state.apply(hg, v, from, to);
        assignment[v as usize] = to;
        locked[v as usize] = true;
        moves.push((v, from));
        if state.cost < best_cost {
            best_cost = state.cost;
            best_len = moves.len();
            stall = 0;
        } else {
            stall += 1;
            if stall > STALL_LIMIT {
                break;
            }
        }
        // Refresh neighbors whose gains may have changed.
        for &e in hg.incident_edges(v) {
            for &u in hg.pins(e) {
                if locked[u as usize] || u == v {
                    continue;
                }
                if let Some((uto, ug)) = state.best_move(hg, u, assignment[u as usize], caps, total)
                {
                    heap.push(Entry {
                        gain: ug,
                        v: u,
                        to: uto,
                        salt: rng.gen(),
                    });
                }
            }
        }
    }

    // Roll back past the best prefix.
    while moves.len() > best_len {
        let (v, prev) = moves.pop().unwrap();
        let cur = assignment[v as usize];
        state.apply(hg, v, cur, prev);
        assignment[v as usize] = prev;
    }
    debug_assert_eq!(state.cost, best_cost);
    best_cost < start_cost
}

/// Runs up to `passes` FM passes over `assignment` in place. Returns the
/// resulting connectivity cost.
pub fn refine(
    hg: &Hypergraph,
    assignment: &mut [u32],
    k: u32,
    caps: Caps,
    passes: u32,
    rng: &mut SmallRng,
) -> u64 {
    let mut state = RefineState::new(hg, assignment, k);
    for _ in 0..passes {
        if !fm_pass(hg, assignment, &mut state, caps, rng) {
            break;
        }
    }
    state.cost
}

/// Moves vertices out of parts exceeding `caps` until the assignment is
/// balanced or no improving move exists. Chooses, at each step, the move that
/// minimizes the connectivity cost increase per unit of overload relieved.
/// Returns whether the final assignment satisfies the caps.
pub fn rebalance(hg: &Hypergraph, assignment: &mut [u32], k: u32, caps: Caps) -> bool {
    let mut state = RefineState::new(hg, assignment, k);
    // Bounded number of moves to guarantee termination.
    let max_moves = hg.num_vertices() * 2;
    for _ in 0..max_moves {
        // Find the most overloaded (part, dim), comparing overloads as a
        // fraction of the dimension's cap (FLOPs and bytes are not
        // commensurable in absolute terms).
        let mut worst: Option<(u32, usize, f64)> = None;
        for p in 0..k {
            for (d, &cap) in caps.iter().enumerate() {
                let over = state.loads[p as usize][d].saturating_sub(cap);
                if over == 0 {
                    continue;
                }
                let frac = over as f64 / cap.max(1) as f64;
                if worst.is_none_or(|(_, _, o)| frac > o) {
                    worst = Some((p, d, frac));
                }
            }
        }
        let Some((from, dim, _)) = worst else {
            return true;
        };
        // Best (vertex, destination): minimal cost increase per unit of the
        // overloaded dimension relieved; destination must fit.
        let mut best: Option<(u32, u32, f64)> = None;
        for v in 0..hg.num_vertices() as u32 {
            if assignment[v as usize] != from {
                continue;
            }
            let w = hg.vertex_weight(v);
            if w[dim] == 0 {
                continue;
            }
            for to in 0..k {
                if to == from {
                    continue;
                }
                let l = state.loads[to as usize];
                if !admissible(l, w, caps) {
                    continue;
                }
                let g = state.gain(hg, v, from, to);
                let score = (-g) as f64 / w[dim] as f64;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((v, to, score));
                }
            }
        }
        let Some((v, to, _)) = best else {
            return false;
        };
        state.apply(hg, v, from, to);
        assignment[v as usize] = to;
    }
    state
        .loads
        .iter()
        .all(|l| l[0] <= caps[0] && l[1] <= caps[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HypergraphBuilder;
    use rand::SeedableRng;

    fn ring(n: usize, w: u64) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n {
            b.set_vertex_weight(v, [1, 1]);
        }
        for v in 0..n {
            b.add_edge(w, &[v as u32, ((v + 1) % n) as u32]);
        }
        b.build().unwrap()
    }

    #[test]
    fn gain_matches_recomputation() {
        let hg = ring(8, 3);
        let assignment = vec![0, 0, 1, 1, 0, 1, 0, 1];
        let state = RefineState::new(&hg, &assignment, 2);
        for v in 0..8u32 {
            let from = assignment[v as usize];
            let to = 1 - from;
            let g = state.gain(&hg, v, from, to);
            let mut after = assignment.clone();
            after[v as usize] = to;
            let recomputed = hg.connectivity_cost(&assignment, 2) as i64
                - hg.connectivity_cost(&after, 2) as i64;
            assert_eq!(g, recomputed, "v={v}");
        }
    }

    #[test]
    fn apply_keeps_cost_in_sync() {
        let hg = ring(8, 2);
        let mut assignment = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut state = RefineState::new(&hg, &assignment, 2);
        for v in [1u32, 3, 5] {
            let from = assignment[v as usize];
            state.apply(&hg, v, from, 1 - from);
            assignment[v as usize] = 1 - from;
            assert_eq!(state.cost, hg.connectivity_cost(&assignment, 2));
        }
    }

    #[test]
    fn refine_untangles_alternating_ring() {
        let hg = ring(16, 5);
        // Worst-case alternating assignment: every edge cut.
        let mut assignment: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let before = hg.connectivity_cost(&assignment, 2);
        let mut rng = SmallRng::seed_from_u64(4);
        let after = refine(&hg, &mut assignment, 2, [10, 10], 16, &mut rng);
        // FM with negative-gain moves should reach the optimum: two arcs,
        // two cut edges.
        assert_eq!(after, hg.connectivity_cost(&assignment, 2));
        assert!(after <= 4 * 5, "{after} vs before {before}");
        // Balance maintained.
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 10));
    }

    #[test]
    fn refine_respects_caps() {
        let hg = ring(8, 1);
        let mut assignment = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut rng = SmallRng::seed_from_u64(8);
        refine(&hg, &mut assignment, 2, [4, 4], 8, &mut rng);
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 4 && w[1] <= 4));
    }

    #[test]
    fn refine_never_worsens() {
        let mut rng = SmallRng::seed_from_u64(99);
        for n in [6usize, 12, 30] {
            let hg = ring(n, 2);
            let mut assignment: Vec<u32> = (0..n).map(|v| (v as u32 * 3) % 3).collect();
            let before = hg.connectivity_cost(&assignment, 3);
            let after = refine(&hg, &mut assignment, 3, [n as u64, n as u64], 8, &mut rng);
            assert!(after <= before);
        }
    }

    #[test]
    fn rebalance_fixes_overload() {
        let hg = ring(8, 1);
        // Everything on part 0.
        let mut assignment = vec![0u32; 8];
        let ok = rebalance(&hg, &mut assignment, 2, [5, 5]);
        assert!(ok);
        let pw = hg.part_weights(&assignment, 2);
        assert!(pw.iter().all(|w| w[0] <= 5 && w[1] <= 5));
    }

    #[test]
    fn rebalance_reports_impossible() {
        // One giant vertex cannot be split.
        let mut b = HypergraphBuilder::new(2);
        b.set_vertex_weight(0, [100, 0]);
        b.set_vertex_weight(1, [1, 0]);
        b.add_edge(1, &[0, 1]);
        let hg = b.build().unwrap();
        let mut assignment = vec![0, 0];
        assert!(!rebalance(&hg, &mut assignment, 2, [50, 50]));
    }
}
