//! The multilevel partitioning driver.

use std::time::Instant;

use dcp_types::{DcpError, DcpResult};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::coarsen::{coarsen_to, coarsen_to_respecting};
use crate::graph::{Hypergraph, VertexWeight};
use crate::initial::{initial_partition, is_balanced, Caps};
use crate::refine::{rebalance, refine};

/// Configuration of one partitioning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of parts.
    pub k: u32,
    /// Imbalance tolerance per weight dimension: part weight may exceed the
    /// average by this fraction. The paper uses `[epsilon, ~0]` — a
    /// user-visible compute tolerance and data blocks kept "as balanced as
    /// possible" (we allow a small granularity slack on data).
    pub eps: [f64; 2],
    /// RNG seed (plans are deterministic given the seed).
    pub seed: u64,
    /// Stop coarsening at this many vertices (0 = auto: `64 * k`).
    pub coarsen_target: usize,
    /// Refinement passes per level.
    pub refine_passes: u32,
    /// Initial-partitioning portfolio size.
    pub initial_tries: u32,
    /// Disable refinement entirely (for ablation benchmarks).
    pub refine_enabled: bool,
    /// Number of V-cycles after the initial multilevel pass: each V-cycle
    /// re-coarsens the hypergraph *respecting* the current partition and
    /// refines on the way back up, escaping local minima the single pass
    /// left behind.
    pub vcycles: u32,
    /// Optional per-part target weights (length `k`). When set, part `p`'s
    /// balance cap is derived from `part_targets[p]` instead of the uniform
    /// `total / k` average — heterogeneous capacity for fault-aware
    /// placement (straggler down-weighting) and residual re-partitioning
    /// onto survivors with unequal headroom. `None` keeps the classic
    /// uniform caps.
    #[serde(default)]
    pub part_targets: Option<Vec<VertexWeight>>,
}

impl PartitionConfig {
    /// A sensible default configuration for `k` parts: compute tolerance
    /// 10%, data tolerance 5%, multilevel with refinement.
    pub fn new(k: u32) -> Self {
        PartitionConfig {
            k,
            eps: [0.10, 0.05],
            seed: 0x5eed,
            coarsen_target: 0,
            refine_passes: 8,
            initial_tries: 4,
            refine_enabled: true,
            vcycles: 1,
            part_targets: None,
        }
    }

    /// Sets the compute-imbalance tolerance (the paper's epsilon).
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.eps[0] = eps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets per-part target weights (must have length `k`).
    pub fn with_part_targets(mut self, targets: Vec<VertexWeight>) -> Self {
        self.part_targets = Some(targets);
        self
    }
}

/// The result of a partitioning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Part of each vertex, in `0..k`.
    pub assignment: Vec<u32>,
    /// Final connectivity−1 cost (total communication volume).
    pub cost: u64,
    /// Per-part total vertex weight.
    pub part_weights: Vec<VertexWeight>,
    /// Whether the balance caps were satisfied.
    pub balanced: bool,
    /// The caps that were enforced.
    pub caps: VertexWeight,
}

/// Wall-clock breakdown of one partitioning run by pipeline stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Seconds spent coarsening (including V-cycle re-coarsening).
    pub coarsen_s: f64,
    /// Seconds spent on initial partitioning of the coarsest level.
    pub initial_s: f64,
    /// Seconds spent in FM refinement and balance repair.
    pub refine_s: f64,
    /// Coarsening levels built by the first multilevel pass.
    pub levels: u32,
    /// V-cycles actually executed.
    pub vcycles: u32,
}

impl PartitionStats {
    /// Accumulates `other` into `self` (summing times and counts) — used to
    /// aggregate the stats of hierarchical sub-partitions.
    pub fn merge(&mut self, other: &PartitionStats) {
        self.coarsen_s += other.coarsen_s;
        self.initial_s += other.initial_s;
        self.refine_s += other.refine_s;
        self.levels += other.levels;
        self.vcycles += other.vcycles;
    }
}

/// Computes the per-part balance caps for `hg` under `cfg`.
///
/// `cap[d] = max(ceil((1 + eps[d]) * avg), floor(avg) + max_vertex[d])` with
/// `avg = total[d] / k`. The second term grants one vertex of granularity
/// slack: without it, a tolerance smaller than a single block's share of a
/// part (e.g. the tight data tolerance with large block sizes) would make
/// the instance infeasible no matter how the blocks are placed.
pub fn balance_caps(hg: &Hypergraph, cfg: &PartitionConfig) -> VertexWeight {
    let total = hg.total_weight();
    let maxv = hg.max_vertex_weight();
    let mut caps = [0u64; 2];
    for d in 0..2 {
        let avg = total[d] as f64 / cfg.k as f64;
        caps[d] = (((1.0 + cfg.eps[d]) * avg).ceil() as u64).max(avg as u64 + maxv[d]);
    }
    caps
}

/// The full (possibly per-part) caps for `hg` under `cfg`.
///
/// With [`PartitionConfig::part_targets`] set, the uniform average in the
/// [`balance_caps`] formula is replaced by each part's own target:
/// `cap[p][d] = max(ceil((1 + eps[d]) * t[p][d]), t[p][d] + max_vertex[d])`,
/// keeping the same one-vertex granularity slack per part. Without targets
/// this is exactly the uniform cap.
pub fn balance_caps_full(hg: &Hypergraph, cfg: &PartitionConfig) -> Caps {
    match &cfg.part_targets {
        None => Caps::uniform(balance_caps(hg, cfg)),
        Some(targets) => {
            let maxv = hg.max_vertex_weight();
            let per_part = targets
                .iter()
                .map(|t| {
                    let mut cap = [0u64; 2];
                    for d in 0..2 {
                        cap[d] =
                            (((1.0 + cfg.eps[d]) * t[d] as f64).ceil() as u64).max(t[d] + maxv[d]);
                    }
                    cap
                })
                .collect();
            Caps::per_part(per_part)
        }
    }
}

/// Partitions `hg` into `cfg.k` balanced parts minimizing the
/// connectivity−1 metric, using the multilevel scheme.
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `k == 0` or the hypergraph has no
/// vertices.
pub fn partition(hg: &Hypergraph, cfg: &PartitionConfig) -> DcpResult<Partition> {
    partition_with_stats(hg, cfg).map(|(p, _)| p)
}

/// Like [`partition`], but also returns the per-stage wall-clock breakdown.
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `k == 0` or the hypergraph has no
/// vertices.
pub fn partition_with_stats(
    hg: &Hypergraph,
    cfg: &PartitionConfig,
) -> DcpResult<(Partition, PartitionStats)> {
    if cfg.k == 0 {
        return Err(DcpError::invalid_argument("k must be > 0"));
    }
    if hg.num_vertices() == 0 {
        return Err(DcpError::invalid_argument(
            "cannot partition an empty hypergraph",
        ));
    }
    if let Some(t) = &cfg.part_targets {
        if t.len() != cfg.k as usize {
            return Err(DcpError::invalid_argument(format!(
                "part_targets has {} entries for k = {}",
                t.len(),
                cfg.k
            )));
        }
    }
    let k = cfg.k;
    let caps = balance_caps_full(hg, cfg);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut stats = PartitionStats::default();

    if k == 1 {
        let assignment = vec![0u32; hg.num_vertices()];
        return Ok((finish(hg, assignment, k, &caps), stats));
    }

    // Coarsen.
    let target = if cfg.coarsen_target == 0 {
        (4 * k as usize).max(16)
    } else {
        cfg.coarsen_target
    };
    let total = hg.total_weight();
    let max_cluster = [
        (total[0] / (k as u64 * 8)).max(1),
        (total[1] / (k as u64 * 8)).max(1),
    ];
    let t = Instant::now();
    let levels = coarsen_to(hg, target, max_cluster, &mut rng);
    stats.coarsen_s += t.elapsed().as_secs_f64();
    stats.levels = levels.len() as u32;
    let coarsest = levels.last().map_or(hg, |l| &l.coarse);

    // Initial partition on the coarsest level.
    let t = Instant::now();
    let mut assignment = initial_partition(coarsest, k, &caps, cfg.initial_tries, &mut rng);
    stats.initial_s += t.elapsed().as_secs_f64();
    let t = Instant::now();
    if cfg.refine_enabled {
        refine(
            coarsest,
            &mut assignment,
            k,
            &caps,
            cfg.refine_passes,
            &mut rng,
        );
    }

    // Uncoarsen: project through the levels, refining at each.
    for i in (0..levels.len()).rev() {
        let fine: &Hypergraph = if i == 0 { hg } else { &levels[i - 1].coarse };
        let map = &levels[i].fine_to_coarse;
        let mut fine_assignment = vec![0u32; fine.num_vertices()];
        for v in 0..fine.num_vertices() {
            fine_assignment[v] = assignment[map[v] as usize];
        }
        assignment = fine_assignment;
        if cfg.refine_enabled {
            refine(fine, &mut assignment, k, &caps, cfg.refine_passes, &mut rng);
        }
    }

    // Final balance repair and polish at the finest level.
    if !is_balanced(hg, &assignment, k, &caps) {
        rebalance(hg, &mut assignment, k, &caps);
    }
    if cfg.refine_enabled {
        refine(hg, &mut assignment, k, &caps, cfg.refine_passes, &mut rng);
    }
    stats.refine_s += t.elapsed().as_secs_f64();

    // V-cycles: re-coarsen respecting the partition, refine back up.
    for _ in 0..cfg.vcycles {
        if !cfg.refine_enabled {
            break;
        }
        let before = hg.connectivity_cost(&assignment, k);
        let t = Instant::now();
        let levels = coarsen_to_respecting(hg, target, max_cluster, &mut rng, Some(&assignment));
        stats.coarsen_s += t.elapsed().as_secs_f64();
        if levels.is_empty() {
            break;
        }
        stats.vcycles += 1;
        // Project the assignment to the coarsest level (well defined:
        // matched vertices share a part by construction).
        let mut coarse = assignment.clone();
        for level in &levels {
            let mut next = vec![0u32; level.coarse.num_vertices()];
            for (v, &c) in level.fine_to_coarse.iter().enumerate() {
                next[c as usize] = coarse[v];
            }
            coarse = next;
        }
        let mut a = coarse;
        let coarsest = &levels.last().expect("nonempty").coarse;
        let t = Instant::now();
        refine(coarsest, &mut a, k, &caps, cfg.refine_passes, &mut rng);
        for i in (0..levels.len()).rev() {
            let fine: &Hypergraph = if i == 0 { hg } else { &levels[i - 1].coarse };
            let map = &levels[i].fine_to_coarse;
            let mut fine_assignment = vec![0u32; fine.num_vertices()];
            for v in 0..fine.num_vertices() {
                fine_assignment[v] = a[map[v] as usize];
            }
            a = fine_assignment;
            refine(fine, &mut a, k, &caps, cfg.refine_passes, &mut rng);
        }
        stats.refine_s += t.elapsed().as_secs_f64();
        let after = hg.connectivity_cost(&a, k);
        if after < before && is_balanced(hg, &a, k, &caps) == is_balanced(hg, &assignment, k, &caps)
        {
            assignment = a;
        } else if after >= before {
            break;
        }
    }
    Ok((finish(hg, assignment, k, &caps), stats))
}

/// Refines a caller-supplied seed assignment ("warm start") instead of
/// running the full multilevel pipeline: balance-repairs the seed against
/// the caps when needed, then FM-refines at the finest level only. Skipping
/// coarsening and initial partitioning is what makes incremental
/// re-planning sub-millisecond; the trade-off is that quality depends
/// entirely on the seed, so callers must bound the result against a cold
/// reference and fall back when it regresses (the planner's incremental
/// path does exactly that).
///
/// A seed that is already balanced and FM-converged under the same caps is
/// returned unchanged: `refine` only keeps strictly-improving move
/// prefixes, so the warm path is idempotent on its own output — and on the
/// finest-level output of the cold pipeline.
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `k == 0`, the hypergraph is
/// empty, `seed` has the wrong length or contains parts `>= k`, or
/// `part_targets` has the wrong length.
pub fn partition_warm_with_stats(
    hg: &Hypergraph,
    cfg: &PartitionConfig,
    seed: &[u32],
) -> DcpResult<(Partition, PartitionStats)> {
    if cfg.k == 0 {
        return Err(DcpError::invalid_argument("k must be > 0"));
    }
    if hg.num_vertices() == 0 {
        return Err(DcpError::invalid_argument(
            "cannot partition an empty hypergraph",
        ));
    }
    if seed.len() != hg.num_vertices() {
        return Err(DcpError::invalid_argument(format!(
            "warm seed has {} entries for {} vertices",
            seed.len(),
            hg.num_vertices()
        )));
    }
    if let Some(&p) = seed.iter().find(|&&p| p >= cfg.k) {
        return Err(DcpError::invalid_argument(format!(
            "warm seed part {p} out of range for k = {}",
            cfg.k
        )));
    }
    if let Some(t) = &cfg.part_targets {
        if t.len() != cfg.k as usize {
            return Err(DcpError::invalid_argument(format!(
                "part_targets has {} entries for k = {}",
                t.len(),
                cfg.k
            )));
        }
    }
    let caps = balance_caps_full(hg, cfg);
    let mut stats = PartitionStats::default();
    let mut assignment = seed.to_vec();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let t = Instant::now();
    if !is_balanced(hg, &assignment, cfg.k, &caps) {
        rebalance(hg, &mut assignment, cfg.k, &caps);
    }
    if cfg.refine_enabled {
        refine(
            hg,
            &mut assignment,
            cfg.k,
            &caps,
            cfg.refine_passes,
            &mut rng,
        );
    }
    stats.refine_s += t.elapsed().as_secs_f64();
    Ok((finish(hg, assignment, cfg.k, &caps), stats))
}

/// [`partition_warm_with_stats`] without the stage breakdown.
///
/// # Errors
///
/// Same contract as [`partition_warm_with_stats`].
pub fn partition_warm(
    hg: &Hypergraph,
    cfg: &PartitionConfig,
    seed: &[u32],
) -> DcpResult<Partition> {
    partition_warm_with_stats(hg, cfg, seed).map(|(p, _)| p)
}

fn finish(hg: &Hypergraph, assignment: Vec<u32>, k: u32, caps: &Caps) -> Partition {
    let cost = hg.connectivity_cost(&assignment, k);
    let part_weights = hg.part_weights(&assignment, k);
    let balanced = part_weights.iter().enumerate().all(|(p, w)| {
        let cap = caps.at(p as u32);
        w[0] <= cap[0] && w[1] <= cap[1]
    });
    Partition {
        assignment,
        cost,
        part_weights,
        balanced,
        caps: caps.uniform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HypergraphBuilder;
    use proptest::prelude::*;
    use rand::Rng;

    /// A planted partition: `k` groups of `m` vertices with heavy intra-group
    /// edges and light random inter-group edges.
    fn planted(k: u32, m: usize, seed: u64) -> (Hypergraph, Vec<u32>) {
        let n = k as usize * m;
        let mut b = HypergraphBuilder::new(n);
        let mut truth = Vec::with_capacity(n);
        for g in 0..k {
            for i in 0..m {
                let v = g as usize * m + i;
                b.set_vertex_weight(v, [1 + (i as u64 % 3), 1]);
                truth.push(g);
                // Heavy edge to the next member of the same group.
                let u = g as usize * m + (i + 1) % m;
                b.add_edge(100, &[v as u32, u as u32]);
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n / 4 {
            let a = rng.gen_range(0..n) as u32;
            let c = rng.gen_range(0..n) as u32;
            if a != c {
                b.add_edge(1, &[a, c]);
            }
        }
        (b.build().unwrap(), truth)
    }

    #[test]
    fn recovers_planted_bisection() {
        let (hg, truth) = planted(2, 32, 7);
        let part = partition(&hg, &PartitionConfig::new(2)).unwrap();
        assert!(part.balanced);
        // Cost should be at most the planted cut (only light edges cross).
        let planted_cost = hg.connectivity_cost(&truth, 2);
        assert!(
            part.cost <= planted_cost,
            "cost {} > planted {}",
            part.cost,
            planted_cost
        );
    }

    #[test]
    fn k_way_partition_is_balanced() {
        let (hg, _) = planted(8, 24, 3);
        let cfg = PartitionConfig::new(8).with_epsilon(0.1);
        let part = partition(&hg, &cfg).unwrap();
        assert!(part.balanced, "part weights: {:?}", part.part_weights);
        assert_eq!(part.part_weights.len(), 8);
        let used: std::collections::HashSet<u32> = part.assignment.iter().copied().collect();
        assert_eq!(used.len(), 8, "all parts used");
    }

    #[test]
    fn k1_is_free() {
        let (hg, _) = planted(2, 16, 1);
        let part = partition(&hg, &PartitionConfig::new(1)).unwrap();
        assert_eq!(part.cost, 0);
        assert!(part.assignment.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (hg, _) = planted(4, 20, 5);
        let cfg = PartitionConfig::new(4).with_seed(42);
        let a = partition(&hg, &cfg).unwrap();
        let b = partition(&hg, &cfg).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn refinement_not_worse_than_disabled() {
        let (hg, _) = planted(4, 32, 9);
        let on = partition(&hg, &PartitionConfig::new(4)).unwrap();
        let mut cfg_off = PartitionConfig::new(4);
        cfg_off.refine_enabled = false;
        let off = partition(&hg, &cfg_off).unwrap();
        assert!(
            on.cost <= off.cost,
            "refine {} > no-refine {}",
            on.cost,
            off.cost
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (hg, _) = planted(2, 4, 1);
        assert!(partition(&hg, &PartitionConfig::new(0)).is_err());
        let empty = HypergraphBuilder::new(0).build().unwrap();
        assert!(partition(&empty, &PartitionConfig::new(2)).is_err());
    }

    #[test]
    fn part_targets_skew_the_partition() {
        // 4 equal groups, but part 0 is targeted at half a group's weight:
        // its final load must stay under the skewed cap while the other
        // parts absorb the slack.
        let (hg, _) = planted(4, 16, 21);
        let total = hg.total_weight();
        let quarter = [total[0] / 4, total[1] / 4];
        let targets = vec![
            [quarter[0] / 2, quarter[1] / 2],
            [quarter[0] + quarter[0] / 6, quarter[1] + quarter[1] / 6],
            [quarter[0] + quarter[0] / 6, quarter[1] + quarter[1] / 6],
            [quarter[0] + quarter[0] / 6, quarter[1] + quarter[1] / 6],
        ];
        let cfg = PartitionConfig::new(4)
            .with_epsilon(0.1)
            .with_part_targets(targets.clone());
        let part = partition(&hg, &cfg).unwrap();
        assert!(part.balanced, "part weights: {:?}", part.part_weights);
        let caps = balance_caps_full(&hg, &cfg);
        for (p, w) in part.part_weights.iter().enumerate() {
            let cap = caps.at(p as u32);
            assert!(
                w[0] <= cap[0] && w[1] <= cap[1],
                "part {p} load {w:?} over cap {cap:?}"
            );
        }
        // The skewed part really is lighter than an even split.
        assert!(
            part.part_weights[0][0] < quarter[0],
            "part 0 should be under the uniform average: {:?}",
            part.part_weights
        );
    }

    #[test]
    fn part_targets_length_mismatch_is_rejected() {
        let (hg, _) = planted(2, 8, 1);
        let cfg = PartitionConfig::new(2).with_part_targets(vec![[1, 1]; 3]);
        assert!(partition(&hg, &cfg).is_err());
    }

    #[test]
    fn no_part_targets_matches_uniform_caps() {
        // `part_targets: None` must be byte-identical to the pre-existing
        // uniform-caps path (the default config hits it everywhere).
        let (hg, _) = planted(4, 20, 5);
        let cfg = PartitionConfig::new(4).with_seed(42);
        let caps = balance_caps_full(&hg, &cfg);
        assert_eq!(caps.uniform, balance_caps(&hg, &cfg));
        assert!(caps.per_part.is_none());
    }

    #[test]
    fn more_parts_than_vertices_spreads() {
        let mut b = HypergraphBuilder::new(3);
        for v in 0..3 {
            b.set_vertex_weight(v, [1, 1]);
        }
        b.add_edge(1, &[0, 1, 2]);
        let hg = b.build().unwrap();
        let part = partition(&hg, &PartitionConfig::new(5)).unwrap();
        assert_eq!(part.assignment.len(), 3);
        assert!(part.assignment.iter().all(|&p| p < 5));
    }

    #[test]
    fn loose_epsilon_never_increases_cost() {
        // Fig. 20's trade-off: larger epsilon -> no more communication.
        let (hg, _) = planted(4, 32, 13);
        let tight = partition(&hg, &PartitionConfig::new(4).with_epsilon(0.02)).unwrap();
        let loose = partition(&hg, &PartitionConfig::new(4).with_epsilon(0.8)).unwrap();
        assert!(
            loose.cost <= tight.cost,
            "loose {} > tight {}",
            loose.cost,
            tight.cost
        );
    }

    #[test]
    fn warm_start_from_converged_assignment_is_identity() {
        // The linchpin of incremental planning: re-running the warm path on
        // the cold pipeline's own (balanced, FM-converged) output must be a
        // no-op, bitwise.
        let (hg, _) = planted(4, 24, 11);
        let cfg = PartitionConfig::new(4).with_seed(42);
        let cold = partition(&hg, &cfg).unwrap();
        assert!(cold.balanced);
        let (warm, stats) = partition_warm_with_stats(&hg, &cfg, &cold.assignment).unwrap();
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(warm.cost, cold.cost);
        assert_eq!(stats.levels, 0, "warm path never coarsens");
        assert_eq!(stats.coarsen_s, 0.0);
        assert_eq!(stats.initial_s, 0.0);
    }

    #[test]
    fn warm_start_from_perturbed_seed_recovers_balance_and_quality() {
        let (hg, truth) = planted(4, 24, 17);
        // Perturb the planted truth: move a handful of vertices to part 0.
        let mut seed: Vec<u32> = truth.clone();
        for v in (0..seed.len()).step_by(7) {
            seed[v] = 0;
        }
        let cfg = PartitionConfig::new(4).with_epsilon(0.1);
        let warm = partition_warm(&hg, &cfg, &seed).unwrap();
        assert!(warm.balanced, "part weights: {:?}", warm.part_weights);
        assert_eq!(warm.cost, hg.connectivity_cost(&warm.assignment, 4));
        // Refinement from a near-truth seed must not be worse than the
        // perturbed seed it started from.
        assert!(warm.cost <= hg.connectivity_cost(&seed, 4));
    }

    #[test]
    fn warm_start_rejects_bad_seeds() {
        let (hg, truth) = planted(2, 8, 1);
        let cfg = PartitionConfig::new(2);
        // Wrong length.
        assert!(partition_warm(&hg, &cfg, &truth[1..]).is_err());
        // Out-of-range part.
        let mut bad = truth.clone();
        bad[0] = 9;
        assert!(partition_warm(&hg, &cfg, &bad).is_err());
        // part_targets length mismatch.
        let cfg_bad = PartitionConfig::new(2).with_part_targets(vec![[1, 1]; 3]);
        assert!(partition_warm(&hg, &cfg_bad, &truth).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Partition invariants on random hypergraphs: every vertex assigned
        /// to a valid part, cost matches recomputation, part weights match.
        #[test]
        fn partition_invariants(
            n in 2usize..120,
            ne in 1usize..200,
            k in 2u32..6,
            seed in 0u64..1000,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut b = HypergraphBuilder::new(n);
            for v in 0..n {
                b.set_vertex_weight(v, [rng.gen_range(0..10), rng.gen_range(0..10)]);
            }
            for _ in 0..ne {
                let deg = rng.gen_range(2..6usize.min(n + 1).max(3));
                let pins: Vec<u32> = (0..deg).map(|_| rng.gen_range(0..n) as u32).collect();
                b.add_edge(rng.gen_range(1..20), &pins);
            }
            let hg = b.build().unwrap();
            let cfg = PartitionConfig::new(k).with_seed(seed);
            let part = partition(&hg, &cfg).unwrap();
            prop_assert_eq!(part.assignment.len(), n);
            prop_assert!(part.assignment.iter().all(|&p| p < k));
            prop_assert_eq!(part.cost, hg.connectivity_cost(&part.assignment, k));
            let pw = hg.part_weights(&part.assignment, k);
            prop_assert_eq!(pw, part.part_weights.clone());
            // Weight conservation.
            let sum: [u64; 2] = part.part_weights.iter().fold([0, 0], |a, w| {
                [a[0] + w[0], a[1] + w[1]]
            });
            prop_assert_eq!(sum, hg.total_weight());
        }
    }
}
