//! Coarsening: heavy-edge matching and hypergraph contraction.
//!
//! Each level matches pairs of vertices that share heavy edges (rating
//! `sum_e w_e / (|e| - 1)`, the classic heavy-edge rating for hypergraphs)
//! and contracts matched pairs into single coarse vertices. Contraction
//! dedups pins, drops edges that collapse below two pins, and merges
//! parallel edges (identical pin sets) by summing their weights.
//!
//! Matching is split into a **parallel proposal** phase — every unmatched
//! vertex independently rates its neighbors against an immutable snapshot
//! of the current matching — and a **serial resolution** phase that greedily
//! commits proposals in a seed-shuffled order. Proposals are pure functions
//! of the snapshot with a deterministic tie-break, and the single RNG draw
//! (the shuffle) happens on the serial path, so the result is bitwise
//! identical at every `RAYON_NUM_THREADS`.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rayon::prelude::*;

use crate::graph::{Hypergraph, VertexWeight};

/// One coarsening level: the coarse hypergraph plus the mapping from fine
/// vertices to coarse vertices.
#[derive(Debug)]
pub struct Level {
    /// The coarse hypergraph.
    pub coarse: Hypergraph,
    /// `fine_to_coarse[v]` is the coarse vertex containing fine vertex `v`.
    pub fine_to_coarse: Vec<u32>,
}

/// Skip edges larger than this during match rating: huge edges carry almost
/// no locality signal (`w/(|e|-1)` is tiny) and dominate the runtime.
const MAX_RATED_EDGE: usize = 512;

/// Upper bound on proposal/resolution rounds per matching level. One round
/// leaves vertices unmatched when their proposal was claimed first; later
/// rounds re-propose against the updated matching and recover them. The
/// rounds shrink geometrically, so the bound is rarely reached.
const MAX_MATCH_ROUNDS: usize = 8;

/// Scratch for rating accumulation: a dense per-candidate accumulator reset
/// between vertices via a touch list (cheaper than sorting contribution
/// lists — a vertex can receive hundreds of contributions through large
/// edges).
struct RatingScratch {
    rating: Vec<f64>,
    touched: Vec<u32>,
}

impl RatingScratch {
    fn new(n: usize) -> Self {
        RatingScratch {
            rating: vec![0.0; n],
            touched: Vec::new(),
        }
    }
}

/// Best match candidate for `v` against the `mate` snapshot: the unmatched,
/// weight-compatible neighbor with the highest accumulated heavy-edge
/// rating, ties broken toward the smaller vertex id. Pure in `hg`/`mate`/
/// `parts` (the scratch is reset on entry), so proposals can be computed in
/// parallel without affecting the result.
fn propose(
    hg: &Hypergraph,
    v: u32,
    max_cluster: VertexWeight,
    mate: &[u32],
    parts: Option<&[u32]>,
    scratch: &mut RatingScratch,
) -> Option<u32> {
    let vw = hg.vertex_weight(v);
    scratch.touched.clear();
    for &e in hg.incident_edges(v) {
        let pins = hg.pins(e);
        if pins.len() < 2 || pins.len() > MAX_RATED_EDGE {
            continue;
        }
        let score = hg.edge_weight(e) as f64 / (pins.len() - 1) as f64;
        for &u in pins {
            if u == v || mate[u as usize] != u32::MAX {
                continue;
            }
            if let Some(parts) = parts {
                if parts[u as usize] != parts[v as usize] {
                    continue;
                }
            }
            if scratch.rating[u as usize] == 0.0 {
                scratch.touched.push(u);
            }
            scratch.rating[u as usize] += score;
        }
    }
    let mut best: Option<(u32, f64)> = None;
    for &u in &scratch.touched {
        let r = scratch.rating[u as usize];
        scratch.rating[u as usize] = 0.0;
        let uw = hg.vertex_weight(u);
        let fits = vw[0] + uw[0] <= max_cluster[0] && vw[1] + uw[1] <= max_cluster[1];
        if !fits {
            continue;
        }
        let better = match best {
            None => true,
            Some((bu, br)) => r > br || (r == br && u < bu),
        };
        if better {
            best = Some((u, r));
        }
    }
    best.map(|(u, _)| u)
}

/// Computes one level of heavy-edge matching.
///
/// `max_cluster` caps the weight of a merged pair per dimension so the
/// coarsest graph stays partitionable. When `parts` is given, only vertices
/// in the same part may match (V-cycle coarsening that respects an existing
/// partition). Returns `None` when matching cannot reduce the vertex count
/// by at least ~5% (coarsening has converged).
pub fn match_level(
    hg: &Hypergraph,
    max_cluster: VertexWeight,
    rng: &mut SmallRng,
    parts: Option<&[u32]>,
) -> Option<Level> {
    let n = hg.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut mate = vec![u32::MAX; n];
    // Process the shuffled order in fixed-size waves: proposals within a
    // wave are computed in parallel against the mate state left by earlier
    // waves, then committed serially in wave order. Wave boundaries depend
    // only on `n`, never on the thread count, so the result is identical at
    // any `RAYON_NUM_THREADS`; seeing earlier waves' matches lets later
    // waves skip matched vertices instead of re-rating the whole graph.
    let wave_size = n.div_ceil(8).max(256);
    let mut queue: Vec<u32> = order;
    for _ in 0..MAX_MATCH_ROUNDS {
        // Vertices whose proposal lost the race this round; they re-propose
        // against the updated matching next round. Vertices that proposed
        // nothing are dropped for good (the candidate pool only shrinks).
        let mut retry: Vec<u32> = Vec::new();
        let mut committed = 0usize;
        let nt = rayon::current_num_threads().max(1);
        for wave in queue.chunks(wave_size) {
            let chunk = wave.len().div_ceil(4 * nt).max(64);
            let proposals: Vec<Vec<(u32, u32)>> = wave
                .par_chunks(chunk)
                .map(|vs| {
                    let mut scratch = RatingScratch::new(n);
                    vs.iter()
                        .filter_map(|&v| {
                            if mate[v as usize] != u32::MAX {
                                return None;
                            }
                            propose(hg, v, max_cluster, &mate, parts, &mut scratch).map(|u| (v, u))
                        })
                        .collect()
                })
                .collect();
            for (v, u) in proposals.into_iter().flatten() {
                if mate[v as usize] != u32::MAX {
                    continue;
                }
                if mate[u as usize] != u32::MAX {
                    retry.push(v);
                    continue;
                }
                mate[v as usize] = u;
                mate[u as usize] = v;
                committed += 1;
            }
        }
        if committed == 0 || retry.is_empty() {
            break;
        }
        queue = retry;
    }

    // Assign coarse ids.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != u32::MAX {
            continue;
        }
        fine_to_coarse[v as usize] = nc;
        let m = mate[v as usize];
        if m != u32::MAX {
            fine_to_coarse[m as usize] = nc;
        }
        nc += 1;
    }
    if (nc as usize) as f64 > 0.95 * n as f64 {
        return None;
    }
    Some(Level {
        coarse: contract(hg, &fine_to_coarse, nc),
        fine_to_coarse,
    })
}

/// Contracts `hg` according to `fine_to_coarse` (values in `0..nc`).
///
/// Edge merging works on flat pin spans (stage all mapped/deduped pin lists
/// into one array, sort edge indices lexicographically by span, fold equal
/// neighbors) instead of a `HashMap<Vec<u32>, u64>`, so a contraction does a
/// constant number of allocations rather than one per surviving edge. The
/// resulting edge order — pin lists ascending — is identical to the old
/// sorted-map order, keeping coarsening bitwise deterministic.
pub fn contract(hg: &Hypergraph, fine_to_coarse: &[u32], nc: u32) -> Hypergraph {
    let mut vwts = vec![[0u64; 2]; nc as usize];
    for (v, &c) in fine_to_coarse.iter().enumerate().take(hg.num_vertices()) {
        let w = hg.vertex_weight(v as u32);
        vwts[c as usize][0] += w[0];
        vwts[c as usize][1] += w[1];
    }
    // Stage: map pins, dedupe in place, drop degenerate edges.
    let mut pins_flat: Vec<u32> = Vec::with_capacity(hg.num_pins());
    let mut off: Vec<u32> = Vec::with_capacity(hg.num_edges() + 1);
    let mut wts: Vec<u64> = Vec::with_capacity(hg.num_edges());
    off.push(0);
    for e in 0..hg.num_edges() as u32 {
        let start = pins_flat.len();
        pins_flat.extend(hg.pins(e).iter().map(|&p| fine_to_coarse[p as usize]));
        pins_flat[start..].sort_unstable();
        let mut keep = start;
        for i in start..pins_flat.len() {
            let v = pins_flat[i];
            if keep == start || pins_flat[keep - 1] != v {
                pins_flat[keep] = v;
                keep += 1;
            }
        }
        if keep - start < 2 {
            pins_flat.truncate(start);
            continue;
        }
        pins_flat.truncate(keep);
        wts.push(hg.edge_weight(e));
        off.push(pins_flat.len() as u32);
    }
    // Merge parallel edges: sort by span content, fold equal neighbors.
    let span = |i: usize| &pins_flat[off[i] as usize..off[i + 1] as usize];
    let mut order: Vec<u32> = (0..wts.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| span(a as usize).cmp(span(b as usize)));
    let mut ewts: Vec<u64> = Vec::with_capacity(wts.len());
    let mut epin_off: Vec<u32> = Vec::with_capacity(wts.len() + 1);
    let mut epins: Vec<u32> = Vec::with_capacity(pins_flat.len());
    epin_off.push(0);
    for &i in &order {
        let s = span(i as usize);
        let same_as_last = !ewts.is_empty() && {
            let lo = epin_off[epin_off.len() - 2] as usize;
            &epins[lo..] == s
        };
        if same_as_last {
            *ewts.last_mut().expect("nonempty") += wts[i as usize];
        } else {
            epins.extend_from_slice(s);
            epin_off.push(epins.len() as u32);
            ewts.push(wts[i as usize]);
        }
    }
    Hypergraph::from_csr(vwts, ewts, epin_off, epins, Vec::new(), Vec::new())
}

/// Coarsens until `target` vertices or convergence; returns the levels from
/// finest to coarsest.
pub fn coarsen_to(
    hg: &Hypergraph,
    target: usize,
    max_cluster: VertexWeight,
    rng: &mut SmallRng,
) -> Vec<Level> {
    coarsen_to_respecting(hg, target, max_cluster, rng, None)
}

/// Like [`coarsen_to`] but optionally restricting matches to vertices in
/// the same part of `parts` (the V-cycle variant; the returned levels then
/// preserve the partition under projection).
pub fn coarsen_to_respecting(
    hg: &Hypergraph,
    target: usize,
    max_cluster: VertexWeight,
    rng: &mut SmallRng,
    parts: Option<&[u32]>,
) -> Vec<Level> {
    let mut levels: Vec<Level> = Vec::new();
    let mut steps = 0;
    // Project `parts` down level by level as we coarsen.
    let mut cur_parts: Option<Vec<u32>> = parts.map(<[u32]>::to_vec);
    loop {
        let current = levels.last().map_or(hg, |l| &l.coarse);
        if current.num_vertices() <= target || steps > 64 {
            break;
        }
        match match_level(current, max_cluster, rng, cur_parts.as_deref()) {
            Some(level) => {
                if let Some(p) = &cur_parts {
                    let mut coarse_parts = vec![0u32; level.coarse.num_vertices()];
                    for (v, &c) in level.fine_to_coarse.iter().enumerate() {
                        coarse_parts[c as usize] = p[v];
                    }
                    cur_parts = Some(coarse_parts);
                }
                levels.push(level);
            }
            None => break,
        }
        steps += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HypergraphBuilder;
    use rand::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n {
            b.set_vertex_weight(v, [1, 1]);
        }
        for v in 0..n - 1 {
            b.add_edge(1, &[v as u32, v as u32 + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn matching_halves_a_chain() {
        let hg = chain(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let level = match_level(&hg, [1000, 1000], &mut rng, None).unwrap();
        let nc = level.coarse.num_vertices();
        assert!((32..61).contains(&nc), "nc = {nc}");
        // Weights conserved.
        assert_eq!(level.coarse.total_weight(), hg.total_weight());
    }

    #[test]
    fn contraction_merges_parallel_edges() {
        // Two vertices joined by two edges; contract the other pair.
        let mut b = HypergraphBuilder::new(4);
        for v in 0..4 {
            b.set_vertex_weight(v, [1, 0]);
        }
        b.add_edge(3, &[0, 1]);
        b.add_edge(5, &[0, 2, 3]); // after contracting 2,3 becomes {0, C}
        b.add_edge(7, &[0, 2]); // also becomes {0, C}
        let hg = b.build().unwrap();
        let coarse = contract(&hg, &[0, 1, 2, 2], 3);
        assert_eq!(coarse.num_vertices(), 3);
        // Edge {0,1} kept, the two {0, C} edges merged into one of weight 12.
        assert_eq!(coarse.num_edges(), 2);
        let total_w: u64 = (0..coarse.num_edges() as u32)
            .map(|e| coarse.edge_weight(e))
            .sum();
        assert_eq!(total_w, 15);
        let has_merged = (0..coarse.num_edges() as u32).any(|e| coarse.edge_weight(e) == 12);
        assert!(has_merged);
    }

    #[test]
    fn contraction_drops_collapsed_edges() {
        let hg = chain(3);
        // Contract all three into one vertex: every edge collapses.
        let coarse = contract(&hg, &[0, 0, 0], 1);
        assert_eq!(coarse.num_edges(), 0);
        assert_eq!(coarse.total_weight(), [3, 3]);
    }

    #[test]
    fn cluster_weight_cap_respected() {
        let hg = chain(16);
        let mut rng = SmallRng::seed_from_u64(7);
        let level = match_level(&hg, [1, 1], &mut rng, None);
        // Cap of 1 per dim forbids every merge (each vertex already weighs 1).
        assert!(level.is_none());
    }

    #[test]
    fn coarsen_to_target() {
        let hg = chain(256);
        let mut rng = SmallRng::seed_from_u64(3);
        let levels = coarsen_to(&hg, 16, [64, 64], &mut rng);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().coarse;
        assert!(coarsest.num_vertices() <= 32, "{}", coarsest.num_vertices());
        assert_eq!(coarsest.total_weight(), hg.total_weight());
        // fine_to_coarse maps compose level by level.
        let mut assignment: Vec<u32> = (0..hg.num_vertices() as u32).collect();
        for level in &levels {
            assignment = assignment
                .iter()
                .map(|&v| level.fine_to_coarse[v as usize])
                .collect();
        }
        let max = *assignment.iter().max().unwrap() as usize;
        assert!(max < coarsest.num_vertices());
    }
}
