//! Initial partitioning of the coarsest hypergraph.
//!
//! Runs a small portfolio of greedy strategies and keeps the best result by
//! (balance-feasibility, connectivity cost). Each strategy assigns vertices
//! one at a time to the part that minimizes the *connectivity delta* — the
//! increase of the connectivity−1 metric over already-assigned pins — among
//! parts with room under the balance caps.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Hypergraph, VertexWeight};

/// Balance caps (one cap per weight dimension, optionally per part).
///
/// Most callers use a single uniform cap for every part
/// ([`Caps::uniform`]). Heterogeneous instances — fault-aware placement
/// that down-weights stragglers, residual re-partitioning onto survivors
/// with unequal remaining capacity — give each part its own cap
/// ([`Caps::per_part`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Caps {
    /// Cap applied when no per-part entry exists; always the element-wise
    /// maximum over all per-part caps, so it stays meaningful for
    /// reporting.
    pub uniform: VertexWeight,
    /// Optional per-part caps, indexed by part id (length `k`).
    pub per_part: Option<Vec<VertexWeight>>,
}

impl Caps {
    /// The same cap for every part.
    pub fn uniform(cap: VertexWeight) -> Self {
        Caps {
            uniform: cap,
            per_part: None,
        }
    }

    /// One cap per part (`caps[p]` bounds part `p`).
    pub fn per_part(caps: Vec<VertexWeight>) -> Self {
        let uniform = caps
            .iter()
            .fold([0u64; 2], |m, c| [m[0].max(c[0]), m[1].max(c[1])]);
        Caps {
            uniform,
            per_part: Some(caps),
        }
    }

    /// The cap that applies to part `p`.
    #[inline]
    pub fn at(&self, p: u32) -> VertexWeight {
        match &self.per_part {
            Some(v) => v[p as usize],
            None => self.uniform,
        }
    }
}

impl From<VertexWeight> for Caps {
    fn from(cap: VertexWeight) -> Self {
        Caps::uniform(cap)
    }
}

/// How a strategy orders vertices for greedy assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    /// Heaviest (normalized) vertices first — packs well.
    WeightDescending,
    /// Random order.
    Random,
}

/// Greedily assigns all vertices of `hg` to `k` parts.
///
/// Returns the assignment. Vertices that fit nowhere under `caps` are placed
/// on the least-loaded part (the refinement stage repairs the balance).
fn greedy(hg: &Hypergraph, k: u32, caps: &Caps, order: Order, rng: &mut SmallRng) -> Vec<u32> {
    let n = hg.num_vertices();
    let total = hg.total_weight();
    let norm = |w: VertexWeight| -> f64 {
        let a = if total[0] > 0 {
            w[0] as f64 / total[0] as f64
        } else {
            0.0
        };
        let b = if total[1] > 0 {
            w[1] as f64 / total[1] as f64
        } else {
            0.0
        };
        a + b
    };

    let mut verts: Vec<u32> = (0..n as u32).collect();
    match order {
        Order::WeightDescending => {
            verts.sort_by(|&a, &b| {
                norm(hg.vertex_weight(b))
                    .partial_cmp(&norm(hg.vertex_weight(a)))
                    .unwrap()
            });
        }
        Order::Random => verts.shuffle(rng),
    }

    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![[0u64; 2]; k as usize];
    // lambda[e * k + p]: number of assigned pins of edge e in part p.
    let mut lambda = vec![0u32; hg.num_edges() * k as usize];
    // assigned_pins[e]: number of assigned pins of edge e.
    let mut assigned_pins = vec![0u32; hg.num_edges()];

    for &v in &verts {
        let w = hg.vertex_weight(v);
        // Connectivity delta of putting v into part p, for all p at once.
        let mut delta = vec![0u64; k as usize];
        for &e in hg.incident_edges(v) {
            if assigned_pins[e as usize] == 0 {
                continue;
            }
            let we = hg.edge_weight(e);
            let base = e as usize * k as usize;
            for p in 0..k as usize {
                if lambda[base + p] == 0 {
                    delta[p] += we;
                }
            }
        }
        let mut best: Option<(u32, u64, f64)> = None; // (part, delta, load)
        for p in 0..k {
            let l = loads[p as usize];
            let cap = caps.at(p);
            let fits = l[0] + w[0] <= cap[0] && l[1] + w[1] <= cap[1];
            if !fits {
                continue;
            }
            let d = delta[p as usize];
            let ln = norm(l);
            let better = match best {
                None => true,
                Some((_, bd, bl)) => d < bd || (d == bd && ln < bl),
            };
            if better {
                best = Some((p, d, ln));
            }
        }
        let part = match best {
            Some((p, _, _)) => p,
            None => {
                // Nothing fits: least-loaded part (normalized), repaired later.
                (0..k)
                    .min_by(|&a, &b| {
                        norm(loads[a as usize])
                            .partial_cmp(&norm(loads[b as usize]))
                            .unwrap()
                    })
                    .unwrap()
            }
        };
        assignment[v as usize] = part;
        loads[part as usize][0] += w[0];
        loads[part as usize][1] += w[1];
        for &e in hg.incident_edges(v) {
            let base = e as usize * k as usize;
            lambda[base + part as usize] += 1;
            assigned_pins[e as usize] += 1;
        }
    }
    assignment
}

/// Greedy hypergraph growing (GHG): grows one part at a time from a random
/// seed, always absorbing the unassigned vertex most strongly connected to
/// the growing part, until the part reaches its share of the total weight.
/// Excellent on locally-connected structures (chains, rings, grids) where
/// per-vertex greedy assignment fragments.
fn grow(hg: &Hypergraph, k: u32, caps: &Caps, rng: &mut SmallRng) -> Vec<u32> {
    let n = hg.num_vertices();
    let mut assignment = vec![u32::MAX; n];
    let mut unassigned = n;
    // Connection strength of each unassigned vertex to the current part.
    let mut conn = vec![0.0f64; n];

    for p in 0..k {
        if unassigned == 0 {
            break;
        }
        let remaining_parts = (k - p) as u64;
        // Target: fair share of what's left, never above the cap.
        let mut placed = [0u64; 2];
        let mut left = [0u64; 2];
        for (v, &a) in assignment.iter().enumerate() {
            if a == u32::MAX {
                let w = hg.vertex_weight(v as u32);
                left[0] += w[0];
                left[1] += w[1];
            }
        }
        let cap = caps.at(p);
        let target = [
            (left[0] / remaining_parts).min(cap[0]),
            (left[1] / remaining_parts).min(cap[1]),
        ];
        conn.iter_mut().for_each(|c| *c = 0.0);
        // Random seed vertex.
        let seed = {
            let start = rng.gen_range(0..n);
            (0..n)
                .map(|i| (start + i) % n)
                .find(|&v| assignment[v] == u32::MAX)
                .expect("an unassigned vertex exists")
        };
        let mut frontier: Vec<u32> = vec![seed as u32];
        loop {
            // Absorb the best frontier vertex (or the seed on iteration 0).
            let pick = frontier
                .iter()
                .copied()
                .filter(|&v| assignment[v as usize] == u32::MAX)
                .max_by(|&a, &b| conn[a as usize].partial_cmp(&conn[b as usize]).unwrap());
            let Some(v) = pick else { break };
            let w = hg.vertex_weight(v);
            assignment[v as usize] = p;
            unassigned -= 1;
            placed[0] += w[0];
            placed[1] += w[1];
            // Expand the frontier through v's edges.
            for &e in hg.incident_edges(v) {
                let pins = hg.pins(e);
                let score = hg.edge_weight(e) as f64 / (pins.len().max(2) - 1) as f64;
                for &u in pins {
                    if assignment[u as usize] == u32::MAX {
                        if conn[u as usize] == 0.0 {
                            frontier.push(u);
                        }
                        conn[u as usize] += score;
                    }
                }
            }
            frontier.retain(|&u| assignment[u as usize] == u32::MAX);
            if unassigned == 0 || (placed[0] >= target[0] && placed[1] >= target[1]) {
                break;
            }
            if frontier.is_empty() {
                // Disconnected: jump to another unassigned vertex.
                if let Some(u) = (0..n as u32).find(|&u| assignment[u as usize] == u32::MAX) {
                    frontier.push(u);
                } else {
                    break;
                }
            }
        }
    }
    // Anything left over goes to the least-loaded part.
    let mut loads = vec![[0u64; 2]; k as usize];
    for v in 0..n {
        if assignment[v] != u32::MAX {
            let w = hg.vertex_weight(v as u32);
            loads[assignment[v] as usize][0] += w[0];
            loads[assignment[v] as usize][1] += w[1];
        }
    }
    for (v, a) in assignment.iter_mut().enumerate() {
        if *a == u32::MAX {
            let w = hg.vertex_weight(v as u32);
            let p = (0..k)
                .min_by_key(|&p| loads[p as usize][0] + loads[p as usize][1])
                .unwrap();
            *a = p;
            loads[p as usize][0] += w[0];
            loads[p as usize][1] += w[1];
        }
    }
    assignment
}

/// Whether `assignment` satisfies the balance caps.
pub fn is_balanced(hg: &Hypergraph, assignment: &[u32], k: u32, caps: &Caps) -> bool {
    hg.part_weights(assignment, k)
        .iter()
        .enumerate()
        .all(|(p, w)| {
            let cap = caps.at(p as u32);
            w[0] <= cap[0] && w[1] <= cap[1]
        })
}

/// Runs the portfolio and returns the best assignment found.
pub fn initial_partition(
    hg: &Hypergraph,
    k: u32,
    caps: &Caps,
    tries: u32,
    rng: &mut SmallRng,
) -> Vec<u32> {
    let mut best: Option<(bool, u64, Vec<u32>)> = None;
    for t in 0..tries.max(2) {
        let a = match t {
            0 => greedy(hg, k, caps, Order::WeightDescending, rng),
            t if t % 2 == 1 => grow(hg, k, caps, rng),
            _ => greedy(hg, k, caps, Order::Random, rng),
        };
        let feasible = is_balanced(hg, &a, k, caps);
        let cost = hg.connectivity_cost(&a, k);
        let better = match &best {
            None => true,
            Some((bf, bc, _)) => {
                (feasible, std::cmp::Reverse(cost)) > (*bf, std::cmp::Reverse(*bc))
            }
        };
        if better {
            best = Some((feasible, cost, a));
        }
        // A couple of extra random restarts cannot hurt; stop early if a
        // perfect (zero-cost, feasible) solution appears.
        if let Some((true, 0, _)) = &best {
            break;
        }
        let _ = rng.gen::<u32>();
    }
    best.expect("at least one try").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HypergraphBuilder;
    use rand::SeedableRng;

    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new(8);
        for v in 0..8 {
            b.set_vertex_weight(v, [1, 1]);
        }
        b.add_edge(50, &[0, 1, 2, 3]);
        b.add_edge(50, &[4, 5, 6, 7]);
        b.add_edge(1, &[3, 4]);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_obvious_bisection() {
        let hg = two_cliques();
        let mut rng = SmallRng::seed_from_u64(11);
        let a = initial_partition(&hg, 2, &Caps::uniform([4, 4]), 4, &mut rng);
        assert!(is_balanced(&hg, &a, 2, &Caps::uniform([4, 4])));
        assert_eq!(hg.connectivity_cost(&a, 2), 1);
    }

    #[test]
    fn all_vertices_assigned() {
        let hg = two_cliques();
        let mut rng = SmallRng::seed_from_u64(2);
        let a = initial_partition(&hg, 3, &Caps::uniform([3, 3]), 3, &mut rng);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&p| p < 3));
    }

    #[test]
    fn overflow_falls_back_to_least_loaded() {
        // Caps too tight for everything: greedy must still assign all.
        let hg = two_cliques();
        let mut rng = SmallRng::seed_from_u64(5);
        let a = initial_partition(&hg, 2, &Caps::uniform([2, 2]), 2, &mut rng);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&p| p < 2));
    }

    #[test]
    fn respects_two_dimensional_caps() {
        // Vertices heavy in different dims; caps force a split by dim.
        let mut b = HypergraphBuilder::new(4);
        b.set_vertex_weight(0, [10, 0]);
        b.set_vertex_weight(1, [10, 0]);
        b.set_vertex_weight(2, [0, 10]);
        b.set_vertex_weight(3, [0, 10]);
        b.add_edge(1, &[0, 1, 2, 3]);
        let hg = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let a = initial_partition(&hg, 2, &Caps::uniform([10, 10]), 4, &mut rng);
        assert!(is_balanced(&hg, &a, 2, &Caps::uniform([10, 10])));
        // Each part must hold exactly one compute-heavy and one data-heavy.
        assert_ne!(a[0], a[1]);
        assert_ne!(a[2], a[3]);
    }

    #[test]
    fn per_part_caps_skew_the_split() {
        // Part 0 may hold at most 2 units, part 1 the rest: a 2/6 split of
        // the two cliques instead of the balanced 4/4.
        let hg = two_cliques();
        let caps = Caps::per_part(vec![[2, 2], [6, 6]]);
        assert_eq!(caps.uniform, [6, 6], "uniform tracks the max");
        assert_eq!(caps.at(0), [2, 2]);
        assert_eq!(caps.at(1), [6, 6]);
        let mut rng = SmallRng::seed_from_u64(3);
        let a = initial_partition(&hg, 2, &caps, 4, &mut rng);
        assert!(is_balanced(&hg, &a, 2, &caps), "assignment: {a:?}");
        let part0 = a.iter().filter(|&&p| p == 0).count();
        assert!(part0 <= 2, "part 0 over its cap: {a:?}");
    }
}
