//! The hypergraph data structure: CSR pin lists in both directions.

use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

/// A 2-dimensional vertex weight: `[computation, data]` (FLOPs, bytes in the
/// DCP use case). Either dimension may be zero.
pub type VertexWeight = [u64; 2];

/// Reusable scratch buffers for repeated hypergraph builds.
///
/// The planner rebuilds a similarly-sized hypergraph every batch; routing
/// each build through one long-lived arena turns the per-batch allocation
/// traffic (vertex weights, edge weights, both CSR directions) into plain
/// buffer reuse. [`HgArena::builder`] hands the buffers to a
/// [`HypergraphBuilder`]; [`HgArena::recycle`] takes them back from a
/// finished [`Hypergraph`] once the caller is done with it.
#[derive(Debug, Default)]
pub struct HgArena {
    vwts: Vec<VertexWeight>,
    ewts: Vec<u64>,
    epin_off: Vec<u32>,
    epins: Vec<u32>,
    vedge_off: Vec<u32>,
    vedges: Vec<u32>,
}

impl HgArena {
    /// A builder for a hypergraph with `n` vertices (weights default to
    /// `[0, 0]`), reusing this arena's buffer capacity. The arena is left
    /// empty until the resulting hypergraph is [`recycled`](Self::recycle).
    pub fn builder(&mut self, n: usize) -> HypergraphBuilder {
        let mut b = HypergraphBuilder {
            vwts: std::mem::take(&mut self.vwts),
            ewts: std::mem::take(&mut self.ewts),
            epin_off: std::mem::take(&mut self.epin_off),
            epins: std::mem::take(&mut self.epins),
            vedge_off: std::mem::take(&mut self.vedge_off),
            vedges: std::mem::take(&mut self.vedges),
        };
        b.vwts.clear();
        b.vwts.resize(n, [0, 0]);
        b.ewts.clear();
        b.epins.clear();
        b.epin_off.clear();
        b.epin_off.push(0);
        b.vedge_off.clear();
        b.vedges.clear();
        b
    }

    /// Reclaims the buffers of a hypergraph this arena built (or any other —
    /// buffers are buffers) for the next [`builder`](Self::builder) call.
    pub fn recycle(&mut self, hg: Hypergraph) {
        self.vwts = hg.vwts;
        self.ewts = hg.ewts;
        self.epin_off = hg.epin_off;
        self.epins = hg.epins;
        self.vedge_off = hg.vedge_off;
        self.vedges = hg.vedges;
    }
}

/// Incrementally builds a [`Hypergraph`].
///
/// Storage is struct-of-arrays CSR from the start: `add_edge` appends pins
/// to one flat array and sorts/dedups the tail slice in place, so a build
/// performs no per-edge allocation. Pair with [`HgArena`] to also reuse the
/// backing buffers across builds.
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    vwts: Vec<VertexWeight>,
    ewts: Vec<u64>,
    epin_off: Vec<u32>,
    epins: Vec<u32>,
    vedge_off: Vec<u32>,
    vedges: Vec<u32>,
}

impl HypergraphBuilder {
    /// A builder for a hypergraph with `n` vertices (weights default to
    /// `[0, 0]`).
    pub fn new(n: usize) -> Self {
        HgArena::default().builder(n)
    }

    /// Sets the weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_vertex_weight(&mut self, v: usize, w: VertexWeight) {
        self.vwts[v] = w;
    }

    /// Adds a hyperedge with weight `w` over `pins`. Duplicate pins are
    /// deduplicated; edges with fewer than two distinct pins are kept (they
    /// never contribute to the objective but preserve indexing expectations
    /// of callers that track edges).
    pub fn add_edge(&mut self, w: u64, pins: &[u32]) {
        let start = self.epins.len();
        self.epins.extend_from_slice(pins);
        self.epins[start..].sort_unstable();
        // In-place dedup of the tail slice.
        let mut keep = start;
        for i in start..self.epins.len() {
            let v = self.epins[i];
            if keep == start || self.epins[keep - 1] != v {
                self.epins[keep] = v;
                keep += 1;
            }
        }
        self.epins.truncate(keep);
        self.ewts.push(w);
        self.epin_off.push(self.epins.len() as u32);
    }

    /// Finalizes the builder into a [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns an error if any pin references a vertex out of range.
    pub fn build(self) -> DcpResult<Hypergraph> {
        let n = self.vwts.len();
        if let Some(&p) = self.epins.iter().find(|&&p| p as usize >= n) {
            return Err(DcpError::invalid_argument(format!(
                "edge pin {p} out of range for {n} vertices"
            )));
        }
        Ok(Hypergraph::from_csr(
            self.vwts,
            self.ewts,
            self.epin_off,
            self.epins,
            self.vedge_off,
            self.vedges,
        ))
    }
}

/// An immutable hypergraph with vertex weights and weighted hyperedges,
/// stored as CSR pin lists in both directions (edge -> pins, vertex ->
/// incident edges).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hypergraph {
    vwts: Vec<VertexWeight>,
    ewts: Vec<u64>,
    epin_off: Vec<u32>,
    epins: Vec<u32>,
    vedge_off: Vec<u32>,
    vedges: Vec<u32>,
}

impl Hypergraph {
    /// Builds from vertex weights, edge weights and per-edge pin lists
    /// (assumed deduplicated and in range).
    pub(crate) fn from_parts(
        vwts: Vec<VertexWeight>,
        ewts: Vec<u64>,
        pin_lists: Vec<Vec<u32>>,
    ) -> Self {
        let mut epin_off = Vec::with_capacity(pin_lists.len() + 1);
        let mut epins = Vec::new();
        epin_off.push(0u32);
        for pins in &pin_lists {
            epins.extend_from_slice(pins);
            epin_off.push(epins.len() as u32);
        }
        Self::from_csr(vwts, ewts, epin_off, epins, Vec::new(), Vec::new())
    }

    /// Builds from the forward (edge → pin) CSR arrays, deriving the reverse
    /// (vertex → incident edge) CSR by counting sort into the supplied
    /// scratch buffers (their capacity is reused, contents ignored). Pins
    /// must be deduplicated per edge and in range.
    pub(crate) fn from_csr(
        vwts: Vec<VertexWeight>,
        ewts: Vec<u64>,
        epin_off: Vec<u32>,
        epins: Vec<u32>,
        mut vedge_off: Vec<u32>,
        mut vedges: Vec<u32>,
    ) -> Self {
        let n = vwts.len();
        vedge_off.clear();
        vedge_off.resize(n + 1, 0);
        for &p in &epins {
            vedge_off[p as usize + 1] += 1;
        }
        for v in 0..n {
            vedge_off[v + 1] += vedge_off[v];
        }
        vedges.clear();
        vedges.resize(epins.len(), 0);
        // Place edges, advancing each vertex's offset as its cursor, then
        // shift the offsets back down one slot.
        for e in 0..ewts.len() {
            let lo = epin_off[e] as usize;
            let hi = epin_off[e + 1] as usize;
            for &p in &epins[lo..hi] {
                vedges[vedge_off[p as usize] as usize] = e as u32;
                vedge_off[p as usize] += 1;
            }
        }
        for v in (1..=n).rev() {
            vedge_off[v] = vedge_off[v - 1];
        }
        if n > 0 {
            vedge_off[0] = 0;
        }
        Hypergraph {
            vwts,
            ewts,
            epin_off,
            epins,
            vedge_off,
            vedges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwts.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.ewts.len()
    }

    /// Total number of pins (sum of edge degrees).
    pub fn num_pins(&self) -> usize {
        self.epins.len()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> VertexWeight {
        self.vwts[v as usize]
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn edge_weight(&self, e: u32) -> u64 {
        self.ewts[e as usize]
    }

    /// The pins (vertices) of edge `e`.
    #[inline]
    pub fn pins(&self, e: u32) -> &[u32] {
        let lo = self.epin_off[e as usize] as usize;
        let hi = self.epin_off[e as usize + 1] as usize;
        &self.epins[lo..hi]
    }

    /// The edges incident to vertex `v`.
    #[inline]
    pub fn incident_edges(&self, v: u32) -> &[u32] {
        let lo = self.vedge_off[v as usize] as usize;
        let hi = self.vedge_off[v as usize + 1] as usize;
        &self.vedges[lo..hi]
    }

    /// Sum of all vertex weights.
    pub fn total_weight(&self) -> VertexWeight {
        let mut t = [0u64; 2];
        for w in &self.vwts {
            t[0] += w[0];
            t[1] += w[1];
        }
        t
    }

    /// The maximum vertex weight, per dimension.
    pub fn max_vertex_weight(&self) -> VertexWeight {
        let mut m = [0u64; 2];
        for w in &self.vwts {
            m[0] = m[0].max(w[0]);
            m[1] = m[1].max(w[1]);
        }
        m
    }

    /// The connectivity-minus-one cost of `assignment` (values in `0..k`):
    /// `sum_e w_e * (lambda_e - 1)` where `lambda_e` is the number of
    /// distinct parts edge `e` spans.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vertices()`.
    pub fn connectivity_cost(&self, assignment: &[u32], k: u32) -> u64 {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut seen = vec![u32::MAX; k as usize];
        let mut cost = 0u64;
        for e in 0..self.num_edges() as u32 {
            let mut lambda = 0u64;
            for &p in self.pins(e) {
                let part = assignment[p as usize] as usize;
                if seen[part] != e {
                    seen[part] = e;
                    lambda += 1;
                }
            }
            if lambda > 1 {
                cost += self.edge_weight(e) * (lambda - 1);
            }
        }
        cost
    }

    /// Per-part total vertex weight under `assignment`.
    pub fn part_weights(&self, assignment: &[u32], k: u32) -> Vec<VertexWeight> {
        let mut pw = vec![[0u64; 2]; k as usize];
        for (v, &p) in assignment.iter().enumerate() {
            let w = self.vwts[v];
            pw[p as usize][0] += w[0];
            pw[p as usize][1] += w[1];
        }
        pw
    }

    /// The sub-hypergraph induced by `vertices` (given as a sorted, deduped
    /// list of vertex ids). Edges are restricted to pins inside the subset;
    /// restricted edges with fewer than two pins are dropped (they cannot
    /// contribute to connectivity within the subset). Returns the subgraph
    /// and the mapping from subgraph vertex index to original vertex id.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Hypergraph, Vec<u32>) {
        let mut index = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            index[v as usize] = i as u32;
        }
        let vwts: Vec<VertexWeight> = vertices.iter().map(|&v| self.vwts[v as usize]).collect();
        let mut ewts = Vec::new();
        let mut pin_lists = Vec::new();
        for e in 0..self.num_edges() as u32 {
            let pins: Vec<u32> = self
                .pins(e)
                .iter()
                .filter_map(|&p| {
                    let i = index[p as usize];
                    (i != u32::MAX).then_some(i)
                })
                .collect();
            if pins.len() >= 2 {
                ewts.push(self.edge_weight(e));
                pin_lists.push(pins);
            }
        }
        (
            Hypergraph::from_parts(vwts, ewts, pin_lists),
            vertices.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.set_vertex_weight(0, [10, 0]);
        b.set_vertex_weight(1, [0, 5]);
        b.set_vertex_weight(2, [3, 3]);
        b.set_vertex_weight(3, [1, 1]);
        b.add_edge(7, &[0, 1, 2]);
        b.add_edge(2, &[2, 3]);
        b.add_edge(9, &[0, 3]);
        b.build().unwrap()
    }

    #[test]
    fn csr_structure() {
        let hg = sample();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_edges(), 3);
        assert_eq!(hg.num_pins(), 7);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.incident_edges(2), &[0, 1]);
        assert_eq!(hg.incident_edges(0), &[0, 2]);
        assert_eq!(hg.total_weight(), [14, 9]);
        assert_eq!(hg.max_vertex_weight(), [10, 5]);
    }

    #[test]
    fn builder_dedups_pins_and_validates() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge(1, &[0, 0, 1]);
        let hg = b.build().unwrap();
        assert_eq!(hg.pins(0), &[0, 1]);

        let mut b = HypergraphBuilder::new(2);
        b.add_edge(1, &[0, 5]);
        assert!(b.build().is_err());
    }

    #[test]
    fn connectivity_cost_counts_spans() {
        let hg = sample();
        // Everything in one part: zero cost.
        assert_eq!(hg.connectivity_cost(&[0, 0, 0, 0], 2), 0);
        // Split {0,1} | {2,3}: edge0 spans 2 parts (+7), edge1 inside (+0),
        // edge2 spans (+9).
        assert_eq!(hg.connectivity_cost(&[0, 0, 1, 1], 2), 16);
        // Three parts: edge0 spans {0,1,2} -> lambda 3 -> 2*7; edge1 spans
        // {2,0} -> +2; edge2 {0,0} is internal.
        assert_eq!(hg.connectivity_cost(&[0, 1, 2, 0], 3), 14 + 2);
    }

    #[test]
    fn part_weights_accumulate_both_dims() {
        let hg = sample();
        let pw = hg.part_weights(&[0, 1, 0, 1], 2);
        assert_eq!(pw[0], [13, 3]);
        assert_eq!(pw[1], [1, 6]);
    }

    #[test]
    fn induced_subgraph_restricts_edges() {
        let hg = sample();
        let (sub, map) = hg.induced_subgraph(&[0, 2, 3]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edge0 restricted to {0,2} (2 pins, kept), edge1 {2,3} kept, edge2
        // {0,3} kept.
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.vertex_weight(1), [3, 3]);
        // A subset killing all edges.
        let (sub, _) = hg.induced_subgraph(&[1]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn arena_reuse_builds_identical_graphs() {
        let mut arena = HgArena::default();
        let build = |arena: &mut HgArena| {
            let mut b = arena.builder(4);
            b.set_vertex_weight(0, [10, 0]);
            b.set_vertex_weight(2, [3, 3]);
            b.add_edge(7, &[2, 0, 1, 2]);
            b.add_edge(2, &[3, 2]);
            b.build().unwrap()
        };
        let first = build(&mut arena);
        let reference = sample();
        assert_eq!(first.pins(0), &[0, 1, 2]);
        assert_eq!(first.pins(1), &[2, 3]);
        assert_eq!(first.incident_edges(2), &[0, 1]);
        let _ = reference;
        arena.recycle(first);
        // Second build through the recycled buffers must be identical.
        let second = build(&mut arena);
        assert_eq!(second.pins(0), &[0, 1, 2]);
        assert_eq!(second.pins(1), &[2, 3]);
        assert_eq!(second.vertex_weight(0), [10, 0]);
        assert_eq!(second.num_pins(), 5);
        // Edge {0,1,2} spans both parts (+7); edge {2,3} stays internal.
        assert_eq!(second.connectivity_cost(&[0, 0, 1, 1], 2), 7);
    }

    #[test]
    fn arena_builder_validates_pins_like_fresh_builder() {
        let mut arena = HgArena::default();
        let mut b = arena.builder(2);
        b.add_edge(1, &[0, 5]);
        assert!(b.build().is_err());
    }

    #[test]
    fn single_pin_edges_never_cost() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge(100, &[0]);
        b.add_edge(1, &[0, 1]);
        let hg = b.build().unwrap();
        assert_eq!(hg.connectivity_cost(&[0, 1], 2), 1);
    }
}
