//! The hypergraph data structure: CSR pin lists in both directions.

use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

/// A 2-dimensional vertex weight: `[computation, data]` (FLOPs, bytes in the
/// DCP use case). Either dimension may be zero.
pub type VertexWeight = [u64; 2];

/// Incrementally builds a [`Hypergraph`].
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    vwts: Vec<VertexWeight>,
    edges: Vec<(u64, Vec<u32>)>,
}

impl HypergraphBuilder {
    /// A builder for a hypergraph with `n` vertices (weights default to
    /// `[0, 0]`).
    pub fn new(n: usize) -> Self {
        HypergraphBuilder {
            vwts: vec![[0, 0]; n],
            edges: Vec::new(),
        }
    }

    /// Sets the weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_vertex_weight(&mut self, v: usize, w: VertexWeight) {
        self.vwts[v] = w;
    }

    /// Adds a hyperedge with weight `w` over `pins`. Duplicate pins are
    /// deduplicated; edges with fewer than two distinct pins are kept (they
    /// never contribute to the objective but preserve indexing expectations
    /// of callers that track edges).
    pub fn add_edge(&mut self, w: u64, pins: &[u32]) {
        let mut p: Vec<u32> = pins.to_vec();
        p.sort_unstable();
        p.dedup();
        self.edges.push((w, p));
    }

    /// Finalizes the builder into a [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns an error if any pin references a vertex out of range.
    pub fn build(self) -> DcpResult<Hypergraph> {
        let n = self.vwts.len();
        for (_, pins) in &self.edges {
            if let Some(&p) = pins.iter().find(|&&p| p as usize >= n) {
                return Err(DcpError::invalid_argument(format!(
                    "edge pin {p} out of range for {n} vertices"
                )));
            }
        }
        Ok(Hypergraph::from_parts(
            self.vwts,
            self.edges.iter().map(|(w, _)| *w).collect(),
            self.edges.into_iter().map(|(_, p)| p).collect(),
        ))
    }
}

/// An immutable hypergraph with vertex weights and weighted hyperedges,
/// stored as CSR pin lists in both directions (edge -> pins, vertex ->
/// incident edges).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hypergraph {
    vwts: Vec<VertexWeight>,
    ewts: Vec<u64>,
    epin_off: Vec<u32>,
    epins: Vec<u32>,
    vedge_off: Vec<u32>,
    vedges: Vec<u32>,
}

impl Hypergraph {
    /// Builds from vertex weights, edge weights and per-edge pin lists
    /// (assumed deduplicated and in range).
    pub(crate) fn from_parts(
        vwts: Vec<VertexWeight>,
        ewts: Vec<u64>,
        pin_lists: Vec<Vec<u32>>,
    ) -> Self {
        let n = vwts.len();
        let mut epin_off = Vec::with_capacity(pin_lists.len() + 1);
        let mut epins = Vec::new();
        epin_off.push(0u32);
        for pins in &pin_lists {
            epins.extend_from_slice(pins);
            epin_off.push(epins.len() as u32);
        }
        // Vertex -> incident edges CSR (counting sort).
        let mut deg = vec![0u32; n];
        for pins in &pin_lists {
            for &p in pins {
                deg[p as usize] += 1;
            }
        }
        let mut vedge_off = Vec::with_capacity(n + 1);
        vedge_off.push(0u32);
        for d in &deg {
            vedge_off.push(vedge_off.last().unwrap() + d);
        }
        let mut cursor = vedge_off[..n].to_vec();
        let mut vedges = vec![0u32; epins.len()];
        for (e, pins) in pin_lists.iter().enumerate() {
            for &p in pins {
                vedges[cursor[p as usize] as usize] = e as u32;
                cursor[p as usize] += 1;
            }
        }
        Hypergraph {
            vwts,
            ewts,
            epin_off,
            epins,
            vedge_off,
            vedges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwts.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.ewts.len()
    }

    /// Total number of pins (sum of edge degrees).
    pub fn num_pins(&self) -> usize {
        self.epins.len()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> VertexWeight {
        self.vwts[v as usize]
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn edge_weight(&self, e: u32) -> u64 {
        self.ewts[e as usize]
    }

    /// The pins (vertices) of edge `e`.
    #[inline]
    pub fn pins(&self, e: u32) -> &[u32] {
        let lo = self.epin_off[e as usize] as usize;
        let hi = self.epin_off[e as usize + 1] as usize;
        &self.epins[lo..hi]
    }

    /// The edges incident to vertex `v`.
    #[inline]
    pub fn incident_edges(&self, v: u32) -> &[u32] {
        let lo = self.vedge_off[v as usize] as usize;
        let hi = self.vedge_off[v as usize + 1] as usize;
        &self.vedges[lo..hi]
    }

    /// Sum of all vertex weights.
    pub fn total_weight(&self) -> VertexWeight {
        let mut t = [0u64; 2];
        for w in &self.vwts {
            t[0] += w[0];
            t[1] += w[1];
        }
        t
    }

    /// The maximum vertex weight, per dimension.
    pub fn max_vertex_weight(&self) -> VertexWeight {
        let mut m = [0u64; 2];
        for w in &self.vwts {
            m[0] = m[0].max(w[0]);
            m[1] = m[1].max(w[1]);
        }
        m
    }

    /// The connectivity-minus-one cost of `assignment` (values in `0..k`):
    /// `sum_e w_e * (lambda_e - 1)` where `lambda_e` is the number of
    /// distinct parts edge `e` spans.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vertices()`.
    pub fn connectivity_cost(&self, assignment: &[u32], k: u32) -> u64 {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut seen = vec![u32::MAX; k as usize];
        let mut cost = 0u64;
        for e in 0..self.num_edges() as u32 {
            let mut lambda = 0u64;
            for &p in self.pins(e) {
                let part = assignment[p as usize] as usize;
                if seen[part] != e {
                    seen[part] = e;
                    lambda += 1;
                }
            }
            if lambda > 1 {
                cost += self.edge_weight(e) * (lambda - 1);
            }
        }
        cost
    }

    /// Per-part total vertex weight under `assignment`.
    pub fn part_weights(&self, assignment: &[u32], k: u32) -> Vec<VertexWeight> {
        let mut pw = vec![[0u64; 2]; k as usize];
        for (v, &p) in assignment.iter().enumerate() {
            let w = self.vwts[v];
            pw[p as usize][0] += w[0];
            pw[p as usize][1] += w[1];
        }
        pw
    }

    /// The sub-hypergraph induced by `vertices` (given as a sorted, deduped
    /// list of vertex ids). Edges are restricted to pins inside the subset;
    /// restricted edges with fewer than two pins are dropped (they cannot
    /// contribute to connectivity within the subset). Returns the subgraph
    /// and the mapping from subgraph vertex index to original vertex id.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Hypergraph, Vec<u32>) {
        let mut index = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            index[v as usize] = i as u32;
        }
        let vwts: Vec<VertexWeight> = vertices.iter().map(|&v| self.vwts[v as usize]).collect();
        let mut ewts = Vec::new();
        let mut pin_lists = Vec::new();
        for e in 0..self.num_edges() as u32 {
            let pins: Vec<u32> = self
                .pins(e)
                .iter()
                .filter_map(|&p| {
                    let i = index[p as usize];
                    (i != u32::MAX).then_some(i)
                })
                .collect();
            if pins.len() >= 2 {
                ewts.push(self.edge_weight(e));
                pin_lists.push(pins);
            }
        }
        (
            Hypergraph::from_parts(vwts, ewts, pin_lists),
            vertices.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.set_vertex_weight(0, [10, 0]);
        b.set_vertex_weight(1, [0, 5]);
        b.set_vertex_weight(2, [3, 3]);
        b.set_vertex_weight(3, [1, 1]);
        b.add_edge(7, &[0, 1, 2]);
        b.add_edge(2, &[2, 3]);
        b.add_edge(9, &[0, 3]);
        b.build().unwrap()
    }

    #[test]
    fn csr_structure() {
        let hg = sample();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_edges(), 3);
        assert_eq!(hg.num_pins(), 7);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.incident_edges(2), &[0, 1]);
        assert_eq!(hg.incident_edges(0), &[0, 2]);
        assert_eq!(hg.total_weight(), [14, 9]);
        assert_eq!(hg.max_vertex_weight(), [10, 5]);
    }

    #[test]
    fn builder_dedups_pins_and_validates() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge(1, &[0, 0, 1]);
        let hg = b.build().unwrap();
        assert_eq!(hg.pins(0), &[0, 1]);

        let mut b = HypergraphBuilder::new(2);
        b.add_edge(1, &[0, 5]);
        assert!(b.build().is_err());
    }

    #[test]
    fn connectivity_cost_counts_spans() {
        let hg = sample();
        // Everything in one part: zero cost.
        assert_eq!(hg.connectivity_cost(&[0, 0, 0, 0], 2), 0);
        // Split {0,1} | {2,3}: edge0 spans 2 parts (+7), edge1 inside (+0),
        // edge2 spans (+9).
        assert_eq!(hg.connectivity_cost(&[0, 0, 1, 1], 2), 16);
        // Three parts: edge0 spans {0,1,2} -> lambda 3 -> 2*7; edge1 spans
        // {2,0} -> +2; edge2 {0,0} is internal.
        assert_eq!(hg.connectivity_cost(&[0, 1, 2, 0], 3), 14 + 2);
    }

    #[test]
    fn part_weights_accumulate_both_dims() {
        let hg = sample();
        let pw = hg.part_weights(&[0, 1, 0, 1], 2);
        assert_eq!(pw[0], [13, 3]);
        assert_eq!(pw[1], [1, 6]);
    }

    #[test]
    fn induced_subgraph_restricts_edges() {
        let hg = sample();
        let (sub, map) = hg.induced_subgraph(&[0, 2, 3]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edge0 restricted to {0,2} (2 pins, kept), edge1 {2,3} kept, edge2
        // {0,3} kept.
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.vertex_weight(1), [3, 3]);
        // A subset killing all edges.
        let (sub, _) = hg.induced_subgraph(&[1]);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn single_pin_edges_never_cost() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge(100, &[0]);
        b.add_edge(1, &[0, 1]);
        let hg = b.build().unwrap();
        assert_eq!(hg.connectivity_cost(&[0, 1], 2), 1);
    }
}
