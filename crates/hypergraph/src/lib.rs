//! A multilevel, multi-constraint hypergraph partitioner.
//!
//! DCP (paper Sec. 4.2) models the placement of data and computation blocks
//! as **balanced hypergraph partitioning**: vertices are blocks with
//! 2-dimensional weights `[flops, bytes]`, each hyperedge connects a data
//! block to every computation block that consumes or produces it (with the
//! data block's size as edge weight), and the objective is the
//! *connectivity-minus-one* metric
//!
//! ```text
//!     sum_e  w_e * (lambda_e - 1)
//! ```
//!
//! which equals the total communication volume of the placement. The paper
//! solves this with KaHyPar; this crate is a from-scratch replacement
//! implementing the same algorithm family:
//!
//! 1. **Coarsening** ([`coarsen`]): heavy-edge style matching contracts the
//!    hypergraph level by level until it is small.
//! 2. **Initial partitioning** ([`initial`]): a portfolio of greedy
//!    strategies assigns coarse vertices to `k` parts under the two balance
//!    constraints.
//! 3. **Refinement** ([`refine`]): the assignment is projected back through
//!    the levels, with boundary FM-style greedy refinement and balance
//!    repair at each level.
//!
//! The entry point is [`partition`]; [`Hypergraph`] is built with
//! [`HypergraphBuilder`].
//!
//! # Examples
//!
//! ```
//! use dcp_hypergraph::{HypergraphBuilder, PartitionConfig, partition};
//!
//! // Two triangles joined by one light edge: the obvious bisection cuts it.
//! let mut b = HypergraphBuilder::new(6);
//! for v in 0..6 {
//!     b.set_vertex_weight(v, [1, 1]);
//! }
//! b.add_edge(100, &[0, 1, 2]);
//! b.add_edge(100, &[3, 4, 5]);
//! b.add_edge(1, &[2, 3]);
//! let hg = b.build().unwrap();
//! let part = partition(&hg, &PartitionConfig::new(2)).unwrap();
//! assert_eq!(part.cost, 1);
//! assert_eq!(part.assignment[0], part.assignment[1]);
//! assert_eq!(part.assignment[3], part.assignment[4]);
//! assert_ne!(part.assignment[0], part.assignment[5]);
//! ```

pub mod coarsen;
pub mod graph;
pub mod initial;
pub mod partitioner;
pub mod refine;

pub use graph::{HgArena, Hypergraph, HypergraphBuilder, VertexWeight};
pub use initial::Caps;
pub use partitioner::{
    balance_caps_full, partition, partition_warm, partition_warm_with_stats, partition_with_stats,
    Partition, PartitionConfig, PartitionStats,
};
