//! Thread-count determinism regression: the partitioner parallelizes
//! coarsening (wave-based matching proposals) and is required to produce
//! *bitwise identical* partitions at every `RAYON_NUM_THREADS` — proposals
//! are computed against an immutable snapshot and committed in a fixed
//! serial order, so the thread count must never leak into the result.
//!
//! Everything lives in a single `#[test]` in its own integration-test
//! binary because `RAYON_NUM_THREADS` is process-global state.

use dcp_hypergraph::{partition, HypergraphBuilder, PartitionConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A hypergraph large enough to force several coarsening levels (and thus
/// the parallel matching waves): clustered 2-pin ring edges plus random
/// many-pin hyperedges, planner-like weights.
fn large_hypergraph(n: usize, seed: u64) -> dcp_hypergraph::Hypergraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n {
        b.set_vertex_weight(v, [rng.gen_range(1..16), rng.gen_range(1..16)]);
    }
    for v in 0..n as u32 {
        b.add_edge(rng.gen_range(1..32), &[v, (v + 1) % n as u32]);
    }
    for _ in 0..n / 2 {
        let deg = rng.gen_range(3..12);
        let pins: Vec<u32> = (0..deg).map(|_| rng.gen_range(0..n) as u32).collect();
        b.add_edge(rng.gen_range(1..64), &pins);
    }
    b.build().unwrap()
}

#[test]
fn partitioner_is_bitwise_deterministic_across_thread_counts() {
    let hg = large_hypergraph(3000, 7);
    for k in [2u32, 16] {
        let cfg = PartitionConfig::new(k).with_seed(7);
        let mut runs = Vec::new();
        for threads in ["1", "2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            runs.push((threads, partition(&hg, &cfg).unwrap()));
        }
        std::env::remove_var("RAYON_NUM_THREADS");
        let (_, first) = &runs[0];
        for (threads, part) in &runs[1..] {
            assert_eq!(
                part.assignment, first.assignment,
                "k={k}: partition differs between 1 and {threads} threads"
            );
            assert_eq!(part.cost, first.cost, "k={k}: cost differs at {threads}");
        }
    }
}
