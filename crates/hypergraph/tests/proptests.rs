//! Property tests for the partitioner: refinement preserves feasibility,
//! V-cycles never worsen cost, determinism, and the FM gain cache's delta
//! updates staying exact under arbitrary move sequences.

use dcp_hypergraph::refine::{refine, GainCache, RefineState};
use dcp_hypergraph::{partition, Caps, HypergraphBuilder, PartitionConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_hypergraph(n: usize, ne: usize, seed: u64) -> dcp_hypergraph::Hypergraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n {
        b.set_vertex_weight(v, [rng.gen_range(0..8), rng.gen_range(0..8)]);
    }
    for _ in 0..ne {
        let deg = rng.gen_range(2..5.min(n + 1).max(3));
        let pins: Vec<u32> = (0..deg).map(|_| rng.gen_range(0..n) as u32).collect();
        b.add_edge(rng.gen_range(1..16), &pins);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Starting from a cap-feasible assignment, FM refinement keeps it
    /// cap-feasible and never increases the cost.
    #[test]
    fn refine_preserves_feasibility(
        n in 4usize..80,
        ne in 1usize..120,
        k in 2u32..5,
        seed in 0u64..500,
    ) {
        let hg = random_hypergraph(n, ne, seed);
        // Round-robin start: compute generous caps from it so it is
        // feasible by construction.
        let mut assignment: Vec<u32> = (0..n as u32).map(|v| v % k).collect();
        let pw = hg.part_weights(&assignment, k);
        let caps = [
            pw.iter().map(|w| w[0]).max().unwrap().max(1),
            pw.iter().map(|w| w[1]).max().unwrap().max(1),
        ];
        let before = hg.connectivity_cost(&assignment, k);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xf00d);
        let after = refine(&hg, &mut assignment, k, &Caps::uniform(caps), 6, &mut rng);
        prop_assert!(after <= before, "refine worsened: {before} -> {after}");
        prop_assert_eq!(after, hg.connectivity_cost(&assignment, k));
        let pw = hg.part_weights(&assignment, k);
        for w in pw {
            prop_assert!(w[0] <= caps[0] && w[1] <= caps[1], "caps violated");
        }
    }

    /// Adding V-cycles never yields a worse partition than none.
    #[test]
    fn vcycles_never_worsen(
        n in 8usize..100,
        ne in 4usize..150,
        k in 2u32..5,
        seed in 0u64..500,
    ) {
        let hg = random_hypergraph(n, ne, seed);
        let mut base = PartitionConfig::new(k).with_seed(seed);
        base.vcycles = 0;
        let mut cycled = base.clone();
        cycled.vcycles = 2;
        let a = partition(&hg, &base).unwrap();
        let b = partition(&hg, &cycled).unwrap();
        prop_assert!(
            b.cost <= a.cost,
            "vcycles worsened: {} -> {}",
            a.cost,
            b.cost
        );
    }

    /// After an arbitrary random move sequence applied through the gain
    /// cache's delta updates, every cached gain equals a from-scratch
    /// rebuild (`RefineState::new` + `GainCache::new`) — the invariant the
    /// incremental `lambda`-threshold updates must maintain.
    #[test]
    fn delta_gain_updates_match_scratch_rebuild(
        n in 4usize..48,
        ne in 1usize..80,
        k in 2u32..5,
        seed in 0u64..500,
        moves in 1usize..40,
    ) {
        let hg = random_hypergraph(n, ne, seed);
        let mut assignment: Vec<u32> = (0..n as u32).map(|v| v % k).collect();
        let mut state = RefineState::new(&hg, &assignment, k);
        let mut cache = GainCache::new(&hg, &state, &assignment);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
        let mut touched = Vec::new();
        for _ in 0..moves {
            let v = rng.gen_range(0..n) as u32;
            let from = assignment[v as usize];
            let to = (from + rng.gen_range(1..k)) % k;
            cache.apply(&hg, &mut state, &mut assignment, v, to, &mut touched);
        }
        let fresh_state = RefineState::new(&hg, &assignment, k);
        let fresh = GainCache::new(&hg, &fresh_state, &assignment);
        for v in 0..n as u32 {
            let from = assignment[v as usize];
            for to in 0..k {
                if to == from {
                    continue;
                }
                prop_assert_eq!(
                    cache.gain(v, to),
                    fresh.gain(v, to),
                    "cached gain drifted for v={} to={}",
                    v,
                    to
                );
                prop_assert_eq!(
                    cache.gain(v, to),
                    fresh_state.gain(&hg, v, from, to),
                    "cache disagrees with direct recomputation for v={} to={}",
                    v,
                    to
                );
            }
        }
        prop_assert_eq!(state.cost, hg.connectivity_cost(&assignment, k));
    }

    /// Partitioning is deterministic for a fixed seed, including V-cycles.
    #[test]
    fn deterministic_with_vcycles(
        n in 8usize..60,
        ne in 4usize..100,
        seed in 0u64..300,
    ) {
        let hg = random_hypergraph(n, ne, seed);
        let cfg = PartitionConfig::new(3).with_seed(42);
        let a = partition(&hg, &cfg).unwrap();
        let b = partition(&hg, &cfg).unwrap();
        prop_assert_eq!(a.assignment, b.assignment);
    }
}
