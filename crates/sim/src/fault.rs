//! Deterministic fault injection for the cluster simulator.
//!
//! Long-context training jobs run for days on hundreds of devices, so the
//! planner's output meets stragglers, flaky NICs and late-joining workers
//! in practice. A [`FaultSpec`] perturbs a simulation with such faults so
//! robustness experiments (how much makespan does a ×4 straggler cost a
//! DCP plan vs a ring baseline?) are reproducible: all randomness is a
//! pure function of [`FaultSpec::seed`] and the perturbed instruction's
//! coordinates, never of iteration order or wall clock.
//!
//! An empty spec is the identity: [`crate::simulate_phase_faulted`] with
//! [`FaultSpec::none`] is bitwise identical to
//! [`crate::simulate_phase_traced`].

use serde::{Deserialize, Serialize};

/// Rate multiplier used to model a *failed* link. A truly dead link would
/// deadlock any plan that routes a transfer over it — real collectives
/// instead crawl through a rerouted/renegotiated path — so failure is
/// modeled as a near-total bandwidth collapse rather than a hard stop.
pub const FAILED_LINK_FACTOR: f64 = 1e-3;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// `device` runs every kernel `slowdown`× slower (plus a small
    /// seed-deterministic jitter on each kernel), modelling thermal
    /// throttling or a noisy neighbor.
    Straggler {
        /// Device whose kernels are slowed.
        device: u32,
        /// Multiplier on kernel durations; must be `>= 1`.
        slowdown: f64,
    },
    /// The directed link `src -> dst` delivers only `factor` of its
    /// nominal bandwidth (`0 < factor <= 1`).
    DegradedLink {
        /// Sending device.
        src: u32,
        /// Receiving device.
        dst: u32,
        /// Fraction of nominal bandwidth retained.
        factor: f64,
    },
    /// The directed link `src -> dst` has failed: it retains only
    /// [`FAILED_LINK_FACTOR`] of its nominal bandwidth.
    FailedLink {
        /// Sending device.
        src: u32,
        /// Receiving device.
        dst: u32,
    },
    /// The directed link `src -> dst` flaps: for the first `duty` fraction
    /// of every `period_s`-second cycle it delivers only `factor` of its
    /// nominal bandwidth, then recovers for the rest of the cycle
    /// (piecewise-constant rate, phase-aligned to `t = 0`). `duty >= 1`
    /// degenerates to a constant degradation and is bitwise identical to
    /// [`Fault::DegradedLink`] with the same factor.
    FlappingLink {
        /// Sending device.
        src: u32,
        /// Receiving device.
        dst: u32,
        /// Seconds per degrade/recover cycle.
        period_s: f64,
        /// Fraction of each cycle spent degraded, in `(0, 1]`.
        duty: f64,
        /// Fraction of nominal bandwidth retained while degraded.
        factor: f64,
    },
    /// `device` joins the phase `delay_s` seconds late (checkpoint
    /// restore, container restart), idling before its first instruction.
    DelayedStart {
        /// Device that starts late.
        device: u32,
        /// Seconds of delay.
        delay_s: f64,
    },
}

/// A reproducible set of faults to inject into a simulation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for the per-kernel straggler jitter. Two runs with the same
    /// spec (seed and faults) are bitwise identical.
    pub seed: u64,
    /// The faults to inject. Multiple faults of the same kind on the same
    /// device/link compose multiplicatively (slowdowns and factors) or
    /// additively (delays).
    pub faults: Vec<Fault>,
}

impl FaultSpec {
    /// The empty spec: injecting it leaves the simulation bitwise
    /// unchanged.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Whether the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Per-device kernel slowdown factors (1.0 = nominal) for `n` devices.
    /// Public so the planner can down-weight straggler capacity when
    /// placing blocks fault-aware.
    pub fn slowdowns(&self, n: usize) -> Vec<f64> {
        let mut s = vec![1.0; n];
        for f in &self.faults {
            if let Fault::Straggler { device, slowdown } = *f {
                if (device as usize) < n {
                    s[device as usize] *= slowdown.max(1.0);
                }
            }
        }
        s
    }

    /// Per-device start delays in seconds for `n` devices.
    pub fn delays(&self, n: usize) -> Vec<f64> {
        let mut d = vec![0.0; n];
        for f in &self.faults {
            if let Fault::DelayedStart { device, delay_s } = *f {
                if (device as usize) < n {
                    d[device as usize] += delay_s.max(0.0);
                }
            }
        }
        d
    }

    /// Directed `(src, dst, factor)` *constant* bandwidth multipliers,
    /// deduplicated multiplicatively in declaration order. Degenerate
    /// flapping (`duty >= 1` or `period_s <= 0`, i.e. the link never
    /// recovers) folds in here, which is what makes it bitwise identical
    /// to [`Fault::DegradedLink`]. Public so the planner can penalize
    /// degraded links when placing blocks fault-aware.
    pub fn link_factors(&self) -> Vec<(u32, u32, f64)> {
        let mut out: Vec<(u32, u32, f64)> = Vec::new();
        for f in &self.faults {
            let (src, dst, factor) = match *f {
                Fault::DegradedLink { src, dst, factor } => (src, dst, factor.clamp(1e-9, 1.0)),
                Fault::FailedLink { src, dst } => (src, dst, FAILED_LINK_FACTOR),
                Fault::FlappingLink {
                    src,
                    dst,
                    period_s,
                    duty,
                    factor,
                } if duty >= 1.0 || period_s <= 0.0 => (src, dst, factor.clamp(1e-9, 1.0)),
                _ => continue,
            };
            match out.iter_mut().find(|(s, d, _)| *s == src && *d == dst) {
                Some((_, _, acc)) => *acc *= factor,
                None => out.push((src, dst, factor)),
            }
        }
        out
    }

    /// Genuinely flapping links: `(src, dst, period_s, duty, factor)` with
    /// `period_s > 0`, `0 < duty < 1` and `factor < 1`. Degenerate entries
    /// are folded into [`FaultSpec::link_factors`] (never-recovering) or
    /// dropped (never-degraded / no-op factor). A later declaration on the
    /// same link replaces an earlier one.
    pub fn flapping_links(&self) -> Vec<(u32, u32, f64, f64, f64)> {
        let mut out: Vec<(u32, u32, f64, f64, f64)> = Vec::new();
        for f in &self.faults {
            if let Fault::FlappingLink {
                src,
                dst,
                period_s,
                duty,
                factor,
            } = *f
            {
                if period_s <= 0.0 || duty >= 1.0 || duty <= 0.0 || factor >= 1.0 {
                    continue;
                }
                let entry = (src, dst, period_s, duty, factor.clamp(1e-9, 1.0));
                match out.iter_mut().find(|(s, d, ..)| *s == src && *d == dst) {
                    Some(e) => *e = entry,
                    None => out.push(entry),
                }
            }
        }
        out
    }
}

/// Folds detector output (`dcp-obs` [`dcp_obs::Incident`]s) into an
/// *estimated* [`FaultSpec`] the planner's fault-aware placement can
/// consume — the observe→detect→replan loop. Straggler incidents become
/// [`Fault::Straggler`] (slowdown clamped to ≥ 1), degraded-link
/// incidents become [`Fault::DegradedLink`]; tier-level
/// [`dcp_obs::IncidentKind::BandwidthDrop`]s carry no link coordinates
/// and are skipped. Repeated incidents on the same device/link keep the
/// *worst* estimate rather than composing multiplicatively (each
/// incident re-estimates the same underlying fault).
pub fn estimate_fault_spec(incidents: &[dcp_obs::Incident], seed: u64) -> FaultSpec {
    let mut spec = FaultSpec {
        seed,
        faults: Vec::new(),
    };
    for inc in incidents {
        match &inc.kind {
            dcp_obs::IncidentKind::Straggler { device, slowdown } => {
                let slowdown = slowdown.max(1.0);
                match spec
                    .faults
                    .iter_mut()
                    .find(|f| matches!(f, Fault::Straggler { device: d, .. } if *d == *device))
                {
                    Some(Fault::Straggler { slowdown: s, .. }) => *s = s.max(slowdown),
                    _ => spec.faults.push(Fault::Straggler {
                        device: *device,
                        slowdown,
                    }),
                }
            }
            dcp_obs::IncidentKind::DegradedLink { src, dst, factor } => {
                let factor = factor.clamp(1e-9, 1.0);
                match spec.faults.iter_mut().find(|f| {
                    matches!(f, Fault::DegradedLink { src: s, dst: d, .. }
                        if *s == *src && *d == *dst)
                }) {
                    Some(Fault::DegradedLink { factor: f, .. }) => *f = f.min(factor),
                    _ => spec.faults.push(Fault::DegradedLink {
                        src: *src,
                        dst: *dst,
                        factor,
                    }),
                }
            }
            dcp_obs::IncidentKind::BandwidthDrop { .. } => {}
        }
    }
    spec
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Straggler jitter for the kernel at instruction `step` on `device`:
/// uniform in `[0.9, 1.1)`, a pure function of its arguments so the draw
/// does not depend on simulation event order.
pub(crate) fn jitter(seed: u64, device: u32, step: usize) -> f64 {
    let h = splitmix64(seed ^ ((device as u64) << 40) ^ (step as u64));
    0.9 + 0.2 * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_identity_shaped() {
        let s = FaultSpec::none();
        assert!(s.is_empty());
        assert_eq!(s.slowdowns(4), vec![1.0; 4]);
        assert_eq!(s.delays(4), vec![0.0; 4]);
        assert!(s.link_factors().is_empty());
    }

    #[test]
    fn faults_aggregate_per_device_and_link() {
        let s = FaultSpec {
            seed: 7,
            faults: vec![
                Fault::Straggler {
                    device: 1,
                    slowdown: 2.0,
                },
                Fault::Straggler {
                    device: 1,
                    slowdown: 3.0,
                },
                Fault::DelayedStart {
                    device: 0,
                    delay_s: 0.5,
                },
                Fault::DegradedLink {
                    src: 0,
                    dst: 1,
                    factor: 0.5,
                },
                Fault::FailedLink { src: 0, dst: 1 },
                Fault::Straggler {
                    device: 99,
                    slowdown: 8.0,
                }, // out of range: ignored
            ],
        };
        assert_eq!(s.slowdowns(2), vec![1.0, 6.0]);
        assert_eq!(s.delays(2), vec![0.5, 0.0]);
        let links = s.link_factors();
        assert_eq!(links.len(), 1);
        assert!((links[0].2 - 0.5 * FAILED_LINK_FACTOR).abs() < 1e-15);
    }

    #[test]
    fn flapping_links_classify_degenerate_cases() {
        let s = FaultSpec {
            seed: 0,
            faults: vec![
                // Genuine flapping.
                Fault::FlappingLink {
                    src: 0,
                    dst: 1,
                    period_s: 0.01,
                    duty: 0.5,
                    factor: 0.2,
                },
                // duty >= 1: constant degradation, must fold into
                // link_factors exactly like a DegradedLink.
                Fault::FlappingLink {
                    src: 2,
                    dst: 3,
                    period_s: 0.01,
                    duty: 1.0,
                    factor: 0.3,
                },
                // Never degraded / no-op factor: dropped entirely.
                Fault::FlappingLink {
                    src: 4,
                    dst: 5,
                    period_s: 0.01,
                    duty: 0.0,
                    factor: 0.2,
                },
                Fault::FlappingLink {
                    src: 4,
                    dst: 5,
                    period_s: 0.01,
                    duty: 0.5,
                    factor: 1.0,
                },
            ],
        };
        let flapping = s.flapping_links();
        assert_eq!(flapping, vec![(0, 1, 0.01, 0.5, 0.2)]);
        let constant = FaultSpec {
            seed: 0,
            faults: vec![Fault::DegradedLink {
                src: 2,
                dst: 3,
                factor: 0.3,
            }],
        };
        assert_eq!(s.link_factors(), constant.link_factors());
    }

    #[test]
    fn later_flapping_declaration_replaces_earlier() {
        let s = FaultSpec {
            seed: 0,
            faults: vec![
                Fault::FlappingLink {
                    src: 0,
                    dst: 1,
                    period_s: 0.01,
                    duty: 0.5,
                    factor: 0.2,
                },
                Fault::FlappingLink {
                    src: 0,
                    dst: 1,
                    period_s: 0.02,
                    duty: 0.25,
                    factor: 0.4,
                },
            ],
        };
        assert_eq!(s.flapping_links(), vec![(0, 1, 0.02, 0.25, 0.4)]);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_varies() {
        let a = jitter(42, 0, 0);
        let b = jitter(42, 0, 0);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((0.9..1.1).contains(&a));
        let c = jitter(42, 0, 1);
        let d = jitter(43, 0, 0);
        assert_ne!(a.to_bits(), c.to_bits());
        assert_ne!(a.to_bits(), d.to_bits());
    }

    #[test]
    fn estimated_spec_keeps_worst_incident_per_site() {
        use dcp_obs::{Incident, IncidentKind};
        let mk = |kind: IncidentKind| Incident {
            kind,
            at_s: 0.0,
            samples: 3,
            score: 2.0,
        };
        let incidents = vec![
            mk(IncidentKind::Straggler {
                device: 0,
                slowdown: 3.0,
            }),
            mk(IncidentKind::Straggler {
                device: 0,
                slowdown: 4.5,
            }),
            mk(IncidentKind::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.3,
            }),
            mk(IncidentKind::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.1,
            }),
            // No coordinates: skipped.
            mk(IncidentKind::BandwidthDrop {
                label: "tier0".into(),
                factor: 0.5,
            }),
        ];
        let spec = estimate_fault_spec(&incidents, 7);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.slowdowns(2), vec![4.5, 1.0]);
        assert_eq!(spec.link_factors(), vec![(1, 0, 0.1)]);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = FaultSpec {
            seed: 5,
            faults: vec![
                Fault::Straggler {
                    device: 0,
                    slowdown: 4.0,
                },
                Fault::FailedLink { src: 1, dst: 2 },
            ],
        };
        let j = serde_json::to_string(&s).unwrap();
        let back: FaultSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
