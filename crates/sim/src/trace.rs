//! Execution traces: Chrome-trace export and an ASCII Gantt renderer.
//!
//! [`crate::simulate_phase_traced`] records every compute segment, exposed
//! wait and transfer of a simulated phase. This module turns that into:
//!
//! - [`to_chrome_trace`]: the Chrome Trace Event JSON format — open it at
//!   `chrome://tracing` (or Perfetto) to inspect a plan's timeline the way
//!   the paper inspects Nsight Systems traces (Fig. 22);
//! - [`ascii_gantt`]: a terminal rendering for quick looks and examples.

use serde::{Deserialize, Serialize};

/// What a trace segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Forward attention kernel.
    Attn,
    /// Backward attention kernel.
    AttnBwd,
    /// Blockwise reduction kernel.
    Reduce,
    /// On-device copy.
    Copy,
    /// Device blocked in `CommWait` (exposed communication).
    Wait,
    /// An incoming transfer (attributed to the receiver).
    Transfer {
        /// Sending device.
        from: u32,
    },
    /// Extra kernel time caused by an injected straggler fault (the slice
    /// beyond the kernel's nominal duration).
    Straggle,
    /// Idle time before a delayed device's first instruction (injected
    /// [`crate::Fault::DelayedStart`]).
    Delay,
}

impl TraceKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Attn => "attn",
            TraceKind::AttnBwd => "attn_bwd",
            TraceKind::Reduce => "reduce",
            TraceKind::Copy => "copy",
            TraceKind::Wait => "wait",
            TraceKind::Transfer { .. } => "recv",
            TraceKind::Straggle => "straggle",
            TraceKind::Delay => "delay",
        }
    }

    /// One-character symbol for the ASCII Gantt.
    fn glyph(&self) -> char {
        match self {
            TraceKind::Attn => '#',
            TraceKind::AttnBwd => '%',
            TraceKind::Reduce => 'r',
            TraceKind::Copy => 'c',
            TraceKind::Wait => '.',
            TraceKind::Transfer { .. } => '~',
            TraceKind::Straggle => '!',
            TraceKind::Delay => '_',
        }
    }
}

/// One segment of simulated activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Device the segment belongs to.
    pub device: u32,
    /// Activity kind.
    pub kind: TraceKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Adapts simulated [`TraceEvent`]s into the unified observability stream
/// (`dcp-obs` [`dcp_obs::Event`]s, source [`dcp_obs::Source::Sim`]), so the
/// simulated timeline merges with planner/dataloader/executor spans in one
/// Chrome trace. Timestamps are *simulated* seconds; the multi-source
/// exporter keeps each source on its own process row, so the differing
/// clocks never mix on one track. Transfers become `recv` spans with the
/// sender recorded in the label.
///
/// Events are adapted in input order; `simulate_phase_traced` emits its
/// trace deterministically, so the adapted stream is too.
pub fn trace_to_obs(
    events: &[TraceEvent],
    phase: dcp_obs::Phase,
    iter: Option<u64>,
) -> Vec<dcp_obs::Event> {
    events
        .iter()
        .map(|e| {
            let mut ev = dcp_obs::Event::span(dcp_obs::Source::Sim, e.kind.label())
                .with_device(e.device)
                .with_phase(phase)
                .with_time(e.start, e.end - e.start);
            if let TraceKind::Transfer { from } = e.kind {
                ev = ev.with_label(format!("from dev{from}"));
            }
            if let Some(i) = iter {
                ev = ev.with_iter(i);
            }
            ev
        })
        .collect()
}

/// Serializes events to the Chrome Trace Event format (JSON object with a
/// `traceEvents` array of complete `"X"` events; timestamps in µs).
/// Compute/wait segments go on track `tid = 2*device`, transfers on
/// `tid = 2*device + 1`.
///
/// This is the single-source renderer kept for quick looks at one simulated
/// phase; the multi-source export shared with the real executor lives in
/// [`dcp_obs::to_chrome_trace`] (see [`trace_to_obs`]).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    #[derive(Serialize)]
    struct ChromeEvent<'a> {
        name: &'a str,
        cat: &'a str,
        ph: &'a str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: u32,
    }
    #[derive(Serialize)]
    struct ChromeTrace<'a> {
        #[serde(rename = "traceEvents")]
        trace_events: Vec<ChromeEvent<'a>>,
        #[serde(rename = "displayTimeUnit")]
        display_time_unit: &'a str,
    }
    let trace_events = events
        .iter()
        .map(|e| ChromeEvent {
            name: e.kind.label(),
            cat: match e.kind {
                TraceKind::Transfer { .. } => "comm",
                TraceKind::Wait => "wait",
                TraceKind::Straggle | TraceKind::Delay => "fault",
                _ => "compute",
            },
            ph: "X",
            ts: e.start * 1e6,
            dur: (e.end - e.start) * 1e6,
            pid: 0,
            tid: match e.kind {
                TraceKind::Transfer { .. } => 2 * e.device + 1,
                _ => 2 * e.device,
            },
        })
        .collect();
    serde_json::to_string_pretty(&ChromeTrace {
        trace_events,
        display_time_unit: "ms",
    })
    .expect("trace serializes")
}

/// Renders a fixed-width ASCII Gantt chart: one row per device (compute
/// track) with `#` attention, `%` backward, `r` reduce, `c` copy, `.`
/// exposed wait; a second `net` row per device with `~` for incoming
/// transfers. Later-starting segments overwrite earlier ones within a cell.
pub fn ascii_gantt(events: &[TraceEvent], width: usize) -> String {
    if events.is_empty() {
        return String::from("(empty trace)\n");
    }
    let t_end = events.iter().map(|e| e.end).fold(0.0, f64::max);
    let n = events.iter().map(|e| e.device).max().unwrap_or(0) as usize + 1;
    let scale = width as f64 / t_end.max(1e-12);
    let mut comp = vec![vec![' '; width]; n];
    let mut net = vec![vec![' '; width]; n];
    for e in events {
        let row = match e.kind {
            TraceKind::Transfer { .. } => &mut net[e.device as usize],
            _ => &mut comp[e.device as usize],
        };
        let lo = (e.start * scale) as usize;
        let hi = ((e.end * scale) as usize).clamp(lo + 1, width);
        for cell in row.iter_mut().take(hi).skip(lo.min(width - 1)) {
            *cell = e.kind.glyph();
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "time: 0 .. {:.3} ms   (#=attn %=bwd r=reduce c=copy .=wait ~=recv !=straggle _=delay)\n",
        t_end * 1e3
    ));
    for d in 0..n {
        out.push_str(&format!(
            "dev{d:<3} |{}|\n",
            comp[d].iter().collect::<String>()
        ));
        if net[d].iter().any(|&c| c != ' ') {
            out.push_str(&format!("  net  |{}|\n", net[d].iter().collect::<String>()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                device: 0,
                kind: TraceKind::Attn,
                start: 0.0,
                end: 0.5e-3,
            },
            TraceEvent {
                device: 0,
                kind: TraceKind::Wait,
                start: 0.5e-3,
                end: 0.7e-3,
            },
            TraceEvent {
                device: 1,
                kind: TraceKind::Transfer { from: 0 },
                start: 0.1e-3,
                end: 0.4e-3,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let s = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0]["ph"], "X");
        assert_eq!(evs[0]["name"], "attn");
        // Transfers land on the odd track.
        let recv = evs.iter().find(|e| e["name"] == "recv").unwrap();
        assert_eq!(recv["tid"], 3);
        // Microsecond timestamps.
        assert!((evs[0]["dur"].as_f64().unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn trace_adapts_into_obs_stream() {
        let obs = trace_to_obs(&sample(), dcp_obs::Phase::Fwd, Some(3));
        assert_eq!(obs.len(), 3);
        for e in &obs {
            assert_eq!(e.source, dcp_obs::Source::Sim);
            assert_eq!(e.phase, Some(dcp_obs::Phase::Fwd));
            assert_eq!(e.iter, Some(3));
        }
        assert_eq!(obs[0].name, "attn");
        assert!((obs[0].dur_s - 0.5e-3).abs() < 1e-12);
        let recv = &obs[2];
        assert_eq!(recv.name, "recv");
        assert_eq!(recv.label.as_deref(), Some("from dev0"));
        assert_eq!(recv.device, Some(1));
        // The unified exporter accepts the adapted stream.
        let chrome = dcp_obs::to_chrome_trace(&obs);
        let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        assert!(v["traceEvents"].as_array().unwrap().len() >= 3);
    }

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let g = ascii_gantt(&sample(), 40);
        assert!(g.contains("dev0"));
        assert!(g.contains('#'));
        assert!(g.contains('.'));
        assert!(g.contains('~'));
        // Two devices: dev1 only has a net row.
        assert!(g.contains("dev1"));
    }

    #[test]
    fn gantt_empty() {
        assert_eq!(ascii_gantt(&[], 10), "(empty trace)\n");
    }

    #[test]
    fn end_to_end_trace_from_simulation() {
        use dcp_blocks::{BatchLayout, BlockConfig};
        use dcp_mask::MaskSpec;
        use dcp_sched::{build_plan, Placement, ScheduleConfig};
        use dcp_types::{AttnSpec, ClusterSpec};

        let layout = BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(8192, MaskSpec::Causal)],
        )
        .unwrap();
        let n = 4u32;
        let token_to_dev: Vec<u32> = (0..layout.token_blocks.len() as u32)
            .map(|i| i % n)
            .collect();
        let comp_to_dev: Vec<u32> = layout
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        let placement = Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        };
        let plan = build_plan(&layout, &placement, &ScheduleConfig::default()).unwrap();
        let cluster = ClusterSpec::single_node(4);
        let (sim, trace) = crate::simulate_phase_traced(&cluster, &plan.fwd).unwrap();
        assert!(!trace.is_empty());
        // Every event lies within the makespan and trace compute time sums
        // to the timeline's accounting.
        let mut per_dev_attn = [0.0f64; 4];
        for e in &trace {
            assert!(e.end <= sim.makespan + 1e-9);
            assert!(e.start <= e.end);
            if matches!(e.kind, TraceKind::Attn) {
                per_dev_attn[e.device as usize] += e.end - e.start;
            }
        }
        for (d, attn_s) in per_dev_attn.iter().enumerate() {
            assert!((attn_s - sim.devices[d].attn).abs() < 1e-12);
        }
        let _ = to_chrome_trace(&trace);
    }
}
