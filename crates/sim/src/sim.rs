//! The discrete-event execution of plan instruction streams.

use std::collections::HashMap;

use dcp_sched::{CommId, ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan};
use dcp_types::{ClusterSpec, DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::fault::{jitter, FaultSpec};
use crate::network::{FlowId, Network};
use crate::trace::{TraceEvent, TraceKind};

/// Per-device timing breakdown of one simulated phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceTimeline {
    /// Seconds spent in attention kernels.
    pub attn: f64,
    /// Seconds spent in reduction kernels.
    pub reduce: f64,
    /// Seconds spent in copy kernels.
    pub copy: f64,
    /// Seconds blocked in `CommWait` (exposed, non-overlapped comm).
    pub exposed_wait: f64,
    /// Wall-clock seconds during which at least one flow touched this
    /// device.
    pub comm_active: f64,
    /// Portion of `comm_active` concurrent with this device's compute
    /// (communication successfully hidden).
    pub overlap: f64,
    /// Time this device finished its stream.
    pub finish: f64,
}

impl DeviceTimeline {
    /// Total compute seconds (attention + reduce + copy).
    pub fn compute(&self) -> f64 {
        self.attn + self.reduce + self.copy
    }
}

/// The result of simulating one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSim {
    /// Completion time of the slowest device.
    pub makespan: f64,
    /// Per-device breakdowns.
    pub devices: Vec<DeviceTimeline>,
}

impl PhaseSim {
    /// Maximum exposed communication across devices.
    pub fn max_exposed(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.exposed_wait)
            .fold(0.0, f64::max)
    }
}

/// The result of simulating a full plan (forward, then backward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSim {
    /// Forward phase result.
    pub fwd: PhaseSim,
    /// Backward phase result.
    pub bwd: PhaseSim,
}

impl PlanSim {
    /// Total attention-operator time: forward + backward makespans (the
    /// backward starts only after the loss, i.e. after the forward
    /// completes globally).
    pub fn total(&self) -> f64 {
        self.fwd.makespan + self.bwd.makespan
    }
}

fn is_input(p: &Payload) -> bool {
    matches!(p.kind(), PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO)
}

/// Simulates one phase of a plan on `cluster`. Plan ranks map to cluster
/// ranks identically.
///
/// # Errors
///
/// Returns [`DcpError::InvalidPlan`] if the streams deadlock (a wait on a
/// transfer that is never launched) or reference devices outside the
/// cluster.
pub fn simulate_phase(cluster: &ClusterSpec, phase: &PhasePlan) -> DcpResult<PhaseSim> {
    Ok(simulate_phase_traced(cluster, phase)?.0)
}

/// Like [`simulate_phase`], additionally returning the execution trace
/// (compute segments, exposed waits and transfers) for rendering with
/// [`crate::trace::to_chrome_trace`] or [`crate::trace::ascii_gantt`].
///
/// # Errors
///
/// Same failure modes as [`simulate_phase`].
pub fn simulate_phase_traced(
    cluster: &ClusterSpec,
    phase: &PhasePlan,
) -> DcpResult<(PhaseSim, Vec<TraceEvent>)> {
    simulate_phase_faulted(cluster, phase, &FaultSpec::none())
}

/// Like [`simulate_phase_traced`] with fault injection: stragglers stretch
/// kernels (the extension shows up as [`TraceKind::Straggle`] and in the
/// device's compute buckets), degraded/failed links cap flow rates, and
/// delayed devices idle (as [`TraceKind::Delay`]) before their first
/// instruction. An empty spec is bitwise identical to the un-faulted
/// simulation; a non-empty spec is deterministic in `spec.seed`.
///
/// # Errors
///
/// Same failure modes as [`simulate_phase`].
pub fn simulate_phase_faulted(
    cluster: &ClusterSpec,
    phase: &PhasePlan,
    spec: &FaultSpec,
) -> DcpResult<(PhaseSim, Vec<TraceEvent>)> {
    simulate_phase_opts(cluster, phase, spec, false).map(|(sim, trace, _)| (sim, trace))
}

/// Like [`simulate_phase`], additionally returning event-loop and network
/// engine counters (for throughput benchmarking).
///
/// # Errors
///
/// Same failure modes as [`simulate_phase`].
pub fn simulate_phase_counted(
    cluster: &ClusterSpec,
    phase: &PhasePlan,
) -> DcpResult<(PhaseSim, SimCounters)> {
    simulate_phase_opts(cluster, phase, &FaultSpec::none(), false)
        .map(|(sim, _, counters)| (sim, counters))
}

/// Like [`simulate_phase_counted`] but on the retained scratch reference
/// network engine (full water-fill rebuild per event) — the baseline the
/// incremental engine is benchmarked against.
///
/// # Errors
///
/// Same failure modes as [`simulate_phase`].
pub fn simulate_phase_scratch(
    cluster: &ClusterSpec,
    phase: &PhasePlan,
) -> DcpResult<(PhaseSim, SimCounters)> {
    simulate_phase_opts(cluster, phase, &FaultSpec::none(), true)
        .map(|(sim, _, counters)| (sim, counters))
}

/// Event-loop and network-engine counters from one simulated phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimCounters {
    /// Discrete events processed by the outer event loop.
    pub events: u64,
    /// Flows carried by the network.
    pub flows: u64,
    /// Water-fill invocations in the network engine.
    pub recomputes: u64,
    /// Total flows visited across all water-fills.
    pub touched_flows: u64,
}

fn simulate_phase_opts(
    cluster: &ClusterSpec,
    phase: &PhasePlan,
    spec: &FaultSpec,
    scratch_engine: bool,
) -> DcpResult<(PhaseSim, Vec<TraceEvent>, SimCounters)> {
    cluster.validate()?;
    let n = phase.devices.len();
    if n as u32 > cluster.num_devices() {
        return Err(DcpError::invalid_plan(format!(
            "plan uses {n} devices, cluster has {}",
            cluster.num_devices()
        )));
    }
    let mut net = Network::new(cluster.clone());
    net.use_scratch_engine(scratch_engine);
    for (src, dst, factor) in spec.link_factors() {
        net.set_link_factor(src, dst, factor);
    }
    for (src, dst, period_s, duty, factor) in spec.flapping_links() {
        net.set_link_flapping(src, dst, period_s, duty, factor);
    }
    let slow = spec.slowdowns(n);
    let delays = spec.delays(n);
    let eff = cluster.effective_flops();
    let eps = 1e-15;

    // Per (comm op, src, dst): the flow carrying all of that op's transfers
    // between the pair, coalesced so large fused operations (e.g. a ring
    // step relaying hundreds of KV blocks) cost one flow, not hundreds.
    let mut flows: HashMap<(u32, u32, u32), FlowId> = HashMap::new();
    // Flow bookkeeping for interval accounting.
    struct FlowMeta {
        id: FlowId,
        src: u32,
        dst: u32,
        active_at: f64,
        end: Option<f64>,
    }
    let mut metas: Vec<FlowMeta> = Vec::new();

    let mut ip = vec![0usize; n];
    // A delayed device idles until its injected start time.
    let mut ready = delays.clone();
    let mut blocked: Vec<Option<CommId>> = vec![None; n];
    let mut wait_start = vec![0.0f64; n];
    let mut tl = vec![DeviceTimeline::default(); n];
    // Compute busy intervals per device for overlap accounting.
    let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut trace: Vec<TraceEvent> = Vec::new();
    for (d, &delay) in delays.iter().enumerate() {
        if delay > 0.0 && !phase.devices[d].instrs.is_empty() {
            trace.push(TraceEvent {
                device: d as u32,
                kind: TraceKind::Delay,
                start: 0.0,
                end: delay,
            });
        }
    }

    let mut now = 0.0f64;
    let mut events: u64 = 0;
    loop {
        // Mark completions at the current time.
        for m in metas.iter_mut() {
            if m.end.is_none() && net.is_done(m.id) {
                m.end = Some(now.max(m.active_at));
            }
        }
        // Fixpoint: let every runnable device execute.
        let mut changed = true;
        while changed {
            changed = false;
            for d in 0..n {
                // Try to unblock.
                if let Some(cid) = blocked[d] {
                    if wait_done(phase, cid, d as u32, &flows, &net) {
                        tl[d].exposed_wait += now - wait_start[d];
                        if now > wait_start[d] {
                            trace.push(TraceEvent {
                                device: d as u32,
                                kind: TraceKind::Wait,
                                start: wait_start[d],
                                end: now,
                            });
                        }
                        tl[d].finish = tl[d].finish.max(now);
                        blocked[d] = None;
                        changed = true;
                    } else {
                        continue;
                    }
                }
                while blocked[d].is_none() && ready[d] <= now + eps {
                    let Some(ins) = phase.devices[d].instrs.get(ip[d]) else {
                        break;
                    };
                    match ins {
                        Instr::CommLaunch(cid) => {
                            let op = &phase.comms[cid.0 as usize];
                            // Coalesce this device's transfers by (src, dst).
                            let mut pair_bytes: HashMap<(u32, u32), u64> = HashMap::new();
                            for tr in &op.transfers {
                                let mine = if is_input(&tr.payload) {
                                    tr.to == d as u32
                                } else {
                                    tr.from == d as u32
                                };
                                if mine && !flows.contains_key(&(cid.0, tr.from, tr.to)) {
                                    *pair_bytes.entry((tr.from, tr.to)).or_insert(0) += tr.bytes;
                                }
                            }
                            let mut pairs: Vec<((u32, u32), u64)> =
                                pair_bytes.into_iter().collect();
                            pairs.sort_unstable();
                            for ((from, to), bytes) in pairs {
                                let (fid, active_at) = net.add_flow(now, from, to, bytes);
                                flows.insert((cid.0, from, to), fid);
                                metas.push(FlowMeta {
                                    id: fid,
                                    src: from,
                                    dst: to,
                                    active_at,
                                    end: if net.is_done(fid) {
                                        Some(active_at)
                                    } else {
                                        None
                                    },
                                });
                            }
                            ip[d] += 1;
                            changed = true;
                        }
                        Instr::CommWait(cid) => {
                            if wait_done(phase, *cid, d as u32, &flows, &net) {
                                ip[d] += 1;
                                changed = true;
                            } else {
                                blocked[d] = Some(*cid);
                                wait_start[d] = now;
                                ip[d] += 1;
                            }
                        }
                        Instr::Attn { .. }
                        | Instr::AttnBwd { .. }
                        | Instr::Reduce { .. }
                        | Instr::Copy { .. } => {
                            let (base, kind) = match ins {
                                Instr::Attn { flops, .. } => (
                                    *flops as f64 / eff + cluster.kernel_overhead,
                                    TraceKind::Attn,
                                ),
                                Instr::AttnBwd { flops, .. } => (
                                    *flops as f64 / eff + cluster.kernel_overhead,
                                    TraceKind::AttnBwd,
                                ),
                                Instr::Reduce { bytes, .. } => (
                                    *bytes as f64 / cluster.mem_bw + cluster.kernel_overhead,
                                    TraceKind::Reduce,
                                ),
                                Instr::Copy { bytes } => (
                                    *bytes as f64 / cluster.mem_bw + cluster.kernel_overhead,
                                    TraceKind::Copy,
                                ),
                                _ => unreachable!("compute arm"),
                            };
                            // A straggler fault stretches the kernel. The
                            // extension is traced as its own `Straggle`
                            // segment (and counted in the compute buckets)
                            // so un-faulted runs stay bitwise unchanged.
                            let extra = if slow[d] > 1.0 {
                                base * (slow[d] - 1.0) * jitter(spec.seed, d as u32, ip[d])
                            } else {
                                0.0
                            };
                            let dur = base + extra;
                            match kind {
                                TraceKind::Attn | TraceKind::AttnBwd => tl[d].attn += dur,
                                TraceKind::Reduce => tl[d].reduce += dur,
                                _ => tl[d].copy += dur,
                            }
                            trace.push(TraceEvent {
                                device: d as u32,
                                kind,
                                start: now,
                                end: now + base,
                            });
                            if extra > 0.0 {
                                trace.push(TraceEvent {
                                    device: d as u32,
                                    kind: TraceKind::Straggle,
                                    start: now + base,
                                    end: now + dur,
                                });
                            }
                            busy[d].push((now, now + dur));
                            ready[d] = now + dur;
                            tl[d].finish = tl[d].finish.max(now + dur);
                            ip[d] += 1;
                            changed = true;
                        }
                    }
                }
            }
        }

        // Done?
        let all_done =
            (0..n).all(|d| ip[d] >= phase.devices[d].instrs.len() && blocked[d].is_none());
        if all_done && (0..n).all(|d| ready[d] <= now + eps) {
            break;
        }

        // Next event: earliest device wake-up or network event.
        let mut next: Option<f64> = None;
        for d in 0..n {
            if blocked[d].is_none() && ready[d] > now + eps {
                next = Some(next.map_or(ready[d], |x: f64| x.min(ready[d])));
            }
        }
        if let Some(t) = net.next_event() {
            next = Some(next.map_or(t, |x: f64| x.min(t)));
        }
        let Some(t) = next else {
            return Err(DcpError::invalid_plan(
                "simulation deadlock: blocked devices with no pending events",
            ));
        };
        net.advance_to(t);
        now = t;
        events += 1;
    }

    // Interval accounting: per device, comm_active = |union of its flow
    // intervals|, overlap = |union(flows) ∩ union(busy)|.
    let mut per_dev_flows: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    for m in &metas {
        let end = m.end.unwrap_or(now).max(m.active_at);
        if end > m.active_at {
            if (m.src as usize) < n {
                per_dev_flows[m.src as usize].push((m.active_at, end));
            }
            if (m.dst as usize) < n {
                per_dev_flows[m.dst as usize].push((m.active_at, end));
            }
        }
    }
    for d in 0..n {
        let fu = union_intervals(&mut per_dev_flows[d]);
        let bu = union_intervals(&mut busy[d]);
        tl[d].comm_active = total_len(&fu);
        tl[d].overlap = intersect_len(&fu, &bu);
    }

    // Transfer events (one per flow, attributed to the receiving device).
    for m in &metas {
        let end = m.end.unwrap_or(now).max(m.active_at);
        if end > m.active_at && (m.dst as usize) < n {
            trace.push(TraceEvent {
                device: m.dst,
                kind: TraceKind::Transfer { from: m.src },
                start: m.active_at,
                end,
            });
        }
    }
    trace.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("no NaN"));

    let makespan = tl.iter().map(|t| t.finish).fold(0.0, f64::max);
    let net_stats = net.stats();
    Ok((
        PhaseSim {
            makespan,
            devices: tl,
        },
        trace,
        SimCounters {
            events,
            flows: metas.len() as u64,
            recomputes: net_stats.recomputes,
            touched_flows: net_stats.touched_flows,
        },
    ))
}

fn wait_done(
    phase: &PhasePlan,
    cid: CommId,
    dev: u32,
    flows: &HashMap<(u32, u32, u32), FlowId>,
    net: &Network,
) -> bool {
    let op = &phase.comms[cid.0 as usize];
    op.transfers.iter().all(|tr| {
        if tr.to != dev {
            return true;
        }
        match flows.get(&(cid.0, tr.from, tr.to)) {
            Some(f) => net.is_done(*f),
            None => false,
        }
    })
}

fn union_intervals(v: &mut [(f64, f64)]) -> Vec<(f64, f64)> {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
    let mut out: Vec<(f64, f64)> = Vec::new();
    for &(s, e) in v.iter() {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_len(v: &[(f64, f64)]) -> f64 {
    v.iter().map(|(s, e)| e - s).sum()
}

fn intersect_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut total = 0.0;
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e > s {
            total += e - s;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Simulates the forward then the backward phase of `plan`.
///
/// # Errors
///
/// Propagates phase-simulation failures.
pub fn simulate_plan(cluster: &ClusterSpec, plan: &ExecutionPlan) -> DcpResult<PlanSim> {
    Ok(PlanSim {
        fwd: simulate_phase(cluster, &plan.fwd)?,
        bwd: simulate_phase(cluster, &plan.bwd)?,
    })
}

/// Like [`simulate_plan`] with fault injection in both phases. The
/// backward phase draws straggler jitter from a salted seed so its
/// perturbations are independent of the forward phase's while remaining a
/// pure function of `spec.seed`.
///
/// # Errors
///
/// Propagates phase-simulation failures.
pub fn simulate_plan_faulted(
    cluster: &ClusterSpec,
    plan: &ExecutionPlan,
    spec: &FaultSpec,
) -> DcpResult<PlanSim> {
    let bwd_spec = FaultSpec {
        seed: spec.seed ^ 0xD1B5_4A32_D192_ED03,
        faults: spec.faults.clone(),
    };
    Ok(PlanSim {
        fwd: simulate_phase_faulted(cluster, &plan.fwd, spec)?.0,
        bwd: simulate_phase_faulted(cluster, &plan.bwd, &bwd_spec)?.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::{BatchLayout, BlockConfig};
    use dcp_mask::MaskSpec;
    use dcp_sched::{build_plan, Placement, ScheduleConfig};
    use dcp_types::AttnSpec;

    fn layout(len: u32, bs: u32) -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: bs,
                head_blocks: 1,
            },
            &[(len, MaskSpec::Causal)],
        )
        .unwrap()
    }

    fn ring_placement(l: &BatchLayout, n: u32) -> Placement {
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        }
    }

    #[test]
    fn local_plan_time_is_pure_compute() {
        let l = layout(4096, 1024);
        let p = Placement::all_on_zero(&l, 1);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let sim = simulate_phase(&c, &plan.fwd).unwrap();
        let flops: u64 = l.comp_blocks.iter().map(|b| b.flops).sum();
        let expect = flops as f64 / c.effective_flops() + c.kernel_overhead;
        assert!((sim.makespan - expect).abs() < 1e-12);
        assert_eq!(sim.devices[0].exposed_wait, 0.0);
        assert_eq!(sim.devices[0].comm_active, 0.0);
    }

    #[test]
    fn makespan_bounded_below_by_compute_and_comm() {
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1); // 4 devices used of 8
        let sim = simulate_phase(&c, &plan.fwd).unwrap();
        let comp_lb = plan
            .fwd
            .comp_loads()
            .iter()
            .map(|&f| f as f64 / c.effective_flops())
            .fold(0.0, f64::max);
        assert!(sim.makespan >= comp_lb, "{} < {}", sim.makespan, comp_lb);
        // Communication happened and some of it overlapped.
        let any_comm: f64 = sim.devices.iter().map(|d| d.comm_active).sum();
        assert!(any_comm > 0.0);
    }

    #[test]
    fn more_divisions_improve_overlap() {
        let l = layout(65536, 1024);
        let p = ring_placement(&l, 8);
        let c = ClusterSpec::p4de(1);
        let t1 = {
            let plan = build_plan(
                &l,
                &p,
                &ScheduleConfig {
                    divisions: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            simulate_phase(&c, &plan.fwd).unwrap().makespan
        };
        let t4 = {
            let plan = build_plan(
                &l,
                &p,
                &ScheduleConfig {
                    divisions: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            simulate_phase(&c, &plan.fwd).unwrap().makespan
        };
        // With one division nothing overlaps (all comm waits precede all
        // compute of remote blocks); four divisions must not be slower.
        assert!(t4 <= t1 * 1.001, "T=4 {t4} vs T=1 {t1}");
    }

    #[test]
    fn cross_node_placement_slower_than_single_node() {
        let l = layout(32768, 1024);
        // 8 devices within one node vs 8 devices spread across 4 nodes
        // (2 per node).
        let p_intra = ring_placement(&l, 8);
        let c_intra = ClusterSpec::p4de(1);
        let plan = build_plan(&l, &p_intra, &ScheduleConfig::default()).unwrap();
        let t_intra = simulate_phase(&c_intra, &plan.fwd).unwrap().makespan;
        let mut c_spread = ClusterSpec::p4de(4);
        c_spread.devices_per_node = 2;
        let t_spread = simulate_phase(&c_spread, &plan.fwd).unwrap().makespan;
        assert!(
            t_spread > t_intra,
            "cross-node {t_spread} should exceed intra {t_intra}"
        );
    }

    #[test]
    fn backward_slower_than_forward() {
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let sim = simulate_plan(&c, &plan).unwrap();
        assert!(sim.bwd.makespan > sim.fwd.makespan);
        assert!((sim.total() - (sim.fwd.makespan + sim.bwd.makespan)).abs() < 1e-15);
    }

    #[test]
    fn deadlock_is_detected() {
        // Handcraft a stream waiting on a partial op that nobody launches.
        use dcp_sched::{CommOp, DeviceStream, Transfer};
        let phase = PhasePlan {
            comms: vec![CommOp {
                transfers: vec![Transfer {
                    from: 1,
                    to: 0,
                    payload: Payload::PartialO(dcp_blocks::TokenBlockId(0), 1),
                    bytes: 100,
                }],
            }],
            devices: vec![
                DeviceStream {
                    device: 0,
                    instrs: vec![Instr::CommWait(CommId(0))],
                    buffer: Default::default(),
                },
                DeviceStream {
                    device: 1,
                    instrs: vec![],
                    buffer: Default::default(),
                },
            ],
        };
        let c = ClusterSpec::p4de(1);
        assert!(simulate_phase(&c, &phase).is_err());
    }

    #[test]
    fn interval_helpers() {
        let mut v = vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)];
        let u = union_intervals(&mut v);
        assert_eq!(u, vec![(0.0, 2.0), (3.0, 4.0)]);
        assert!((total_len(&u) - 3.0).abs() < 1e-12);
        let b = vec![(1.5, 3.5)];
        assert!((intersect_len(&u, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fault_spec_is_bitwise_identical() {
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let (base, base_trace) = simulate_phase_traced(&c, &plan.fwd).unwrap();
        let (faulted, faulted_trace) =
            simulate_phase_faulted(&c, &plan.fwd, &FaultSpec::none()).unwrap();
        assert_eq!(base, faulted);
        assert_eq!(base_trace, faulted_trace);
    }

    #[test]
    fn straggler_stretches_kernels_and_makespan() {
        use crate::fault::Fault;
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let base = simulate_phase(&c, &plan.fwd).unwrap();
        let spec = FaultSpec {
            seed: 42,
            faults: vec![Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            }],
        };
        let (sim, trace) = simulate_phase_faulted(&c, &plan.fwd, &spec).unwrap();
        // Device 0's compute roughly quadruples (x4 with +-10% jitter per
        // kernel), and the makespan grows.
        assert!(sim.devices[0].compute() > base.devices[0].compute() * 3.5);
        assert!(sim.makespan > base.makespan * 1.5);
        let straggles: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Straggle))
            .collect();
        assert!(!straggles.is_empty());
        assert!(straggles.iter().all(|e| e.device == 0));
    }

    #[test]
    fn degraded_link_costs_makespan() {
        use crate::fault::Fault;
        let l = layout(32768, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let base = simulate_phase(&c, &plan.fwd).unwrap();
        // Every link into device 0 collapses to 1% bandwidth.
        let spec = FaultSpec {
            seed: 0,
            faults: (1..4)
                .map(|s| Fault::DegradedLink {
                    src: s,
                    dst: 0,
                    factor: 0.01,
                })
                .collect(),
        };
        let (sim, _) = simulate_phase_faulted(&c, &plan.fwd, &spec).unwrap();
        assert!(
            sim.makespan > base.makespan * 1.05,
            "degraded ingress should cost makespan: {} vs {}",
            sim.makespan,
            base.makespan
        );
    }

    #[test]
    fn flapping_with_full_duty_matches_constant_degradation() {
        use crate::fault::Fault;
        let l = layout(32768, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let constant = FaultSpec {
            seed: 0,
            faults: vec![Fault::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.05,
            }],
        };
        let flapping = FaultSpec {
            seed: 0,
            faults: vec![Fault::FlappingLink {
                src: 1,
                dst: 0,
                period_s: 0.001,
                duty: 1.0,
                factor: 0.05,
            }],
        };
        let (a, _) = simulate_phase_faulted(&c, &plan.fwd, &constant).unwrap();
        let (b, _) = simulate_phase_faulted(&c, &plan.fwd, &flapping).unwrap();
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.devices, b.devices);
    }

    #[test]
    fn flapping_link_costs_makespan_less_than_constant() {
        use crate::fault::Fault;
        let l = layout(32768, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let base = simulate_phase(&c, &plan.fwd).unwrap();
        let mk = |fault: fn(u32) -> Fault| FaultSpec {
            seed: 0,
            faults: (1..4).map(fault).collect(),
        };
        // Degraded 99% of each cycle at 1000x slowdown: ~90x mean slowdown,
        // harsh enough to dominate compute overlap, yet the 1% healthy
        // windows still beat an always-degraded link.
        let flap = mk(|s| Fault::FlappingLink {
            src: s,
            dst: 0,
            period_s: 1e-4,
            duty: 0.99,
            factor: 0.001,
        });
        let constant = mk(|s| Fault::DegradedLink {
            src: s,
            dst: 0,
            factor: 0.001,
        });
        let (flapped, _) = simulate_phase_faulted(&c, &plan.fwd, &flap).unwrap();
        let (degraded, _) = simulate_phase_faulted(&c, &plan.fwd, &constant).unwrap();
        assert!(
            flapped.makespan > base.makespan,
            "flapping ingress should cost makespan: {} vs {}",
            flapped.makespan,
            base.makespan
        );
        assert!(
            flapped.makespan < degraded.makespan,
            "99% duty should hurt less than constant degradation: {} vs {}",
            flapped.makespan,
            degraded.makespan
        );
    }

    #[test]
    fn delayed_start_shifts_the_device() {
        use crate::fault::Fault;
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let base = simulate_phase(&c, &plan.fwd).unwrap();
        let delay = 0.25;
        let spec = FaultSpec {
            seed: 0,
            faults: vec![Fault::DelayedStart {
                device: 2,
                delay_s: delay,
            }],
        };
        let (sim, trace) = simulate_phase_faulted(&c, &plan.fwd, &spec).unwrap();
        assert!(sim.makespan >= base.makespan + delay * 0.9);
        let d = trace
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Delay))
            .expect("delay event traced");
        assert_eq!(d.device, 2);
        assert_eq!(d.start, 0.0);
        assert_eq!(d.end, delay);
        // Device 2 executes nothing before the delay elapses.
        assert!(trace
            .iter()
            .filter(|e| e.device == 2 && !matches!(e.kind, TraceKind::Delay))
            .all(|e| e.start >= delay - 1e-12));
    }

    #[test]
    fn fault_injection_is_deterministic_in_the_seed() {
        use crate::fault::Fault;
        let l = layout(16384, 1024);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let c = ClusterSpec::p4de(1);
        let spec = FaultSpec {
            seed: 1234,
            faults: vec![
                Fault::Straggler {
                    device: 1,
                    slowdown: 3.0,
                },
                Fault::FailedLink { src: 2, dst: 0 },
                Fault::DelayedStart {
                    device: 3,
                    delay_s: 0.01,
                },
            ],
        };
        let a = simulate_plan_faulted(&c, &plan, &spec).unwrap();
        let b = simulate_plan_faulted(&c, &plan, &spec).unwrap();
        assert_eq!(a, b);
        // A different seed perturbs the straggler jitter.
        let other = FaultSpec {
            seed: 99,
            faults: spec.faults.clone(),
        };
        let c2 = simulate_plan_faulted(&c, &plan, &other).unwrap();
        assert_ne!(a.fwd.makespan.to_bits(), c2.fwd.makespan.to_bits());
    }

    #[test]
    fn rejects_plan_larger_than_cluster() {
        let l = layout(4096, 512);
        let p = ring_placement(&l, 8);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let tiny = ClusterSpec::single_node(4);
        assert!(simulate_phase(&tiny, &plan.fwd).is_err());
    }

    #[test]
    fn rejects_degenerate_cluster() {
        let l = layout(4096, 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let mut c = ClusterSpec::p4de(1);
        c.inter_bw = 0.0;
        let err = simulate_phase(&c, &plan.fwd).unwrap_err();
        assert!(matches!(err, DcpError::InvalidArgument(_)), "{err:?}");
    }

    #[test]
    fn incremental_and_scratch_engines_agree_bitwise_on_plans() {
        let l = layout(32768, 1024);
        let p = ring_placement(&l, 8);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        for cluster in [ClusterSpec::p4de(1), {
            let mut c = ClusterSpec::p4de(4);
            c.devices_per_node = 2;
            c
        }] {
            let (inc, ci) = simulate_phase_counted(&cluster, &plan.fwd).unwrap();
            let (scr, cs) = simulate_phase_scratch(&cluster, &plan.fwd).unwrap();
            assert_eq!(inc.makespan.to_bits(), scr.makespan.to_bits());
            assert_eq!(inc.devices, scr.devices);
            assert_eq!(ci.events, cs.events);
            assert_eq!(ci.flows, cs.flows);
            assert!(ci.touched_flows <= cs.touched_flows);
        }
    }

    #[test]
    fn topology_aware_simulation_sees_oversubscription() {
        // The same cross-node-heavy plan is slower behind a 16x
        // oversubscribed spine than on the flat fabric.
        let l = layout(65536, 1024);
        // 8 devices, one per node, on an 8-node cluster: every ring hop is
        // cross-node and half of them cross the leaf boundary.
        let p = ring_placement(&l, 8);
        let mut flat = ClusterSpec::p4de(8);
        flat.devices_per_node = 1;
        let mut spine = ClusterSpec::p4de_spine(8, 4, 16.0);
        spine.devices_per_node = 1;
        let t_flat = simulate_phase(&flat, &plan_of(&l, &p).fwd)
            .unwrap()
            .makespan;
        let t_spine = simulate_phase(&spine, &plan_of(&l, &p).fwd)
            .unwrap()
            .makespan;
        assert!(
            t_spine > t_flat,
            "oversubscribed spine should cost makespan: {t_spine} vs {t_flat}"
        );
    }

    fn plan_of(l: &BatchLayout, p: &Placement) -> ExecutionPlan {
        build_plan(l, p, &ScheduleConfig::default()).unwrap()
    }
}
