//! A fluid-flow network with max-min fair bandwidth sharing.
//!
//! Flows are point-to-point transfers. Each flow consumes one unit of
//! capacity on every *resource* along its path:
//!
//! - intra-node (`src` and `dst` on the same node): the per-device NVSwitch
//!   egress of `src` and ingress of `dst`;
//! - inter-node: the per-node NIC egress of the source node and NIC ingress
//!   of the destination node (shared by all devices of the node).
//!
//! Rates are allocated by progressive filling (water-filling): repeatedly
//! find the resource with the smallest fair share and freeze its flows at
//! that rate. This is the classic max-min fair allocation; it captures the
//! NIC-contention effects that motivate LoongTrain's double-ring and DCP's
//! hierarchical placement.

use std::collections::HashMap;

use dcp_types::{ClusterSpec, DeviceId};

/// Identifies a capacity-constrained port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    DevEgress(u32),
    DevIngress(u32),
    NicEgress(u32),
    NicIngress(u32),
}

/// Piecewise-constant flapping parameters attached to a flow: for the
/// first `duty` fraction of every `period`-second cycle (phase-aligned to
/// `t = 0`) the link retains only `factor` of its bandwidth.
#[derive(Debug, Clone, Copy)]
struct Flap {
    period: f64,
    duty: f64,
    factor: f64,
    /// Constant (non-flapping) factor on the same link, composed in.
    base: f64,
}

impl Flap {
    /// Effective rate multiplier at time `t`. Cycle positions within a
    /// relative epsilon of a boundary snap across it, so a flow advanced to
    /// a computed boundary time lands in the phase that *starts* there
    /// despite floating-point rounding.
    fn factor_at(&self, t: f64) -> f64 {
        let pos = t / self.period;
        let mut frac = pos - pos.floor();
        if 1.0 - frac < 1e-9 {
            frac = 0.0;
        }
        if frac + 1e-9 < self.duty {
            self.base * self.factor
        } else {
            self.base
        }
    }

    /// The next phase boundary strictly after `now`.
    fn next_boundary(&self, now: f64) -> f64 {
        let eps = self.period * 1e-9 + 1e-12;
        let cycle = (now / self.period).floor();
        for mult in [
            cycle + self.duty,
            cycle + 1.0,
            cycle + 1.0 + self.duty,
            cycle + 2.0,
        ] {
            let b = mult * self.period;
            if b > now + eps {
                return b;
            }
        }
        (cycle + 2.0) * self.period
    }
}

/// A transfer in flight.
#[derive(Debug, Clone)]
struct Flow {
    src: u32,
    dst: u32,
    remaining: f64,
    rate: f64,
    /// Time the flow starts moving data (creation + link latency).
    active_at: f64,
    /// Fault multiplier on this flow's achievable rate (degraded link).
    /// For flapping links this is the *current* effective factor and is
    /// refreshed at every phase boundary.
    factor: f64,
    /// Flapping parameters when the flow's link flaps.
    flap: Option<Flap>,
    done: bool,
}

/// Opaque flow handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// The fluid network simulator.
///
/// Time only moves forward: callers alternate [`Network::advance_to`] with
/// flow insertion/completion queries.
#[derive(Debug)]
pub struct Network {
    cluster: ClusterSpec,
    flows: Vec<Flow>,
    /// Fault-injected bandwidth multipliers per directed device pair.
    link_factors: HashMap<(u32, u32), f64>,
    /// Fault-injected flapping parameters per directed device pair.
    flapping: HashMap<(u32, u32), (f64, f64, f64)>,
    now: f64,
}

impl Network {
    /// An empty network over `cluster`.
    pub fn new(cluster: ClusterSpec) -> Self {
        Network {
            cluster,
            flows: Vec::new(),
            link_factors: HashMap::new(),
            flapping: HashMap::new(),
            now: 0.0,
        }
    }

    /// Degrades the directed link `src -> dst`: flows over it achieve only
    /// `factor` of their max-min fair share. Used by fault injection; a
    /// degraded flow still occupies its full share of port capacity (the
    /// bottleneck is the faulty link, not a lighter demand).
    pub fn set_link_factor(&mut self, src: u32, dst: u32, factor: f64) {
        self.link_factors
            .insert((src, dst), factor.clamp(1e-9, 1.0));
    }

    /// Makes the directed link `src -> dst` flap: for the first `duty`
    /// fraction of every `period_s`-second cycle (phase-aligned to
    /// `t = 0`), flows over it retain only `factor` of their share; a
    /// constant [`Network::set_link_factor`] on the same link composes
    /// multiplicatively. Callers must pass `period_s > 0` and
    /// `0 < duty < 1` (degenerate cases belong to the constant path).
    pub fn set_link_flapping(&mut self, src: u32, dst: u32, period_s: f64, duty: f64, factor: f64) {
        debug_assert!(period_s > 0.0 && duty > 0.0 && duty < 1.0);
        self.flapping
            .insert((src, dst), (period_s, duty, factor.clamp(1e-9, 1.0)));
    }

    /// Current simulation time of the network.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Adds a flow of `bytes` from `src` to `dst` at time `t` (must be
    /// `>= now`). The flow begins moving data after the link latency.
    /// Returns its id and the time it becomes active.
    pub fn add_flow(&mut self, t: f64, src: u32, dst: u32, bytes: u64) -> (FlowId, f64) {
        self.advance_to(t);
        let lat = self.cluster.latency(DeviceId(src), DeviceId(dst));
        let active_at = t + lat;
        let base = self.link_factors.get(&(src, dst)).copied().unwrap_or(1.0);
        let flap = self
            .flapping
            .get(&(src, dst))
            .map(|&(period, duty, factor)| Flap {
                period,
                duty,
                factor,
                base,
            });
        let factor = match &flap {
            Some(fl) => fl.factor_at(t),
            None => base,
        };
        self.flows.push(Flow {
            src,
            dst,
            remaining: bytes as f64,
            rate: 0.0,
            active_at,
            factor,
            flap,
            done: bytes == 0,
        });
        self.recompute();
        (FlowId(self.flows.len() - 1), active_at)
    }

    /// Whether the flow has delivered all its bytes.
    pub fn is_done(&self, f: FlowId) -> bool {
        self.flows[f.0].done
    }

    /// Advances network time to `t`, draining active flows at their current
    /// rates. Callers must not skip past completion or activation events
    /// (use [`Network::next_event`]).
    pub fn advance_to(&mut self, t: f64) {
        debug_assert!(
            t + 1e-12 >= self.now,
            "time went backwards: {t} < {}",
            self.now
        );
        let dt = (t - self.now).max(0.0);
        // Sweep even when `dt == 0`: a flow whose completion time is below
        // the floating-point resolution of `now` must still be completed,
        // or the event loop would spin at a frozen clock. "Done" therefore
        // means: would finish within a nanosecond at the current rate.
        let mut activated = false;
        for f in &mut self.flows {
            if f.done {
                continue;
            }
            if f.active_at <= self.now {
                f.remaining -= f.rate * dt;
                if f.remaining <= f.rate * 1e-9 + 1e-6 {
                    f.remaining = 0.0;
                    f.done = true;
                    activated = true; // rates must change
                }
            } else if f.active_at <= t {
                activated = true;
            }
        }
        self.now = t;
        // Refresh flapping factors at the new time; a phase change forces a
        // rate recomputation. The event loop never integrates across a
        // boundary because `next_event` caps at the next one.
        if !self.flapping.is_empty() {
            for f in &mut self.flows {
                if f.done {
                    continue;
                }
                if let Some(fl) = &f.flap {
                    let nf = fl.factor_at(t);
                    if nf != f.factor {
                        f.factor = nf;
                        activated = true;
                    }
                }
            }
        }
        if activated {
            self.recompute();
        }
    }

    /// The earliest future event (flow activation or completion), if any.
    pub fn next_event(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for f in &self.flows {
            if f.done {
                continue;
            }
            // A flapping flow's rate is only valid until its next phase
            // boundary, so the boundary caps the event horizon.
            if let Some(fl) = &f.flap {
                let b = fl.next_boundary(self.now);
                best = Some(best.map_or(b, |x: f64| x.min(b)));
            }
            let t = if f.active_at > self.now {
                f.active_at
            } else if f.rate > 0.0 {
                self.now + f.remaining / f.rate
            } else {
                continue;
            };
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
        best
    }

    /// Recomputes max-min fair rates for all active flows.
    fn recompute(&mut self) {
        // Collect unfrozen active flows and their resources.
        let mut cap: HashMap<Resource, f64> = HashMap::new();
        let mut members: HashMap<Resource, Vec<usize>> = HashMap::new();
        let mut unfrozen: Vec<usize> = Vec::new();
        let now = self.now;
        let intra_bw = self.cluster.intra_bw;
        let inter_bw = self.cluster.inter_bw;
        let resources: Vec<Vec<Resource>> = self
            .flows
            .iter()
            .map(|f| self.resources_of(f.src, f.dst))
            .collect();
        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.done {
                f.rate = 0.0;
                continue;
            }
            if f.active_at > now {
                f.rate = 0.0;
                continue;
            }
            unfrozen.push(i);
            for &r in &resources[i] {
                let c = match r {
                    Resource::DevEgress(_) | Resource::DevIngress(_) => intra_bw,
                    Resource::NicEgress(_) | Resource::NicIngress(_) => inter_bw,
                };
                cap.entry(r).or_insert(c);
                members.entry(r).or_default().push(i);
            }
        }
        let mut frozen: HashMap<usize, f64> = HashMap::new();
        let mut active_count: HashMap<Resource, usize> =
            members.iter().map(|(r, m)| (*r, m.len())).collect();
        while frozen.len() < unfrozen.len() {
            // Resource with the smallest fair share.
            let mut best: Option<(Resource, f64)> = None;
            for (&r, &count) in &active_count {
                if count == 0 {
                    continue;
                }
                let share = cap[&r] / count as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r, share));
                }
            }
            let Some((r, share)) = best else { break };
            // Freeze every unfrozen flow on r at `share`.
            let to_freeze: Vec<usize> = members[&r]
                .iter()
                .copied()
                .filter(|i| !frozen.contains_key(i))
                .collect();
            for i in to_freeze {
                frozen.insert(i, share);
                for &r2 in &resources[i] {
                    *cap.get_mut(&r2).expect("resource present") -= share;
                    *active_count.get_mut(&r2).expect("resource present") -= 1;
                }
            }
            active_count.insert(r, 0);
        }
        for (&i, &rate) in &frozen {
            self.flows[i].rate = rate * self.flows[i].factor;
        }
    }

    fn resources_of(&self, src: u32, dst: u32) -> Vec<Resource> {
        let ns = self.cluster.node_of(DeviceId(src)).0;
        let nd = self.cluster.node_of(DeviceId(dst)).0;
        if ns == nd {
            vec![Resource::DevEgress(src), Resource::DevIngress(dst)]
        } else {
            vec![Resource::NicEgress(ns), Resource::NicIngress(nd)]
        }
    }

    /// Current rate of a flow (testing / instrumentation).
    pub fn rate(&self, f: FlowId) -> f64 {
        self.flows[f.0].rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(net: &mut Network) -> f64 {
        while let Some(t) = net.next_event() {
            net.advance_to(t);
        }
        net.now()
    }

    #[test]
    fn single_intra_node_flow_runs_at_link_rate() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        let bytes = 3_000_000_000u64;
        let (f, _) = net.add_flow(0.0, 0, 1, bytes);
        let t = run_until_done(&mut net);
        assert!(net.is_done(f));
        let expect = lat + bytes as f64 / bw;
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn two_flows_sharing_egress_halve() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a1) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 0, 2, 1_000_000);
        net.advance_to(a1);
        // Both share device 0's egress.
        assert!((net.rate(f1) - c.intra_bw / 2.0).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw / 2.0).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_get_full_rate() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 2, 3, 1_000_000);
        net.advance_to(a);
        assert!((net.rate(f1) - c.intra_bw).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw).abs() < 1.0);
    }

    #[test]
    fn cross_node_flows_share_nic() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        // Four flows from node 0 to node 1, different device pairs: all
        // share the node NIC.
        let mut ids = Vec::new();
        for i in 0..4u32 {
            let (f, a) = net.add_flow(0.0, i, 8 + i, 1_000_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        for (f, _) in &ids {
            assert!((net.rate(*f) - c.inter_bw / 4.0).abs() < 1.0);
        }
    }

    #[test]
    fn intra_beats_inter_for_same_bytes() {
        let c = ClusterSpec::p4de(2);
        let bytes = 1_000_000_000u64;
        let mut n1 = Network::new(c.clone());
        n1.add_flow(0.0, 0, 1, bytes);
        let t_intra = run_until_done(&mut n1);
        let mut n2 = Network::new(c);
        n2.add_flow(0.0, 0, 8, bytes);
        let t_inter = run_until_done(&mut n2);
        assert!(t_intra < t_inter / 3.0, "intra {t_intra} inter {t_inter}");
    }

    #[test]
    fn conservation_all_flows_complete() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c);
        let mut ids = Vec::new();
        for i in 0..16u32 {
            // Non-decreasing start times (the network is forward-only).
            let (f, _) = net.add_flow((i / 6) as f64 * 1e-4, i % 16, (i * 7 + 3) % 16, 10_000_000);
            ids.push(f);
        }
        run_until_done(&mut net);
        for f in ids {
            assert!(net.is_done(f));
        }
        assert!(net.next_event().is_none());
    }

    #[test]
    fn rates_never_exceed_capacity() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        let mut ids = Vec::new();
        for i in 0..12u32 {
            let (f, a) = net.add_flow(0.0, i % 8, 8 + (i % 8), 500_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        let total: f64 = ids.iter().map(|(f, _)| net.rate(*f)).sum();
        assert!(total <= c.inter_bw * 1.0001, "NIC egress exceeded: {total}");
    }

    #[test]
    fn degraded_link_scales_rate_and_completion() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        net.set_link_factor(0, 1, 0.25);
        let bytes = 1_000_000_000u64;
        let (f, a) = net.add_flow(0.0, 0, 1, bytes);
        net.advance_to(a);
        assert!((net.rate(f) - bw * 0.25).abs() < 1.0);
        let t = run_until_done(&mut net);
        let expect = lat + bytes as f64 / (bw * 0.25);
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
        // The reverse direction is unaffected.
        let mut rev = Network::new(ClusterSpec::p4de(1));
        rev.set_link_factor(0, 1, 0.25);
        let (g, b) = rev.add_flow(0.0, 1, 0, bytes);
        rev.advance_to(b);
        assert!((rev.rate(g) - bw).abs() < 1.0);
    }

    /// Independent piecewise integration of a single flow over a flapping
    /// link at full nominal rate `bw`, starting at `start`.
    fn integrate_flapping(bytes: f64, bw: f64, start: f64, p: f64, duty: f64, factor: f64) -> f64 {
        let mut rem = bytes;
        let mut now = start;
        for _ in 0..1_000_000 {
            let mut cyc = (now / p).floor();
            let mut frac = now / p - cyc;
            // Same boundary snap as `Flap::factor_at`: a step landing a
            // rounding error short of a cycle edge belongs to the next cycle.
            if 1.0 - frac < 1e-9 {
                cyc += 1.0;
                frac = 0.0;
            }
            let (rate, boundary) = if frac + 1e-9 < duty {
                (bw * factor, (cyc + duty) * p)
            } else {
                (bw, (cyc + 1.0) * p)
            };
            let dt = rem / rate;
            if now + dt <= boundary + 1e-12 {
                return now + dt;
            }
            rem -= rate * (boundary - now);
            now = boundary;
        }
        panic!("integration did not converge");
    }

    #[test]
    fn flapping_link_matches_piecewise_integration() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let (p, duty, factor) = (0.003, 0.5, 0.25);
        let mut net = Network::new(c);
        net.set_link_flapping(0, 1, p, duty, factor);
        // Large enough to span several degrade/recover cycles.
        let bytes = 30_000_000_000u64;
        let (f, _) = net.add_flow(0.0, 0, 1, bytes);
        let t = run_until_done(&mut net);
        assert!(net.is_done(f));
        let expect = integrate_flapping(bytes as f64, bw, lat, p, duty, factor);
        assert!(
            (t - expect).abs() < 1e-7 * expect,
            "{t} vs piecewise {expect}"
        );
        // Sanity: slower than a clean link, faster than constantly degraded.
        let clean = lat + bytes as f64 / bw;
        let degraded = lat + bytes as f64 / (bw * factor);
        assert!(t > clean && t < degraded, "{clean} < {t} < {degraded}");
    }

    #[test]
    fn flapping_rate_toggles_at_phase_boundaries() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let (p, duty, factor) = (0.01, 0.4, 0.5);
        let mut net = Network::new(c);
        net.set_link_flapping(0, 1, p, duty, factor);
        let (f, a) = net.add_flow(0.0, 0, 1, 100_000_000_000);
        net.advance_to(a);
        // Inside the first degraded window.
        assert!((net.rate(f) - bw * factor).abs() < 1.0, "{}", net.rate(f));
        // Just past the duty boundary: recovered.
        net.advance_to(duty * p);
        assert!((net.rate(f) - bw).abs() < 1.0, "{}", net.rate(f));
        // Next cycle: degraded again.
        net.advance_to(p);
        assert!((net.rate(f) - bw * factor).abs() < 1.0, "{}", net.rate(f));
    }

    #[test]
    fn flapping_composes_with_constant_factor() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let mut net = Network::new(c);
        net.set_link_factor(0, 1, 0.5);
        net.set_link_flapping(0, 1, 0.01, 0.5, 0.5);
        let (f, a) = net.add_flow(0.0, 0, 1, 100_000_000_000);
        net.advance_to(a);
        assert!((net.rate(f) - bw * 0.25).abs() < 1.0, "{}", net.rate(f));
        net.advance_to(0.005);
        assert!((net.rate(f) - bw * 0.5).abs() < 1.0, "{}", net.rate(f));
    }

    #[test]
    fn zero_byte_flow_is_immediately_done() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c);
        let (f, _) = net.add_flow(0.0, 0, 1, 0);
        assert!(net.is_done(f));
    }
}
