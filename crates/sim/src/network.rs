//! A fluid-flow network with max-min fair bandwidth sharing.
//!
//! Flows are point-to-point transfers. Each flow consumes one unit of
//! capacity on every *resource* along its path:
//!
//! - intra-node (`src` and `dst` on the same node): the per-device NVSwitch
//!   egress of `src` and ingress of `dst`;
//! - inter-node: the NIC egress of the source and NIC ingress of the
//!   destination — one shared port per node, or one dedicated rail per
//!   device on rail-optimized fabrics ([`dcp_types::TopologySpec`]);
//! - additionally, for every switch tier the path crosses, the uplink
//!   egress of the source's group and uplink ingress of the destination's
//!   group at that tier.
//!
//! Rates are allocated by progressive filling (water-filling): repeatedly
//! find the resource with the smallest fair share and freeze its flows at
//! that rate. This is the classic max-min fair allocation; it captures the
//! NIC-contention effects that motivate LoongTrain's double-ring and DCP's
//! hierarchical placement.
//!
//! # Incremental engine
//!
//! The default engine recomputes rates *incrementally*: each flow caches its
//! resource list at insertion, each resource keeps a persistent member list,
//! and an event (activation, completion, fault-factor change) only re-runs
//! the water-fill over the connected component of the flow/resource
//! bipartite graph that the event touched. Rates outside the dirty component
//! are already the max-min fixpoint of their own component and cannot
//! change, so the restriction is exact — and because the component-local
//! fill performs the same freeze steps in the same share order with the same
//! arithmetic as a global fill would, it is *bitwise* identical to the
//! retained scratch engine ([`Network::use_scratch_engine`]), which rebuilds
//! everything from fresh hash maps on every event and serves as the
//! reference for tests and the scaling benchmark.

use std::collections::HashMap;

use dcp_types::{ClusterSpec, DeviceId};

/// Identifies a capacity-constrained port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    DevEgress(u32),
    DevIngress(u32),
    /// Keyed by node id, or by device id on rail-optimized fabrics.
    NicEgress(u32),
    NicIngress(u32),
    /// Uplink of tier-`.0` group `.1` into the tier above.
    TierEgress(u8, u32),
    TierIngress(u8, u32),
}

/// Piecewise-constant flapping parameters attached to a flow: for the
/// first `duty` fraction of every `period`-second cycle (phase-aligned to
/// `t = 0`) the link retains only `factor` of its bandwidth.
#[derive(Debug, Clone, Copy)]
struct Flap {
    period: f64,
    duty: f64,
    factor: f64,
    /// Constant (non-flapping) factor on the same link, composed in.
    base: f64,
}

impl Flap {
    /// Effective rate multiplier at time `t`. Cycle positions within a
    /// relative epsilon of a boundary snap across it, so a flow advanced to
    /// a computed boundary time lands in the phase that *starts* there
    /// despite floating-point rounding.
    fn factor_at(&self, t: f64) -> f64 {
        let pos = t / self.period;
        let mut frac = pos - pos.floor();
        if 1.0 - frac < 1e-9 {
            frac = 0.0;
        }
        if frac + 1e-9 < self.duty {
            self.base * self.factor
        } else {
            self.base
        }
    }

    /// The next phase boundary strictly after `now`.
    fn next_boundary(&self, now: f64) -> f64 {
        let eps = self.period * 1e-9 + 1e-12;
        let cycle = (now / self.period).floor();
        for mult in [
            cycle + self.duty,
            cycle + 1.0,
            cycle + 1.0 + self.duty,
            cycle + 2.0,
        ] {
            let b = mult * self.period;
            if b > now + eps {
                return b;
            }
        }
        (cycle + 2.0) * self.period
    }
}

/// A transfer in flight.
#[derive(Debug, Clone)]
struct Flow {
    src: u32,
    dst: u32,
    remaining: f64,
    rate: f64,
    /// Time the flow starts moving data (creation + link latency).
    active_at: f64,
    /// Fault multiplier on this flow's achievable rate (degraded link).
    /// For flapping links this is the *current* effective factor and is
    /// refreshed at every phase boundary.
    factor: f64,
    /// Flapping parameters when the flow's link flaps.
    flap: Option<Flap>,
    done: bool,
    /// Interned ids of the resources on this flow's path, cached at
    /// insertion (never recollected).
    resources: Vec<u32>,
    /// Whether the flow currently sits in its resources' member lists
    /// (joined at activation, left at completion).
    member: bool,
}

/// Opaque flow handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// Engine counters (instrumentation for the scaling benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Number of water-fill invocations.
    pub recomputes: u64,
    /// Total flows visited across all water-fills (component sizes summed;
    /// the scratch engine counts every live flow on every recompute).
    pub touched_flows: u64,
}

/// The fluid network simulator.
///
/// Time only moves forward: callers alternate [`Network::advance_to`] with
/// flow insertion/completion queries.
#[derive(Debug)]
pub struct Network {
    cluster: ClusterSpec,
    flows: Vec<Flow>,
    /// Fault-injected bandwidth multipliers per directed device pair.
    link_factors: HashMap<(u32, u32), f64>,
    /// Fault-injected flapping parameters per directed device pair.
    flapping: HashMap<(u32, u32), (f64, f64, f64)>,
    now: f64,
    /// Resource interner: every distinct port gets a dense id.
    res_ids: HashMap<Resource, u32>,
    /// Nominal capacity per resource id.
    res_cap: Vec<f64>,
    /// Member flows per resource id: flows that joined at activation and
    /// have not been compacted away after completing. Kept in activation
    /// order; stale (done) entries are skipped and pruned lazily.
    members: Vec<Vec<u32>>,
    /// Live (activated, not done) member count per resource id.
    nlive: Vec<u32>,
    /// Flows not yet done, in insertion order (includes pending ones).
    live_flows: Vec<u32>,
    /// Stale (done) entries currently in `live_flows`.
    live_dead: usize,
    /// Flows with flapping links, for the phase-refresh sweep.
    flap_flows: Vec<u32>,
    /// Use the retained scratch reference engine instead of the
    /// incremental one.
    scratch: bool,
    stats: NetStats,
    /// Epoch-stamped scratch state for the incremental water-fill, reused
    /// across recomputes so the steady state allocates nothing.
    epoch: u64,
    res_mark: Vec<u64>,
    flow_mark: Vec<u64>,
    frozen_mark: Vec<u64>,
    frozen_rate: Vec<f64>,
    wcap: Vec<f64>,
    wcount: Vec<u32>,
    comp_res: Vec<u32>,
    comp_flows: Vec<u32>,
    /// Flows whose state changed since the last recompute (seeds the dirty
    /// component).
    dirty: Vec<u32>,
}

impl Network {
    /// An empty network over `cluster`.
    pub fn new(cluster: ClusterSpec) -> Self {
        Network {
            cluster,
            flows: Vec::new(),
            link_factors: HashMap::new(),
            flapping: HashMap::new(),
            now: 0.0,
            res_ids: HashMap::new(),
            res_cap: Vec::new(),
            members: Vec::new(),
            nlive: Vec::new(),
            live_flows: Vec::new(),
            live_dead: 0,
            flap_flows: Vec::new(),
            scratch: false,
            stats: NetStats::default(),
            epoch: 0,
            res_mark: Vec::new(),
            flow_mark: Vec::new(),
            frozen_mark: Vec::new(),
            frozen_rate: Vec::new(),
            wcap: Vec::new(),
            wcount: Vec::new(),
            comp_res: Vec::new(),
            comp_flows: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Switches to the scratch reference engine: every event rebuilds the
    /// full allocation from fresh hash maps and recollected resource lists,
    /// like the pre-incremental simulator. Call before adding flows.
    pub fn use_scratch_engine(&mut self, on: bool) {
        debug_assert!(self.flows.is_empty(), "switch engines on an empty network");
        self.scratch = on;
    }

    /// Engine counters accumulated so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Degrades the directed link `src -> dst`: flows over it achieve only
    /// `factor` of their max-min fair share. Used by fault injection; a
    /// degraded flow still occupies its full share of port capacity (the
    /// bottleneck is the faulty link, not a lighter demand).
    pub fn set_link_factor(&mut self, src: u32, dst: u32, factor: f64) {
        self.link_factors
            .insert((src, dst), factor.clamp(1e-9, 1.0));
    }

    /// Makes the directed link `src -> dst` flap: for the first `duty`
    /// fraction of every `period_s`-second cycle (phase-aligned to
    /// `t = 0`), flows over it retain only `factor` of their share; a
    /// constant [`Network::set_link_factor`] on the same link composes
    /// multiplicatively. Callers must pass `period_s > 0` and
    /// `0 < duty < 1` (degenerate cases belong to the constant path).
    pub fn set_link_flapping(&mut self, src: u32, dst: u32, period_s: f64, duty: f64, factor: f64) {
        debug_assert!(period_s > 0.0 && duty > 0.0 && duty < 1.0);
        self.flapping
            .insert((src, dst), (period_s, duty, factor.clamp(1e-9, 1.0)));
    }

    /// Current simulation time of the network.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Adds a flow of `bytes` from `src` to `dst` at time `t` (must be
    /// `>= now`). The flow begins moving data after the link latency.
    /// Returns its id and the time it becomes active.
    pub fn add_flow(&mut self, t: f64, src: u32, dst: u32, bytes: u64) -> (FlowId, f64) {
        self.advance_to(t);
        let lat = self.cluster.latency(DeviceId(src), DeviceId(dst));
        let active_at = t + lat;
        let base = self.link_factors.get(&(src, dst)).copied().unwrap_or(1.0);
        let flap = self
            .flapping
            .get(&(src, dst))
            .map(|&(period, duty, factor)| Flap {
                period,
                duty,
                factor,
                base,
            });
        let factor = match &flap {
            Some(fl) => fl.factor_at(t),
            None => base,
        };
        let resources: Vec<u32> = Self::path_of(&self.cluster, src, dst)
            .into_iter()
            .map(|r| self.intern(r))
            .collect();
        let fi = self.flows.len();
        self.flows.push(Flow {
            src,
            dst,
            remaining: bytes as f64,
            rate: 0.0,
            active_at,
            factor,
            flap,
            done: bytes == 0,
            resources,
            member: false,
        });
        self.frozen_mark.push(0);
        self.frozen_rate.push(0.0);
        self.flow_mark.push(0);
        if !self.flows[fi].done {
            self.live_flows.push(fi as u32);
            if self.flows[fi].flap.is_some() {
                self.flap_flows.push(fi as u32);
            }
        }
        if self.scratch {
            // The reference engine recomputes on every insertion, like the
            // pre-incremental simulator (a pending flow leaves rates
            // unchanged, but the full rebuild cost is the point).
            self.recompute_scratch();
        } else if !self.flows[fi].done && active_at <= self.now {
            // Only possible with zero link latency; normally activation
            // happens inside a later `advance_to`.
            self.join(fi);
            self.dirty.clear();
            self.dirty.push(fi as u32);
            self.recompute_component();
        }
        (FlowId(fi), active_at)
    }

    /// Whether the flow has delivered all its bytes.
    pub fn is_done(&self, f: FlowId) -> bool {
        self.flows[f.0].done
    }

    /// Advances network time to `t`, draining active flows at their current
    /// rates. Callers must not skip past completion or activation events
    /// (use [`Network::next_event`]).
    pub fn advance_to(&mut self, t: f64) {
        debug_assert!(
            t + 1e-12 >= self.now,
            "time went backwards: {t} < {}",
            self.now
        );
        let dt = (t - self.now).max(0.0);
        // Sweep even when `dt == 0`: a flow whose completion time is below
        // the floating-point resolution of `now` must still be completed,
        // or the event loop would spin at a frozen clock. "Done" therefore
        // means: would finish within a nanosecond at the current rate.
        self.dirty.clear();
        let mut completed = false;
        for idx in 0..self.live_flows.len() {
            let fi = self.live_flows[idx] as usize;
            let f = &mut self.flows[fi];
            if f.done {
                continue;
            }
            if f.active_at <= self.now {
                f.remaining -= f.rate * dt;
                if f.remaining <= f.rate * 1e-9 + 1e-6 {
                    f.remaining = 0.0;
                    f.done = true;
                    f.rate = 0.0;
                    completed = true;
                    self.dirty.push(fi as u32);
                }
            } else if f.active_at <= t {
                // Newly activated.
                self.dirty.push(fi as u32);
            }
        }
        self.now = t;
        // Refresh flapping factors at the new time; a phase change forces a
        // rate recomputation. The event loop never integrates across a
        // boundary because `next_event` caps at the next one.
        if !self.flapping.is_empty() {
            for idx in 0..self.flap_flows.len() {
                let fi = self.flap_flows[idx] as usize;
                let f = &mut self.flows[fi];
                if f.done {
                    continue;
                }
                if let Some(fl) = &f.flap {
                    let nf = fl.factor_at(t);
                    if nf != f.factor {
                        f.factor = nf;
                        self.dirty.push(fi as u32);
                    }
                }
            }
        }
        if self.dirty.is_empty() {
            return;
        }
        // Membership updates before the recompute: completed flows leave,
        // newly activated flows join.
        for idx in 0..self.dirty.len() {
            let fi = self.dirty[idx] as usize;
            if self.flows[fi].done {
                self.leave(fi);
            } else if !self.flows[fi].member && self.flows[fi].active_at <= t {
                self.join(fi);
            }
        }
        if completed {
            self.live_dead += self.dirty.len(); // over-counts harmlessly
            if 2 * self.live_dead > self.live_flows.len() {
                let flows = &self.flows;
                self.live_flows.retain(|&fi| !flows[fi as usize].done);
                self.flap_flows.retain(|&fi| !flows[fi as usize].done);
                self.live_dead = 0;
            }
        }
        if self.scratch {
            self.recompute_scratch();
        } else {
            self.recompute_component();
        }
    }

    /// The earliest future event (flow activation or completion), if any.
    pub fn next_event(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        // The live index skips completed flows; the scratch engine scans
        // everything, like the pre-incremental simulator.
        let ids: &[u32] = &self.live_flows;
        let all: Vec<u32>;
        let ids = if self.scratch {
            all = (0..self.flows.len() as u32).collect();
            &all
        } else {
            ids
        };
        for &fi in ids {
            let f = &self.flows[fi as usize];
            if f.done {
                continue;
            }
            // A flapping flow's rate is only valid until its next phase
            // boundary, so the boundary caps the event horizon.
            if let Some(fl) = &f.flap {
                let b = fl.next_boundary(self.now);
                best = Some(best.map_or(b, |x: f64| x.min(b)));
            }
            let t = if f.active_at > self.now {
                f.active_at
            } else if f.rate > 0.0 {
                self.now + f.remaining / f.rate
            } else {
                continue;
            };
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
        best
    }

    /// Interns a resource, assigning a dense id and its nominal capacity.
    fn intern(&mut self, r: Resource) -> u32 {
        if let Some(&id) = self.res_ids.get(&r) {
            return id;
        }
        let id = self.res_cap.len() as u32;
        self.res_ids.insert(r, id);
        self.res_cap.push(Self::capacity_of(&self.cluster, r));
        self.members.push(Vec::new());
        self.nlive.push(0);
        self.res_mark.push(0);
        self.wcap.push(0.0);
        self.wcount.push(0);
        id
    }

    /// Joins a flow to the member lists of its resources (at activation).
    fn join(&mut self, fi: usize) {
        self.flows[fi].member = true;
        for k in 0..self.flows[fi].resources.len() {
            let r = self.flows[fi].resources[k] as usize;
            self.members[r].push(fi as u32);
            self.nlive[r] += 1;
        }
    }

    /// Removes a flow from its resources' live counts (at completion). The
    /// member vectors are pruned lazily once mostly stale, preserving
    /// activation order.
    fn leave(&mut self, fi: usize) {
        if !self.flows[fi].member {
            return;
        }
        self.flows[fi].member = false;
        for k in 0..self.flows[fi].resources.len() {
            let r = self.flows[fi].resources[k] as usize;
            self.nlive[r] -= 1;
            if self.members[r].len() >= 8 && self.members[r].len() as u32 >= 2 * self.nlive[r] + 4 {
                let mut v = std::mem::take(&mut self.members[r]);
                let flows = &self.flows;
                v.retain(|&f| !flows[f as usize].done);
                self.members[r] = v;
            }
        }
    }

    /// Recomputes max-min fair rates over the connected component(s) of the
    /// flow/resource graph touched by the flows in `self.dirty`.
    ///
    /// Exactness: the previous allocation is the max-min fixpoint of every
    /// component. An event only alters demand inside the components of the
    /// dirty flows, so all other rates are unchanged; within the dirty
    /// component the fill below performs the same freeze steps, in the same
    /// least-share-first order, with the same `cap - share` arithmetic as a
    /// global scratch fill restricted to that component — hence bitwise
    /// equality with the reference engine.
    fn recompute_component(&mut self) {
        self.stats.recomputes += 1;
        self.epoch += 1;
        let epoch = self.epoch;
        self.comp_res.clear();
        self.comp_flows.clear();
        // Seed with the dirty flows' resources (a completed flow no longer
        // counts toward demand but its ports still need new shares).
        for idx in 0..self.dirty.len() {
            let fi = self.dirty[idx] as usize;
            for k in 0..self.flows[fi].resources.len() {
                let r = self.flows[fi].resources[k] as usize;
                if self.res_mark[r] != epoch {
                    self.res_mark[r] = epoch;
                    self.comp_res.push(r as u32);
                }
            }
        }
        // BFS across the bipartite graph: resources reach their live member
        // flows, flows reach all their resources.
        let mut qi = 0;
        while qi < self.comp_res.len() {
            let r = self.comp_res[qi] as usize;
            qi += 1;
            let mut j = 0;
            while j < self.members[r].len() {
                let fi = self.members[r][j] as usize;
                j += 1;
                if self.flows[fi].done || self.flow_mark[fi] == epoch {
                    continue;
                }
                self.flow_mark[fi] = epoch;
                self.comp_flows.push(fi as u32);
                for k in 0..self.flows[fi].resources.len() {
                    let r2 = self.flows[fi].resources[k] as usize;
                    if self.res_mark[r2] != epoch {
                        self.res_mark[r2] = epoch;
                        self.comp_res.push(r2 as u32);
                    }
                }
            }
        }
        self.stats.touched_flows += self.comp_flows.len() as u64;
        // Progressive filling restricted to the component.
        for idx in 0..self.comp_res.len() {
            let r = self.comp_res[idx] as usize;
            self.wcap[r] = self.res_cap[r];
            self.wcount[r] = self.nlive[r];
        }
        let mut unfrozen = self.comp_flows.len();
        while unfrozen > 0 {
            // Resource with the smallest fair share.
            let mut best_r = usize::MAX;
            let mut best_s = f64::INFINITY;
            for idx in 0..self.comp_res.len() {
                let r = self.comp_res[idx] as usize;
                if self.wcount[r] == 0 {
                    continue;
                }
                let share = self.wcap[r] / self.wcount[r] as f64;
                if share < best_s {
                    best_s = share;
                    best_r = r;
                }
            }
            if best_r == usize::MAX {
                break;
            }
            // Freeze every unfrozen live flow on the bottleneck at `share`.
            let mut j = 0;
            while j < self.members[best_r].len() {
                let fi = self.members[best_r][j] as usize;
                j += 1;
                if self.flows[fi].done || self.frozen_mark[fi] == epoch {
                    continue;
                }
                self.frozen_mark[fi] = epoch;
                self.frozen_rate[fi] = best_s;
                unfrozen -= 1;
                for k in 0..self.flows[fi].resources.len() {
                    let r2 = self.flows[fi].resources[k] as usize;
                    self.wcap[r2] -= best_s;
                    self.wcount[r2] -= 1;
                }
            }
            self.wcount[best_r] = 0;
        }
        for idx in 0..self.comp_flows.len() {
            let fi = self.comp_flows[idx] as usize;
            let rate = if self.frozen_mark[fi] == self.epoch {
                self.frozen_rate[fi] * self.flows[fi].factor
            } else {
                0.0
            };
            self.flows[fi].rate = rate;
        }
    }

    /// The retained reference engine: rebuilds the full max-min allocation
    /// from scratch — fresh hash maps, resource lists recollected per flow —
    /// exactly like the pre-incremental simulator. Kept for the equivalence
    /// proptest and as the baseline of the scaling benchmark.
    fn recompute_scratch(&mut self) {
        self.stats.recomputes += 1;
        let mut cap: HashMap<Resource, f64> = HashMap::new();
        let mut members: HashMap<Resource, Vec<usize>> = HashMap::new();
        let mut unfrozen: Vec<usize> = Vec::new();
        let now = self.now;
        let resources: Vec<Vec<Resource>> = self
            .flows
            .iter()
            .map(|f| Self::path_of(&self.cluster, f.src, f.dst))
            .collect();
        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.done {
                f.rate = 0.0;
                continue;
            }
            if f.active_at > now {
                f.rate = 0.0;
                continue;
            }
            unfrozen.push(i);
            for &r in &resources[i] {
                cap.entry(r)
                    .or_insert_with(|| Self::capacity_of(&self.cluster, r));
                members.entry(r).or_default().push(i);
            }
        }
        self.stats.touched_flows += unfrozen.len() as u64;
        let mut frozen: HashMap<usize, f64> = HashMap::new();
        let mut active_count: HashMap<Resource, usize> =
            members.iter().map(|(r, m)| (*r, m.len())).collect();
        while frozen.len() < unfrozen.len() {
            // Resource with the smallest fair share.
            let mut best: Option<(Resource, f64)> = None;
            for (&r, &count) in &active_count {
                if count == 0 {
                    continue;
                }
                let share = cap[&r] / count as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r, share));
                }
            }
            let Some((r, share)) = best else { break };
            // Freeze every unfrozen flow on r at `share`.
            let to_freeze: Vec<usize> = members[&r]
                .iter()
                .copied()
                .filter(|i| !frozen.contains_key(i))
                .collect();
            for i in to_freeze {
                frozen.insert(i, share);
                for &r2 in &resources[i] {
                    *cap.get_mut(&r2).expect("resource present") -= share;
                    *active_count.get_mut(&r2).expect("resource present") -= 1;
                }
            }
            active_count.insert(r, 0);
        }
        for (&i, &rate) in &frozen {
            self.flows[i].rate = rate * self.flows[i].factor;
        }
    }

    /// The capacity-constrained ports on the path from `src` to `dst`.
    fn path_of(cluster: &ClusterSpec, src: u32, dst: u32) -> Vec<Resource> {
        let ns = cluster.node_of(DeviceId(src)).0;
        let nd = cluster.node_of(DeviceId(dst)).0;
        if ns == nd {
            return vec![Resource::DevEgress(src), Resource::DevIngress(dst)];
        }
        let (ke, ki) = if cluster.rail_optimized() {
            (src, dst)
        } else {
            (ns, nd)
        };
        let mut path = vec![Resource::NicEgress(ke), Resource::NicIngress(ki)];
        for i in 0..cluster.tiers().len() {
            let gs = cluster.tier_group(i, dcp_types::NodeId(ns));
            let gd = cluster.tier_group(i, dcp_types::NodeId(nd));
            if gs != gd {
                path.push(Resource::TierEgress(i as u8, gs));
                path.push(Resource::TierIngress(i as u8, gd));
            }
        }
        path
    }

    /// Nominal capacity of a resource.
    fn capacity_of(cluster: &ClusterSpec, r: Resource) -> f64 {
        match r {
            Resource::DevEgress(_) | Resource::DevIngress(_) => cluster.intra_bw,
            Resource::NicEgress(_) | Resource::NicIngress(_) => {
                if cluster.rail_optimized() {
                    cluster.inter_bw / cluster.devices_per_node as f64
                } else {
                    cluster.inter_bw
                }
            }
            Resource::TierEgress(i, _) | Resource::TierIngress(i, _) => {
                cluster.tiers()[i as usize].uplink_bw
            }
        }
    }

    /// Current rate of a flow (testing / instrumentation).
    pub fn rate(&self, f: FlowId) -> f64 {
        self.flows[f.0].rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(net: &mut Network) -> f64 {
        while let Some(t) = net.next_event() {
            net.advance_to(t);
        }
        net.now()
    }

    #[test]
    fn single_intra_node_flow_runs_at_link_rate() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        let bytes = 3_000_000_000u64;
        let (f, _) = net.add_flow(0.0, 0, 1, bytes);
        let t = run_until_done(&mut net);
        assert!(net.is_done(f));
        let expect = lat + bytes as f64 / bw;
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn two_flows_sharing_egress_halve() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a1) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 0, 2, 1_000_000);
        net.advance_to(a1);
        // Both share device 0's egress.
        assert!((net.rate(f1) - c.intra_bw / 2.0).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw / 2.0).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_get_full_rate() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 2, 3, 1_000_000);
        net.advance_to(a);
        assert!((net.rate(f1) - c.intra_bw).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw).abs() < 1.0);
    }

    #[test]
    fn cross_node_flows_share_nic() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        // Four flows from node 0 to node 1, different device pairs: all
        // share the node NIC.
        let mut ids = Vec::new();
        for i in 0..4u32 {
            let (f, a) = net.add_flow(0.0, i, 8 + i, 1_000_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        for (f, _) in &ids {
            assert!((net.rate(*f) - c.inter_bw / 4.0).abs() < 1.0);
        }
    }

    #[test]
    fn intra_beats_inter_for_same_bytes() {
        let c = ClusterSpec::p4de(2);
        let bytes = 1_000_000_000u64;
        let mut n1 = Network::new(c.clone());
        n1.add_flow(0.0, 0, 1, bytes);
        let t_intra = run_until_done(&mut n1);
        let mut n2 = Network::new(c);
        n2.add_flow(0.0, 0, 8, bytes);
        let t_inter = run_until_done(&mut n2);
        assert!(t_intra < t_inter / 3.0, "intra {t_intra} inter {t_inter}");
    }

    #[test]
    fn conservation_all_flows_complete() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c);
        let mut ids = Vec::new();
        for i in 0..16u32 {
            // Non-decreasing start times (the network is forward-only).
            let (f, _) = net.add_flow((i / 6) as f64 * 1e-4, i % 16, (i * 7 + 3) % 16, 10_000_000);
            ids.push(f);
        }
        run_until_done(&mut net);
        for f in ids {
            assert!(net.is_done(f));
        }
        assert!(net.next_event().is_none());
    }

    #[test]
    fn rates_never_exceed_capacity() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        let mut ids = Vec::new();
        for i in 0..12u32 {
            let (f, a) = net.add_flow(0.0, i % 8, 8 + (i % 8), 500_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        let total: f64 = ids.iter().map(|(f, _)| net.rate(*f)).sum();
        assert!(total <= c.inter_bw * 1.0001, "NIC egress exceeded: {total}");
    }

    #[test]
    fn degraded_link_scales_rate_and_completion() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        net.set_link_factor(0, 1, 0.25);
        let bytes = 1_000_000_000u64;
        let (f, a) = net.add_flow(0.0, 0, 1, bytes);
        net.advance_to(a);
        assert!((net.rate(f) - bw * 0.25).abs() < 1.0);
        let t = run_until_done(&mut net);
        let expect = lat + bytes as f64 / (bw * 0.25);
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
        // The reverse direction is unaffected.
        let mut rev = Network::new(ClusterSpec::p4de(1));
        rev.set_link_factor(0, 1, 0.25);
        let (g, b) = rev.add_flow(0.0, 1, 0, bytes);
        rev.advance_to(b);
        assert!((rev.rate(g) - bw).abs() < 1.0);
    }

    /// Independent piecewise integration of a single flow over a flapping
    /// link at full nominal rate `bw`, starting at `start`.
    fn integrate_flapping(bytes: f64, bw: f64, start: f64, p: f64, duty: f64, factor: f64) -> f64 {
        let mut rem = bytes;
        let mut now = start;
        for _ in 0..1_000_000 {
            let mut cyc = (now / p).floor();
            let mut frac = now / p - cyc;
            // Same boundary snap as `Flap::factor_at`: a step landing a
            // rounding error short of a cycle edge belongs to the next cycle.
            if 1.0 - frac < 1e-9 {
                cyc += 1.0;
                frac = 0.0;
            }
            let (rate, boundary) = if frac + 1e-9 < duty {
                (bw * factor, (cyc + duty) * p)
            } else {
                (bw, (cyc + 1.0) * p)
            };
            let dt = rem / rate;
            if now + dt <= boundary + 1e-12 {
                return now + dt;
            }
            rem -= rate * (boundary - now);
            now = boundary;
        }
        panic!("integration did not converge");
    }

    #[test]
    fn flapping_link_matches_piecewise_integration() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let (p, duty, factor) = (0.003, 0.5, 0.25);
        let mut net = Network::new(c);
        net.set_link_flapping(0, 1, p, duty, factor);
        // Large enough to span several degrade/recover cycles.
        let bytes = 30_000_000_000u64;
        let (f, _) = net.add_flow(0.0, 0, 1, bytes);
        let t = run_until_done(&mut net);
        assert!(net.is_done(f));
        let expect = integrate_flapping(bytes as f64, bw, lat, p, duty, factor);
        assert!(
            (t - expect).abs() < 1e-7 * expect,
            "{t} vs piecewise {expect}"
        );
        // Sanity: slower than a clean link, faster than constantly degraded.
        let clean = lat + bytes as f64 / bw;
        let degraded = lat + bytes as f64 / (bw * factor);
        assert!(t > clean && t < degraded, "{clean} < {t} < {degraded}");
    }

    #[test]
    fn flapping_rate_toggles_at_phase_boundaries() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let (p, duty, factor) = (0.01, 0.4, 0.5);
        let mut net = Network::new(c);
        net.set_link_flapping(0, 1, p, duty, factor);
        let (f, a) = net.add_flow(0.0, 0, 1, 100_000_000_000);
        net.advance_to(a);
        // Inside the first degraded window.
        assert!((net.rate(f) - bw * factor).abs() < 1.0, "{}", net.rate(f));
        // Just past the duty boundary: recovered.
        net.advance_to(duty * p);
        assert!((net.rate(f) - bw).abs() < 1.0, "{}", net.rate(f));
        // Next cycle: degraded again.
        net.advance_to(p);
        assert!((net.rate(f) - bw * factor).abs() < 1.0, "{}", net.rate(f));
    }

    #[test]
    fn flapping_composes_with_constant_factor() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let mut net = Network::new(c);
        net.set_link_factor(0, 1, 0.5);
        net.set_link_flapping(0, 1, 0.01, 0.5, 0.5);
        let (f, a) = net.add_flow(0.0, 0, 1, 100_000_000_000);
        net.advance_to(a);
        assert!((net.rate(f) - bw * 0.25).abs() < 1.0, "{}", net.rate(f));
        net.advance_to(0.005);
        assert!((net.rate(f) - bw * 0.5).abs() < 1.0, "{}", net.rate(f));
    }

    #[test]
    fn zero_byte_flow_is_immediately_done() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c);
        let (f, _) = net.add_flow(0.0, 0, 1, 0);
        assert!(net.is_done(f));
    }

    /// Drives the same adversarial flow schedule through both engines and
    /// requires bitwise-identical rates at every event and an identical
    /// completion time.
    #[test]
    fn incremental_engine_matches_scratch_bitwise() {
        for cluster in [
            ClusterSpec::p4de(2),
            ClusterSpec::p4de_rail(2),
            ClusterSpec::p4de_spine(4, 2, 4.0),
        ] {
            let mut inc = Network::new(cluster.clone());
            let mut scr = Network::new(cluster.clone());
            scr.use_scratch_engine(true);
            inc.set_link_factor(0, 9, 0.5);
            scr.set_link_factor(0, 9, 0.5);
            let n = cluster.num_devices();
            let mut ids = Vec::new();
            for i in 0..40u32 {
                let t = (i / 5) as f64 * 3e-5;
                let (src, dst) = (i % n, (i * 7 + 3) % n);
                let bytes = 1_000_000 + 97_000 * i as u64 % 5_000_000;
                let (fa, aa) = inc.add_flow(t, src, dst, bytes);
                let (fb, ab) = scr.add_flow(t, src, dst, bytes);
                assert_eq!(fa, fb);
                assert_eq!(aa.to_bits(), ab.to_bits());
                ids.push(fa);
            }
            loop {
                let (ea, eb) = (inc.next_event(), scr.next_event());
                assert_eq!(
                    ea.map(f64::to_bits),
                    eb.map(f64::to_bits),
                    "event divergence at t={}",
                    inc.now()
                );
                let Some(t) = ea else { break };
                inc.advance_to(t);
                scr.advance_to(t);
                for &f in &ids {
                    assert_eq!(
                        inc.rate(f).to_bits(),
                        scr.rate(f).to_bits(),
                        "rate divergence for {f:?} at t={t}"
                    );
                    assert_eq!(inc.is_done(f), scr.is_done(f));
                }
            }
            assert_eq!(inc.now().to_bits(), scr.now().to_bits());
            // The incremental engine must have touched fewer flows in total.
            assert!(inc.stats().touched_flows <= scr.stats().touched_flows);
        }
    }

    #[test]
    fn rail_optimized_removes_nic_contention() {
        let flat = ClusterSpec::p4de(2);
        let rail = ClusterSpec::p4de_rail(2);
        // Two cross-node flows from different local ranks: on the flat
        // fabric they halve the shared NIC; on rails each owns inter_bw/8.
        let mut nf = Network::new(flat.clone());
        let (f1, a) = nf.add_flow(0.0, 0, 8, 1_000_000_000);
        let (_f2, _) = nf.add_flow(0.0, 1, 9, 1_000_000_000);
        nf.advance_to(a);
        assert!((nf.rate(f1) - flat.inter_bw / 2.0).abs() < 1.0);
        let mut nr = Network::new(rail.clone());
        let (r1, a) = nr.add_flow(0.0, 0, 8, 1_000_000_000);
        let (r2, _) = nr.add_flow(0.0, 1, 9, 1_000_000_000);
        nr.advance_to(a);
        assert!((nr.rate(r1) - rail.inter_bw / 8.0).abs() < 1.0);
        assert!((nr.rate(r2) - rail.inter_bw / 8.0).abs() < 1.0);
    }

    #[test]
    fn oversubscribed_spine_throttles_cross_leaf_traffic() {
        // 8 nodes, 4 per leaf, 4x oversubscribed: the leaf uplink equals a
        // single node NIC, so four cross-leaf senders in one leaf get a
        // quarter NIC each while four same-leaf senders get a full NIC.
        let c = ClusterSpec::p4de_spine(8, 4, 4.0);
        let mut cross = Network::new(c.clone());
        let mut ids = Vec::new();
        for i in 0..4u32 {
            // Node i (leaf 0) to node 4+i (leaf 1): distinct NIC pairs.
            let (f, a) = cross.add_flow(0.0, i * 8, (4 + i) * 8, 1_000_000_000);
            ids.push((f, a));
        }
        cross.advance_to(ids[0].1);
        for (f, _) in &ids {
            assert!(
                (cross.rate(*f) - c.inter_bw / 4.0).abs() < 1.0,
                "cross-leaf rate {}",
                cross.rate(*f)
            );
        }
        let mut intra = Network::new(c.clone());
        let mut ids = Vec::new();
        for i in 0..2u32 {
            // Node i to node 2+i, all under leaf 0: no uplink involved.
            let (f, a) = intra.add_flow(0.0, i * 8, (2 + i) * 8, 1_000_000_000);
            ids.push((f, a));
        }
        intra.advance_to(ids[0].1);
        for (f, _) in &ids {
            assert!((intra.rate(*f) - c.inter_bw).abs() < 1.0);
        }
        // Latency also reflects the extra hop.
        let mut n = Network::new(c.clone());
        let (_, a_same_leaf) = n.add_flow(0.0, 0, 8, 1);
        let (_, a_cross_leaf) = n.add_flow(0.0, 16, 4 * 8, 1);
        assert!(a_cross_leaf > a_same_leaf);
    }

    #[test]
    fn stale_members_are_compacted() {
        // Many short flows over the same ports: member lists must not grow
        // without bound.
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c);
        for i in 0..200 {
            net.add_flow(i as f64 * 1e-3, 0, 1, 1_000);
            run_until_done(&mut net);
        }
        let max_members = net.members.iter().map(Vec::len).max().unwrap_or(0);
        assert!(max_members < 32, "stale members retained: {max_members}");
    }
}
