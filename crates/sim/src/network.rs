//! A fluid-flow network with max-min fair bandwidth sharing.
//!
//! Flows are point-to-point transfers. Each flow consumes one unit of
//! capacity on every *resource* along its path:
//!
//! - intra-node (`src` and `dst` on the same node): the per-device NVSwitch
//!   egress of `src` and ingress of `dst`;
//! - inter-node: the per-node NIC egress of the source node and NIC ingress
//!   of the destination node (shared by all devices of the node).
//!
//! Rates are allocated by progressive filling (water-filling): repeatedly
//! find the resource with the smallest fair share and freeze its flows at
//! that rate. This is the classic max-min fair allocation; it captures the
//! NIC-contention effects that motivate LoongTrain's double-ring and DCP's
//! hierarchical placement.

use std::collections::HashMap;

use dcp_types::{ClusterSpec, DeviceId};

/// Identifies a capacity-constrained port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    DevEgress(u32),
    DevIngress(u32),
    NicEgress(u32),
    NicIngress(u32),
}

/// A transfer in flight.
#[derive(Debug, Clone)]
struct Flow {
    src: u32,
    dst: u32,
    remaining: f64,
    rate: f64,
    /// Time the flow starts moving data (creation + link latency).
    active_at: f64,
    /// Fault multiplier on this flow's achievable rate (degraded link).
    factor: f64,
    done: bool,
}

/// Opaque flow handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// The fluid network simulator.
///
/// Time only moves forward: callers alternate [`Network::advance_to`] with
/// flow insertion/completion queries.
#[derive(Debug)]
pub struct Network {
    cluster: ClusterSpec,
    flows: Vec<Flow>,
    /// Fault-injected bandwidth multipliers per directed device pair.
    link_factors: HashMap<(u32, u32), f64>,
    now: f64,
}

impl Network {
    /// An empty network over `cluster`.
    pub fn new(cluster: ClusterSpec) -> Self {
        Network {
            cluster,
            flows: Vec::new(),
            link_factors: HashMap::new(),
            now: 0.0,
        }
    }

    /// Degrades the directed link `src -> dst`: flows over it achieve only
    /// `factor` of their max-min fair share. Used by fault injection; a
    /// degraded flow still occupies its full share of port capacity (the
    /// bottleneck is the faulty link, not a lighter demand).
    pub fn set_link_factor(&mut self, src: u32, dst: u32, factor: f64) {
        self.link_factors
            .insert((src, dst), factor.clamp(1e-9, 1.0));
    }

    /// Current simulation time of the network.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Adds a flow of `bytes` from `src` to `dst` at time `t` (must be
    /// `>= now`). The flow begins moving data after the link latency.
    /// Returns its id and the time it becomes active.
    pub fn add_flow(&mut self, t: f64, src: u32, dst: u32, bytes: u64) -> (FlowId, f64) {
        self.advance_to(t);
        let lat = self.cluster.latency(DeviceId(src), DeviceId(dst));
        let active_at = t + lat;
        let factor = self.link_factors.get(&(src, dst)).copied().unwrap_or(1.0);
        self.flows.push(Flow {
            src,
            dst,
            remaining: bytes as f64,
            rate: 0.0,
            active_at,
            factor,
            done: bytes == 0,
        });
        self.recompute();
        (FlowId(self.flows.len() - 1), active_at)
    }

    /// Whether the flow has delivered all its bytes.
    pub fn is_done(&self, f: FlowId) -> bool {
        self.flows[f.0].done
    }

    /// Advances network time to `t`, draining active flows at their current
    /// rates. Callers must not skip past completion or activation events
    /// (use [`Network::next_event`]).
    pub fn advance_to(&mut self, t: f64) {
        debug_assert!(
            t + 1e-12 >= self.now,
            "time went backwards: {t} < {}",
            self.now
        );
        let dt = (t - self.now).max(0.0);
        // Sweep even when `dt == 0`: a flow whose completion time is below
        // the floating-point resolution of `now` must still be completed,
        // or the event loop would spin at a frozen clock. "Done" therefore
        // means: would finish within a nanosecond at the current rate.
        let mut activated = false;
        for f in &mut self.flows {
            if f.done {
                continue;
            }
            if f.active_at <= self.now {
                f.remaining -= f.rate * dt;
                if f.remaining <= f.rate * 1e-9 + 1e-6 {
                    f.remaining = 0.0;
                    f.done = true;
                    activated = true; // rates must change
                }
            } else if f.active_at <= t {
                activated = true;
            }
        }
        self.now = t;
        if activated {
            self.recompute();
        }
    }

    /// The earliest future event (flow activation or completion), if any.
    pub fn next_event(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for f in &self.flows {
            if f.done {
                continue;
            }
            let t = if f.active_at > self.now {
                f.active_at
            } else if f.rate > 0.0 {
                self.now + f.remaining / f.rate
            } else {
                continue;
            };
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
        best
    }

    /// Recomputes max-min fair rates for all active flows.
    fn recompute(&mut self) {
        // Collect unfrozen active flows and their resources.
        let mut cap: HashMap<Resource, f64> = HashMap::new();
        let mut members: HashMap<Resource, Vec<usize>> = HashMap::new();
        let mut unfrozen: Vec<usize> = Vec::new();
        let now = self.now;
        let intra_bw = self.cluster.intra_bw;
        let inter_bw = self.cluster.inter_bw;
        let resources: Vec<Vec<Resource>> = self
            .flows
            .iter()
            .map(|f| self.resources_of(f.src, f.dst))
            .collect();
        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.done {
                f.rate = 0.0;
                continue;
            }
            if f.active_at > now {
                f.rate = 0.0;
                continue;
            }
            unfrozen.push(i);
            for &r in &resources[i] {
                let c = match r {
                    Resource::DevEgress(_) | Resource::DevIngress(_) => intra_bw,
                    Resource::NicEgress(_) | Resource::NicIngress(_) => inter_bw,
                };
                cap.entry(r).or_insert(c);
                members.entry(r).or_default().push(i);
            }
        }
        let mut frozen: HashMap<usize, f64> = HashMap::new();
        let mut active_count: HashMap<Resource, usize> =
            members.iter().map(|(r, m)| (*r, m.len())).collect();
        while frozen.len() < unfrozen.len() {
            // Resource with the smallest fair share.
            let mut best: Option<(Resource, f64)> = None;
            for (&r, &count) in &active_count {
                if count == 0 {
                    continue;
                }
                let share = cap[&r] / count as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r, share));
                }
            }
            let Some((r, share)) = best else { break };
            // Freeze every unfrozen flow on r at `share`.
            let to_freeze: Vec<usize> = members[&r]
                .iter()
                .copied()
                .filter(|i| !frozen.contains_key(i))
                .collect();
            for i in to_freeze {
                frozen.insert(i, share);
                for &r2 in &resources[i] {
                    *cap.get_mut(&r2).expect("resource present") -= share;
                    *active_count.get_mut(&r2).expect("resource present") -= 1;
                }
            }
            active_count.insert(r, 0);
        }
        for (&i, &rate) in &frozen {
            self.flows[i].rate = rate * self.flows[i].factor;
        }
    }

    fn resources_of(&self, src: u32, dst: u32) -> Vec<Resource> {
        let ns = self.cluster.node_of(DeviceId(src)).0;
        let nd = self.cluster.node_of(DeviceId(dst)).0;
        if ns == nd {
            vec![Resource::DevEgress(src), Resource::DevIngress(dst)]
        } else {
            vec![Resource::NicEgress(ns), Resource::NicIngress(nd)]
        }
    }

    /// Current rate of a flow (testing / instrumentation).
    pub fn rate(&self, f: FlowId) -> f64 {
        self.flows[f.0].rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(net: &mut Network) -> f64 {
        while let Some(t) = net.next_event() {
            net.advance_to(t);
        }
        net.now()
    }

    #[test]
    fn single_intra_node_flow_runs_at_link_rate() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        let bytes = 3_000_000_000u64;
        let (f, _) = net.add_flow(0.0, 0, 1, bytes);
        let t = run_until_done(&mut net);
        assert!(net.is_done(f));
        let expect = lat + bytes as f64 / bw;
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn two_flows_sharing_egress_halve() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a1) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 0, 2, 1_000_000);
        net.advance_to(a1);
        // Both share device 0's egress.
        assert!((net.rate(f1) - c.intra_bw / 2.0).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw / 2.0).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_get_full_rate() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c.clone());
        let (f1, a) = net.add_flow(0.0, 0, 1, 1_000_000);
        let (f2, _) = net.add_flow(0.0, 2, 3, 1_000_000);
        net.advance_to(a);
        assert!((net.rate(f1) - c.intra_bw).abs() < 1.0);
        assert!((net.rate(f2) - c.intra_bw).abs() < 1.0);
    }

    #[test]
    fn cross_node_flows_share_nic() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        // Four flows from node 0 to node 1, different device pairs: all
        // share the node NIC.
        let mut ids = Vec::new();
        for i in 0..4u32 {
            let (f, a) = net.add_flow(0.0, i, 8 + i, 1_000_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        for (f, _) in &ids {
            assert!((net.rate(*f) - c.inter_bw / 4.0).abs() < 1.0);
        }
    }

    #[test]
    fn intra_beats_inter_for_same_bytes() {
        let c = ClusterSpec::p4de(2);
        let bytes = 1_000_000_000u64;
        let mut n1 = Network::new(c.clone());
        n1.add_flow(0.0, 0, 1, bytes);
        let t_intra = run_until_done(&mut n1);
        let mut n2 = Network::new(c);
        n2.add_flow(0.0, 0, 8, bytes);
        let t_inter = run_until_done(&mut n2);
        assert!(t_intra < t_inter / 3.0, "intra {t_intra} inter {t_inter}");
    }

    #[test]
    fn conservation_all_flows_complete() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c);
        let mut ids = Vec::new();
        for i in 0..16u32 {
            // Non-decreasing start times (the network is forward-only).
            let (f, _) = net.add_flow((i / 6) as f64 * 1e-4, i % 16, (i * 7 + 3) % 16, 10_000_000);
            ids.push(f);
        }
        run_until_done(&mut net);
        for f in ids {
            assert!(net.is_done(f));
        }
        assert!(net.next_event().is_none());
    }

    #[test]
    fn rates_never_exceed_capacity() {
        let c = ClusterSpec::p4de(2);
        let mut net = Network::new(c.clone());
        let mut ids = Vec::new();
        for i in 0..12u32 {
            let (f, a) = net.add_flow(0.0, i % 8, 8 + (i % 8), 500_000_000);
            ids.push((f, a));
        }
        net.advance_to(ids[0].1);
        let total: f64 = ids.iter().map(|(f, _)| net.rate(*f)).sum();
        assert!(total <= c.inter_bw * 1.0001, "NIC egress exceeded: {total}");
    }

    #[test]
    fn degraded_link_scales_rate_and_completion() {
        let c = ClusterSpec::p4de(1);
        let bw = c.intra_bw;
        let lat = c.intra_latency;
        let mut net = Network::new(c);
        net.set_link_factor(0, 1, 0.25);
        let bytes = 1_000_000_000u64;
        let (f, a) = net.add_flow(0.0, 0, 1, bytes);
        net.advance_to(a);
        assert!((net.rate(f) - bw * 0.25).abs() < 1.0);
        let t = run_until_done(&mut net);
        let expect = lat + bytes as f64 / (bw * 0.25);
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
        // The reverse direction is unaffected.
        let mut rev = Network::new(ClusterSpec::p4de(1));
        rev.set_link_factor(0, 1, 0.25);
        let (g, b) = rev.add_flow(0.0, 1, 0, bytes);
        rev.advance_to(b);
        assert!((rev.rate(g) - bw).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_is_immediately_done() {
        let c = ClusterSpec::p4de(1);
        let mut net = Network::new(c);
        let (f, _) = net.add_flow(0.0, 0, 1, 0);
        assert!(net.is_done(f));
    }
}
