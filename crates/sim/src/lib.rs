//! A discrete-event cluster simulator for DCP execution plans.
//!
//! This crate stands in for the paper's 32–64×A100 testbed (see DESIGN.md's
//! substitution table). It executes the per-device instruction streams of an
//! [`dcp_sched::ExecutionPlan`] against a [`dcp_types::ClusterSpec`]:
//!
//! - **Compute**: each fused attention/reduction/copy instruction occupies
//!   its device for `work / throughput + kernel_overhead` seconds — the
//!   per-kernel overhead term is what makes many-small-step baselines pay
//!   (the paper's Fig. 22 backward-overhead observation).
//! - **Network** ([`network`]): transfers are fluid flows sharing link
//!   capacity max-min fairly. Intra-node flows consume per-device NVSwitch
//!   ingress/egress; inter-node flows consume the per-node NIC
//!   ingress/egress shared by all eight GPUs of a node (the paper's p4de
//!   topology). Rates are recomputed whenever a flow starts or finishes.
//! - **Overlap**: `CommLaunch` is asynchronous; `CommWait` blocks the device
//!   and the blocked time is recorded as *exposed* communication, while flow
//!   activity concurrent with compute is recorded as *overlapped* — giving
//!   the decomposition of the paper's Fig. 1 and Fig. 22 directly.
//!
//! Entry points: [`simulate_phase`] and [`simulate_plan`]. The
//! fault-injected variants [`simulate_phase_faulted`] and
//! [`simulate_plan_faulted`] perturb a run with deterministic stragglers,
//! degraded/failed links and delayed workers (see [`fault`]).

pub mod fault;
pub mod network;
pub mod sim;
pub mod trace;

pub use fault::{estimate_fault_spec, Fault, FaultSpec, FAILED_LINK_FACTOR};
pub use sim::{
    simulate_phase, simulate_phase_counted, simulate_phase_faulted, simulate_phase_scratch,
    simulate_phase_traced, simulate_plan, simulate_plan_faulted, DeviceTimeline, PhaseSim, PlanSim,
    SimCounters,
};
pub use trace::{ascii_gantt, to_chrome_trace, trace_to_obs, TraceEvent, TraceKind};
