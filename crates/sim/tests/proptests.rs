//! Property tests for the simulator: conservation, lower bounds, and
//! monotonicity (DESIGN.md Sec. 6).

use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, Placement, ScheduleConfig};
use dcp_sim::simulate_phase;
use dcp_types::{AttnSpec, ClusterSpec};
use proptest::prelude::*;

prop_compose! {
    fn arb_case()(
        lens in prop::collection::vec(8u32..300, 1..4),
        bs in 4u32..64,
        n in 1u32..8,
        seed in 0u64..500,
    ) -> (Vec<u32>, u32, u32, u64) {
        (lens, bs, n, seed)
    }
}

fn build_case(
    lens: &[u32],
    bs: u32,
    n: u32,
    seed: u64,
) -> (BatchLayout, Placement, dcp_sched::ExecutionPlan) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let seqs: Vec<(u32, MaskSpec)> = lens.iter().map(|&l| (l, MaskSpec::Causal)).collect();
    let layout = BatchLayout::build(
        AttnSpec::new(2, 2, 4, 2),
        BlockConfig {
            block_size: bs,
            head_blocks: 1,
        },
        &seqs,
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    let placement = Placement {
        num_devices: n,
        token_to_dev: (0..layout.token_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
        comp_to_dev: (0..layout.comp_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
    };
    let plan = build_plan(&layout, &placement, &ScheduleConfig::default()).unwrap();
    (layout, placement, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The makespan is bounded below by every device's pure compute time,
    /// and every phase completes (no deadlock) for arbitrary placements.
    #[test]
    fn makespan_lower_bound((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::single_node(8);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let sim = simulate_phase(&cluster, &plan.fwd).unwrap();
        let eff = cluster.effective_flops();
        for (d, load) in plan.fwd.comp_loads().iter().enumerate() {
            let lb = *load as f64 / eff;
            prop_assert!(
                sim.devices[d].finish + 1e-12 >= lb,
                "device {d}: finish {} < compute lb {}",
                sim.devices[d].finish,
                lb
            );
        }
        prop_assert!(sim.makespan >= 0.0);
    }

    /// Doubling every link bandwidth never slows the phase down.
    #[test]
    fn faster_network_never_hurts((lens, bs, n, seed) in arb_case()) {
        let slow = ClusterSpec::p4de(1);
        let mut fast = slow.clone();
        fast.intra_bw *= 2.0;
        fast.inter_bw *= 2.0;
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let t_slow = simulate_phase(&slow, &plan.fwd).unwrap().makespan;
        let t_fast = simulate_phase(&fast, &plan.fwd).unwrap().makespan;
        prop_assert!(t_fast <= t_slow * 1.0001, "fast {t_fast} > slow {t_slow}");
    }

    /// Simulation is deterministic.
    #[test]
    fn simulation_is_deterministic((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::p4de(1);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let a = simulate_phase(&cluster, &plan.fwd).unwrap();
        let b = simulate_phase(&cluster, &plan.fwd).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Overlap accounting is consistent: overlapped communication never
    /// exceeds either total comm activity or total compute on a device,
    /// and exposed waits are non-negative.
    #[test]
    fn overlap_accounting_consistent((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::p4de(1);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let sim = simulate_phase(&cluster, &plan.fwd).unwrap();
        for d in &sim.devices {
            prop_assert!(d.exposed_wait >= 0.0);
            prop_assert!(d.overlap <= d.comm_active + 1e-9);
            prop_assert!(d.overlap <= d.compute() + 1e-9);
            prop_assert!(d.finish <= sim.makespan + 1e-12);
        }
    }
}

/// Randomized flow arrivals (departures happen as flows drain), over one of
/// the fabric topologies.
fn arb_flows() -> impl Strategy<Value = (usize, Vec<(f64, u32, u32, u64)>)> {
    (
        0usize..3,
        prop::collection::vec((0u64..2_000, 0u32..16, 0u32..16, 1u64..4_000_000), 1..40),
    )
        .prop_map(|(topo, raw)| {
            let mut t = 0.0f64;
            let flows = raw
                .into_iter()
                .filter(|(_, s, d, _)| s != d)
                .map(|(gap_us, s, d, b)| {
                    t += gap_us as f64 * 1e-6;
                    (t, s, d, b)
                })
                .collect();
            (topo, flows)
        })
}

fn topology(idx: usize) -> ClusterSpec {
    match idx {
        0 => ClusterSpec::p4de(2),
        1 => ClusterSpec::p4de_rail(2),
        _ => ClusterSpec::p4de_spine(4, 2, 4.0),
    }
}

/// Drives one engine through the arrival sequence, stepping strictly through
/// `next_event`, and returns the event times plus the allocated rate of
/// every live flow observed after each arrival and each event.
fn drive(
    cluster: &ClusterSpec,
    flows: &[(f64, u32, u32, u64)],
    scratch: bool,
) -> (Vec<f64>, Vec<f64>) {
    use dcp_sim::network::{FlowId, Network};
    let mut net = Network::new(cluster.clone());
    net.use_scratch_engine(scratch);
    let mut events = Vec::new();
    let mut rates = Vec::new();
    let mut n_flows = 0usize;
    let observe = |net: &Network, n: usize, rates: &mut Vec<f64>| {
        for i in 0..n {
            rates.push(net.rate(FlowId(i)));
        }
    };
    for &(t, src, dst, bytes) in flows {
        while let Some(e) = net.next_event() {
            if e >= t {
                break;
            }
            net.advance_to(e);
            events.push(e);
            observe(&net, n_flows, &mut rates);
        }
        net.add_flow(t, src, dst, bytes);
        n_flows += 1;
        observe(&net, n_flows, &mut rates);
    }
    while let Some(e) = net.next_event() {
        net.advance_to(e);
        events.push(e);
        observe(&net, n_flows, &mut rates);
    }
    (events, rates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental dirty-component allocator reproduces the retained
    /// scratch water-fill reference on arbitrary arrival/departure
    /// sequences: same event count, same event times and same per-flow
    /// rates to fp tolerance (the reference's hash-map iteration order
    /// wanders by an ulp on exact max-min ties) — and the incremental
    /// engine itself is exactly deterministic run-to-run. The CI thread
    /// matrix re-runs this at `RAYON_NUM_THREADS` 1/2/8; the engine is
    /// single-threaded so the pin must hold bitwise across legs.
    #[test]
    fn incremental_allocator_matches_scratch_reference(
        (topo, flows) in arb_flows()
    ) {
        let cluster = topology(topo);
        let (inc_ev, inc_rates) = drive(&cluster, &flows, false);
        let (scr_ev, scr_rates) = drive(&cluster, &flows, true);
        prop_assert_eq!(inc_ev.len(), scr_ev.len(), "event counts diverged");
        for (i, (a, b)) in inc_ev.iter().zip(&scr_ev).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                "event {i}: incremental {a} vs scratch {b}"
            );
        }
        prop_assert_eq!(inc_rates.len(), scr_rates.len());
        for (i, (a, b)) in inc_rates.iter().zip(&scr_rates).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                "rate sample {i}: incremental {a} vs scratch {b}"
            );
        }
        let (again_ev, again_rates) = drive(&cluster, &flows, false);
        prop_assert_eq!(inc_ev, again_ev);
        prop_assert_eq!(inc_rates, again_rates);
    }
}
