//! Property tests for the simulator: conservation, lower bounds, and
//! monotonicity (DESIGN.md Sec. 6).

use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, Placement, ScheduleConfig};
use dcp_sim::simulate_phase;
use dcp_types::{AttnSpec, ClusterSpec};
use proptest::prelude::*;

prop_compose! {
    fn arb_case()(
        lens in prop::collection::vec(8u32..300, 1..4),
        bs in 4u32..64,
        n in 1u32..8,
        seed in 0u64..500,
    ) -> (Vec<u32>, u32, u32, u64) {
        (lens, bs, n, seed)
    }
}

fn build_case(
    lens: &[u32],
    bs: u32,
    n: u32,
    seed: u64,
) -> (BatchLayout, Placement, dcp_sched::ExecutionPlan) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let seqs: Vec<(u32, MaskSpec)> = lens.iter().map(|&l| (l, MaskSpec::Causal)).collect();
    let layout = BatchLayout::build(
        AttnSpec::new(2, 2, 4, 2),
        BlockConfig {
            block_size: bs,
            head_blocks: 1,
        },
        &seqs,
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    let placement = Placement {
        num_devices: n,
        token_to_dev: (0..layout.token_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
        comp_to_dev: (0..layout.comp_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
    };
    let plan = build_plan(&layout, &placement, &ScheduleConfig::default()).unwrap();
    (layout, placement, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The makespan is bounded below by every device's pure compute time,
    /// and every phase completes (no deadlock) for arbitrary placements.
    #[test]
    fn makespan_lower_bound((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::single_node(8);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let sim = simulate_phase(&cluster, &plan.fwd).unwrap();
        let eff = cluster.effective_flops();
        for (d, load) in plan.fwd.comp_loads().iter().enumerate() {
            let lb = *load as f64 / eff;
            prop_assert!(
                sim.devices[d].finish + 1e-12 >= lb,
                "device {d}: finish {} < compute lb {}",
                sim.devices[d].finish,
                lb
            );
        }
        prop_assert!(sim.makespan >= 0.0);
    }

    /// Doubling every link bandwidth never slows the phase down.
    #[test]
    fn faster_network_never_hurts((lens, bs, n, seed) in arb_case()) {
        let slow = ClusterSpec::p4de(1);
        let mut fast = slow.clone();
        fast.intra_bw *= 2.0;
        fast.inter_bw *= 2.0;
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let t_slow = simulate_phase(&slow, &plan.fwd).unwrap().makespan;
        let t_fast = simulate_phase(&fast, &plan.fwd).unwrap().makespan;
        prop_assert!(t_fast <= t_slow * 1.0001, "fast {t_fast} > slow {t_slow}");
    }

    /// Simulation is deterministic.
    #[test]
    fn simulation_is_deterministic((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::p4de(1);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let a = simulate_phase(&cluster, &plan.fwd).unwrap();
        let b = simulate_phase(&cluster, &plan.fwd).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Overlap accounting is consistent: overlapped communication never
    /// exceeds either total comm activity or total compute on a device,
    /// and exposed waits are non-negative.
    #[test]
    fn overlap_accounting_consistent((lens, bs, n, seed) in arb_case()) {
        let cluster = ClusterSpec::p4de(1);
        let (_, _, plan) = build_case(&lens, bs, n, seed);
        let sim = simulate_phase(&cluster, &plan.fwd).unwrap();
        for d in &sim.devices {
            prop_assert!(d.exposed_wait >= 0.0);
            prop_assert!(d.overlap <= d.comm_active + 1e-9);
            prop_assert!(d.overlap <= d.compute() + 1e-9);
            prop_assert!(d.finish <= sim.makespan + 1e-12);
        }
    }
}
