//! Synthetic long-context datasets and token-budget batching.
//!
//! The paper evaluates on LongAlign and LongDataCollections, whose defining
//! property (Fig. 2) is a *heavily skewed, long-tailed* sequence-length
//! distribution: short sequences vastly outnumber long ones, with LongAlign
//! shifted toward longer averages and fewer short sequences than
//! LongDataCollections. We reproduce the distribution *shape* with
//! log-normal samplers fit to those qualitative properties — the planner and
//! baselines only ever consume `(length, mask)` pairs, so the shape is what
//! drives every experiment.
//!
//! Batching follows the paper's setup: a global batch is filled with whole
//! sequences up to a token budget (131072 tokens in the micro-benchmarks),
//! with lengths capped at the maximum sequence length. The paper's
//! sequence-length *scale* variants (x0.5, x1, x2, x4) multiply every length
//! before capping.

use dcp_mask::MaskSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Which dataset's length distribution to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Long-context alignment data: longer average, fewer short sequences.
    LongAlign,
    /// A compilation of long-input understanding datasets: many short
    /// sequences, long tail.
    LongDataCollections,
}

impl DatasetKind {
    /// The log-normal parameters `(mu, sigma)` of the length distribution.
    fn params(&self) -> (f64, f64) {
        match self {
            // Median ~12k, moderate spread.
            DatasetKind::LongAlign => (9.4, 1.0),
            // Median ~3k, heavy tail.
            DatasetKind::LongDataCollections => (8.0, 1.5),
        }
    }

    /// Display name used by the harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::LongAlign => "LongAlign",
            DatasetKind::LongDataCollections => "LongDataCollections",
        }
    }
}

/// Samples `n` sequence lengths from `kind`'s distribution, multiplied by
/// `scale` and clamped to `[32, cap]`.
///
/// Deterministic for a given seed.
pub fn sample_lengths(kind: DatasetKind, n: usize, scale: f64, cap: u32, seed: u64) -> Vec<u32> {
    assert!(scale > 0.0 && cap >= 32, "degenerate sampler parameters");
    let (mu, sigma) = kind.params();
    let dist = LogNormal::new(mu, sigma).expect("valid lognormal parameters");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    (0..n)
        .map(|_| {
            let raw = dist.sample(&mut rng) * scale;
            (raw as u32).clamp(32, cap)
        })
        .collect()
}

/// One training batch: whole sequences with their masks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// `(length, mask)` of every sequence in the batch.
    pub seqs: Vec<(u32, MaskSpec)>,
}

impl Batch {
    /// Total tokens in the batch.
    pub fn tokens(&self) -> u64 {
        self.seqs.iter().map(|(l, _)| *l as u64).sum()
    }
}

/// Packs `lengths` (in order) into batches of at most `budget` tokens,
/// assigning each sequence the mask produced by `mask_fn(len)` — the
/// paper's user-defined mask function (Listing 2).
///
/// A sequence longer than the budget is truncated to the budget. Batches
/// always contain at least one sequence.
pub fn pack_batches(
    lengths: &[u32],
    budget: u64,
    mut mask_fn: impl FnMut(u32) -> MaskSpec,
) -> Vec<Batch> {
    assert!(budget >= 32, "budget too small");
    let mut batches = Vec::new();
    let mut cur: Vec<(u32, MaskSpec)> = Vec::new();
    let mut cur_tokens = 0u64;
    for &len in lengths {
        let len = len.min(budget as u32);
        if cur_tokens + len as u64 > budget && !cur.is_empty() {
            batches.push(Batch {
                seqs: std::mem::take(&mut cur),
            });
            cur_tokens = 0;
        }
        cur.push((len, mask_fn(len)));
        cur_tokens += len as u64;
    }
    if !cur.is_empty() {
        batches.push(Batch { seqs: cur });
    }
    batches
}

/// The paper's four mask settings as mask functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskSetting {
    /// Standard causal mask.
    Causal,
    /// Lambda mask: 64 sink tokens, window 4096.
    Lambda,
    /// Causal blockwise: mask block 256, window 2, one sink block.
    CausalBlockwise,
    /// Shared question: one question and 4 answers of 20% each.
    SharedQuestion,
}

impl MaskSetting {
    /// All four settings, in the paper's plotting order.
    pub const ALL: [MaskSetting; 4] = [
        MaskSetting::Causal,
        MaskSetting::Lambda,
        MaskSetting::CausalBlockwise,
        MaskSetting::SharedQuestion,
    ];

    /// The mask for a sequence of `len` tokens.
    pub fn mask_for(&self, len: u32) -> MaskSpec {
        match self {
            MaskSetting::Causal => MaskSpec::Causal,
            MaskSetting::Lambda => MaskSpec::paper_lambda(),
            MaskSetting::CausalBlockwise => MaskSpec::paper_causal_blockwise(),
            MaskSetting::SharedQuestion => MaskSpec::paper_shared_question(len),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MaskSetting::Causal => "causal",
            MaskSetting::Lambda => "lambda",
            MaskSetting::CausalBlockwise => "causal_blockwise",
            MaskSetting::SharedQuestion => "shared_question",
        }
    }
}

/// Loads sequence lengths from a text file (one decimal length per line;
/// blank lines and `#` comments ignored) so real dataset length dumps can
/// replace the synthetic samplers.
///
/// # Errors
///
/// Returns [`std::io::Error`]-backed messages for unreadable files and a
/// parse error naming the offending line otherwise.
pub fn load_lengths(path: &std::path::Path) -> Result<Vec<u32>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut lengths = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: u32 = line
            .parse()
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        lengths.push(v);
    }
    Ok(lengths)
}

/// A histogram of sequence lengths over logarithmic bins (Fig. 2).
///
/// Returns `(bin_upper_bounds, counts)`.
pub fn log_histogram(lengths: &[u32], bins: usize, cap: u32) -> (Vec<u32>, Vec<usize>) {
    assert!(bins >= 2);
    let lo = 32f64;
    let hi = cap as f64;
    let edges: Vec<u32> = (1..=bins)
        .map(|i| (lo * (hi / lo).powf(i as f64 / bins as f64)).round() as u32)
        .collect();
    let mut counts = vec![0usize; bins];
    for &l in lengths {
        let idx = edges.iter().position(|&e| l <= e).unwrap_or(bins - 1);
        counts[idx] += 1;
    }
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let a = sample_lengths(DatasetKind::LongAlign, 500, 1.0, 131072, 7);
        let b = sample_lengths(DatasetKind::LongAlign, 500, 1.0, 131072, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| (32..=131072).contains(&l)));
    }

    #[test]
    fn distributions_are_skewed_and_ordered() {
        let la = sample_lengths(DatasetKind::LongAlign, 4000, 1.0, 131072, 1);
        let ldc = sample_lengths(DatasetKind::LongDataCollections, 4000, 1.0, 131072, 1);
        let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let median = |v: &[u32]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            s[s.len() / 2]
        };
        // LongAlign has longer average sequences than LDC (paper Sec. 7.2).
        assert!(mean(&la) > mean(&ldc));
        // Skew: mean well above median for both (long tail).
        assert!(mean(&ldc) > 1.5 * median(&ldc) as f64);
        // LDC has more short sequences (paper: higher causal-mask speedup
        // on LDC because of this).
        let short = |v: &[u32]| v.iter().filter(|&&l| l < 4096).count();
        assert!(short(&ldc) > 2 * short(&la));
    }

    #[test]
    fn scale_multiplies_lengths() {
        let x1 = sample_lengths(DatasetKind::LongDataCollections, 1000, 1.0, u32::MAX, 3);
        let x2 = sample_lengths(DatasetKind::LongDataCollections, 1000, 2.0, u32::MAX, 3);
        for (a, b) in x1.iter().zip(&x2) {
            if *a > 32 && *b < u32::MAX {
                let ratio = *b as f64 / *a as f64;
                assert!((ratio - 2.0).abs() < 0.1, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn packing_respects_budget() {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, 300, 1.0, 131072, 11);
        let budget = 131072u64;
        let batches = pack_batches(&lengths, budget, |_| MaskSpec::Causal);
        assert!(!batches.is_empty());
        let mut total = 0u64;
        for b in &batches {
            assert!(b.tokens() <= budget, "batch over budget: {}", b.tokens());
            assert!(!b.seqs.is_empty());
            total += b.tokens();
        }
        // No sequence lost (all were <= budget already).
        let expect: u64 = lengths.iter().map(|&l| l as u64).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn oversized_sequence_truncated() {
        let batches = pack_batches(&[100, 999_999, 50], 1000, |_| MaskSpec::Causal);
        // The truncated sequence exactly fills a batch of its own.
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].seqs, vec![(100, MaskSpec::Causal)]);
        assert_eq!(batches[1].seqs, vec![(1000, MaskSpec::Causal)]);
        assert_eq!(batches[2].seqs, vec![(50, MaskSpec::Causal)]);
    }

    #[test]
    fn mask_settings_instantiate() {
        for s in MaskSetting::ALL {
            let m = s.mask_for(65536);
            m.instantiate(65536).unwrap();
        }
        // Shared question adapts to the length.
        let m = MaskSetting::SharedQuestion.mask_for(1000);
        assert_eq!(m.instantiate(1000).unwrap().len(), 1000);
    }

    #[test]
    fn load_lengths_parses_and_reports_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("dcp_lengths_test.txt");
        std::fs::write(&path, "# comment\n1024\n\n2048\n 42 \n").unwrap();
        assert_eq!(load_lengths(&path).unwrap(), vec![1024, 2048, 42]);
        std::fs::write(&path, "12\nnot-a-number\n").unwrap();
        let err = load_lengths(&path).unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        let missing = dir.join("dcp_lengths_missing.txt");
        assert!(load_lengths(&missing).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn histogram_covers_everything() {
        let lengths = sample_lengths(DatasetKind::LongAlign, 2000, 1.0, 131072, 5);
        let (edges, counts) = log_histogram(&lengths, 16, 131072);
        assert_eq!(edges.len(), 16);
        assert_eq!(counts.iter().sum::<usize>(), 2000);
        assert_eq!(*edges.last().unwrap(), 131072);
    }
}
