//! Attention mask specifications and blockwise sparsity queries.
//!
//! DCP supports attention patterns beyond the causal mask (paper Sec. 2.4 and
//! Fig. 6): the lambda mask (attention sink + sliding window), the causal
//! blockwise mask used for in-context learning, and the shared-question mask
//! used in RLHF/DPO-style post-training. Following the paper's executor
//! (Sec. 5), a mask is represented *per query token* as at most **two**
//! half-open index ranges of keys the token attends to.
//!
//! The two key consumers are:
//!
//! - the block generator ([`dcp-blocks`](../dcp_blocks)), which asks whether a
//!   (Q-block, KV-block) pair contains any unmasked entries and how many
//!   (for FLOPs accounting), and
//! - the numerical executor, which needs the exact allowed key set of each
//!   query token.
//!
//! [`MaskSpec`] is the serializable description; [`Mask`] is a spec bound to
//! a concrete sequence length with all per-token ranges materialized.

pub mod instance;
pub mod spec;

pub use instance::{Mask, RangePair};
pub use spec::MaskSpec;
