//! Materialized masks: per-token attend ranges and blockwise queries.

use serde::{Deserialize, Serialize};

/// At most two normalized half-open ranges of key indices a query token
/// attends to.
///
/// Invariants (maintained by the constructors):
/// - the first range is non-empty,
/// - if the second range is present it is non-empty and starts strictly after
///   the first ends (no overlap, no adjacency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangePair {
    /// First range `[a.0, a.1)`.
    pub a: (u32, u32),
    /// Optional second range, strictly after `a`.
    pub b: Option<(u32, u32)>,
}

impl RangePair {
    /// A single range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn single(start: u32, end: u32) -> Self {
        assert!(start < end, "empty range [{start}, {end})");
        RangePair {
            a: (start, end),
            b: None,
        }
    }

    /// Two ranges `[s1, e1)` and `[s2, e2)`, merged/normalized. Either range
    /// may be empty (it is dropped); if both are empty the result is a
    /// zero-width range at 0 — callers treat that as "attends to nothing",
    /// which does not occur for sub-causal masks (a token always attends to
    /// itself).
    pub fn merged(s1: u32, e1: u32, s2: u32, e2: u32) -> Self {
        let r1 = (s1 < e1).then_some((s1, e1));
        let r2 = (s2 < e2).then_some((s2, e2));
        match (r1, r2) {
            (None, None) => RangePair { a: (0, 0), b: None },
            (Some(r), None) | (None, Some(r)) => RangePair { a: r, b: None },
            (Some(mut x), Some(mut y)) => {
                if y.0 < x.0 {
                    std::mem::swap(&mut x, &mut y);
                }
                if y.0 <= x.1 {
                    // Overlapping or adjacent: merge.
                    RangePair {
                        a: (x.0, x.1.max(y.1)),
                        b: None,
                    }
                } else {
                    RangePair { a: x, b: Some(y) }
                }
            }
        }
    }

    /// Re-normalizes a possibly denormalized pair (used when deserializing
    /// custom masks).
    pub fn normalized(&self) -> Self {
        match self.b {
            None => *self,
            Some(b) => RangePair::merged(self.a.0, self.a.1, b.0, b.1),
        }
    }

    /// Total number of keys covered.
    pub fn count_total(&self) -> u64 {
        let (a0, a1) = self.a;
        let base = (a1 - a0) as u64;
        base + self.b.map_or(0, |(b0, b1)| (b1 - b0) as u64)
    }

    /// Whether key `k` is covered.
    pub fn contains(&self, k: u32) -> bool {
        (self.a.0 <= k && k < self.a.1) || self.b.is_some_and(|(b0, b1)| b0 <= k && k < b1)
    }

    /// The largest covered index + 1 (0 if empty).
    pub fn end(&self) -> u32 {
        self.b.map_or(self.a.1, |(_, b1)| b1)
    }

    /// Number of covered keys inside `[lo, hi)`.
    pub fn count_in(&self, lo: u32, hi: u32) -> u64 {
        let overlap = |(s, e): (u32, u32)| -> u64 {
            let s = s.max(lo);
            let e = e.min(hi);
            if s < e {
                (e - s) as u64
            } else {
                0
            }
        };
        overlap(self.a) + self.b.map_or(0, overlap)
    }

    /// Whether any covered key lies inside `[lo, hi)`.
    pub fn intersects(&self, lo: u32, hi: u32) -> bool {
        let hit = |(s, e): (u32, u32)| s.max(lo) < e.min(hi);
        hit(self.a) || self.b.is_some_and(hit)
    }
}

/// A mask bound to a concrete sequence length, with one [`RangePair`] per
/// query token.
///
/// # Examples
///
/// ```
/// use dcp_mask::MaskSpec;
///
/// let mask = MaskSpec::Causal.instantiate(16).unwrap();
/// // (Q-block [0,4), KV-block [8,12)) is fully masked under causality:
/// assert_eq!(mask.pair_count_block(0, 4, 8, 12), 0);
/// assert!(!mask.block_nonempty(0, 4, 8, 12));
/// // The diagonal block is half full:
/// assert_eq!(mask.pair_count_block(4, 8, 4, 8), 4 + 3 + 2 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mask {
    len: u32,
    ranges: Vec<RangePair>,
}

impl Mask {
    /// Builds a mask from explicit per-token ranges (already normalized).
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != len`.
    pub fn from_ranges(len: u32, ranges: Vec<RangePair>) -> Self {
        assert_eq!(ranges.len(), len as usize);
        Mask { len, ranges }
    }

    /// Sequence length this mask is bound to.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the sequence is empty (never true for instantiated masks).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The attend ranges of query token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len`.
    pub fn allowed(&self, t: u32) -> RangePair {
        self.ranges[t as usize]
    }

    /// Whether query `q` attends to key `k`.
    pub fn is_allowed(&self, q: u32, k: u32) -> bool {
        self.ranges[q as usize].contains(k)
    }

    /// Total number of unmasked (query, key) pairs.
    pub fn total_pairs(&self) -> u64 {
        self.ranges.iter().map(RangePair::count_total).sum()
    }

    /// Ratio of unmasked pairs to the causal mask's pair count. The paper's
    /// "mask sparsity" metric (Fig. 19) is FLOPs relative to causal, which is
    /// exactly this ratio.
    pub fn sparsity_vs_causal(&self) -> f64 {
        let causal = self.len as u64 * (self.len as u64 + 1) / 2;
        self.total_pairs() as f64 / causal as f64
    }

    /// Number of unmasked pairs with query in `[q_lo, q_hi)` and key in
    /// `[k_lo, k_hi)`.
    pub fn pair_count_block(&self, q_lo: u32, q_hi: u32, k_lo: u32, k_hi: u32) -> u64 {
        debug_assert!(q_hi <= self.len);
        self.ranges[q_lo as usize..q_hi as usize]
            .iter()
            .map(|r| r.count_in(k_lo, k_hi))
            .sum()
    }

    /// Whether the block pair contains any unmasked entry.
    pub fn block_nonempty(&self, q_lo: u32, q_hi: u32, k_lo: u32, k_hi: u32) -> bool {
        self.ranges[q_lo as usize..q_hi as usize]
            .iter()
            .any(|r| r.intersects(k_lo, k_hi))
    }

    /// Iterator over the per-token ranges (token order).
    pub fn ranges(&self) -> &[RangePair] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MaskSpec;
    use proptest::prelude::*;

    #[test]
    fn range_pair_merging() {
        // Overlap merges.
        let r = RangePair::merged(0, 5, 3, 8);
        assert_eq!(r, RangePair::single(0, 8));
        // Adjacency merges.
        let r = RangePair::merged(0, 5, 5, 8);
        assert_eq!(r, RangePair::single(0, 8));
        // Disjoint stays split.
        let r = RangePair::merged(0, 4, 6, 8);
        assert_eq!(r.a, (0, 4));
        assert_eq!(r.b, Some((6, 8)));
        // Out of order inputs are sorted.
        let r = RangePair::merged(6, 8, 0, 4);
        assert_eq!(r.a, (0, 4));
        // Empty halves are dropped.
        let r = RangePair::merged(3, 3, 1, 2);
        assert_eq!(r, RangePair::single(1, 2));
    }

    #[test]
    fn count_in_clamps() {
        let r = RangePair::merged(0, 4, 8, 12);
        assert_eq!(r.count_in(2, 10), 2 + 2);
        assert_eq!(r.count_in(4, 8), 0);
        assert_eq!(r.count_in(0, 100), 8);
        assert!(r.intersects(3, 5));
        assert!(!r.intersects(4, 8));
    }

    #[test]
    fn block_counts_match_dense_enumeration() {
        let specs = [
            MaskSpec::Causal,
            MaskSpec::Full,
            MaskSpec::Lambda { sink: 3, window: 7 },
            MaskSpec::CausalBlockwise {
                block: 4,
                window_blocks: 2,
                sink_blocks: 1,
            },
            MaskSpec::SharedQuestion {
                question_len: 10,
                answer_lens: vec![8, 8, 6],
            },
        ];
        let len = 32u32;
        for spec in specs {
            let m = spec.instantiate(len).unwrap();
            for q_lo in (0..len).step_by(8) {
                for k_lo in (0..len).step_by(8) {
                    let mut dense = 0u64;
                    for q in q_lo..q_lo + 8 {
                        for k in k_lo..k_lo + 8 {
                            if m.is_allowed(q, k) {
                                dense += 1;
                            }
                        }
                    }
                    assert_eq!(
                        m.pair_count_block(q_lo, q_lo + 8, k_lo, k_lo + 8),
                        dense,
                        "{} block ({q_lo},{k_lo})",
                        spec.name()
                    );
                    assert_eq!(m.block_nonempty(q_lo, q_lo + 8, k_lo, k_lo + 8), dense > 0);
                }
            }
        }
    }

    #[test]
    fn sparsity_ordering_matches_paper() {
        // Lambda and causal-blockwise are sparser than shared-question,
        // which is sparser than causal (Sec. 7.1 observations).
        let len = 32768;
        let causal = MaskSpec::Causal
            .instantiate(len)
            .unwrap()
            .sparsity_vs_causal();
        let lambda = MaskSpec::paper_lambda()
            .instantiate(len)
            .unwrap()
            .sparsity_vs_causal();
        let cbw = MaskSpec::paper_causal_blockwise()
            .instantiate(len)
            .unwrap()
            .sparsity_vs_causal();
        let sq = MaskSpec::paper_shared_question(len)
            .instantiate(len)
            .unwrap()
            .sparsity_vs_causal();
        assert!((causal - 1.0).abs() < 1e-12);
        assert!(
            lambda < sq && cbw < sq && sq < causal,
            "lambda={lambda} cbw={cbw} sq={sq}"
        );
    }

    proptest! {
        #[test]
        fn subcausal_masks_always_attend_self(
            len in 1u32..300,
            sink in 0u32..8,
            window in 1u32..16,
        ) {
            let m = MaskSpec::Lambda { sink, window }.instantiate(len).unwrap();
            for t in 0..len {
                prop_assert!(m.is_allowed(t, t));
                prop_assert!(m.allowed(t).end() <= t + 1);
            }
        }

        #[test]
        fn total_pairs_equals_sum_of_disjoint_blocks(
            len in 8u32..200,
            bs in 1u32..16,
        ) {
            let m = MaskSpec::Causal.instantiate(len).unwrap();
            let mut total = 0u64;
            let mut q = 0;
            while q < len {
                let qh = (q + bs).min(len);
                let mut k = 0;
                while k < len {
                    let kh = (k + bs).min(len);
                    total += m.pair_count_block(q, qh, k, kh);
                    k = kh;
                }
                q = qh;
            }
            prop_assert_eq!(total, m.total_pairs());
        }

        #[test]
        fn merged_equals_set_union(
            s1 in 0u32..20, l1 in 0u32..10,
            s2 in 0u32..20, l2 in 0u32..10,
        ) {
            let r = RangePair::merged(s1, s1 + l1, s2, s2 + l2);
            for k in 0..40u32 {
                let expect = (s1 <= k && k < s1 + l1) || (s2 <= k && k < s2 + l2);
                prop_assert_eq!(r.contains(k), expect, "k={}", k);
            }
        }

        #[test]
        fn shared_question_partition_of_pairs(
            qlen in 1u32..20,
            a1 in 1u32..20,
            a2 in 1u32..20,
        ) {
            let len = qlen + a1 + a2;
            let m = MaskSpec::SharedQuestion {
                question_len: qlen,
                answer_lens: vec![a1, a2],
            }
            .instantiate(len)
            .unwrap();
            // Expected: causal(question) + per-answer (causal(answer) + qlen * answer).
            let causal = |n: u64| n * (n + 1) / 2;
            let expect = causal(qlen as u64)
                + causal(a1 as u64) + qlen as u64 * a1 as u64
                + causal(a2 as u64) + qlen as u64 * a2 as u64;
            prop_assert_eq!(m.total_pairs(), expect);
        }
    }
}
