//! Serializable attention mask specifications.

use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::instance::{Mask, RangePair};

/// A description of an attention mask, independent of sequence length.
///
/// Instantiating a spec against a concrete sequence length (via
/// [`MaskSpec::instantiate`]) produces a [`Mask`] with per-token attend
/// ranges. All masks here are sub-causal except [`MaskSpec::Full`].
///
/// # Examples
///
/// ```
/// use dcp_mask::MaskSpec;
///
/// let mask = MaskSpec::Causal.instantiate(8).unwrap();
/// assert_eq!(mask.total_pairs(), 8 * 9 / 2);
///
/// // Lambda mask: 2 sink tokens + window of 3.
/// let mask = MaskSpec::Lambda { sink: 2, window: 3 }.instantiate(16).unwrap();
/// assert!(mask.is_allowed(10, 0)); // sink
/// assert!(mask.is_allowed(10, 9)); // window
/// assert!(!mask.is_allowed(10, 5)); // masked out
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskSpec {
    /// Every token attends to every token (encoder-style).
    Full,
    /// Standard causal mask: token `t` attends to `0..=t`.
    Causal,
    /// Lambda mask (paper Fig. 6b): every token attends to the first `sink`
    /// tokens plus a sliding window of the last `window` tokens (inclusive of
    /// itself). Used by StreamingLLM / LM-Infinite.
    Lambda {
        /// Number of attention-sink tokens at the start of the sequence.
        sink: u32,
        /// Sliding-window size (the token itself counts).
        window: u32,
    },
    /// Causal blockwise mask (paper Fig. 6c): the sequence is divided into
    /// blocks of `block` tokens; each block attends to the first
    /// `sink_blocks` blocks and a sliding window of the previous
    /// `window_blocks` blocks (inclusive of its own), and the final block
    /// (the test example) attends to everything before it.
    CausalBlockwise {
        /// Tokens per mask block.
        block: u32,
        /// Window size in blocks, counting the querying block itself.
        window_blocks: u32,
        /// Number of sink blocks at the start of the sequence.
        sink_blocks: u32,
    },
    /// Shared-question mask (paper Fig. 6d): the sequence is a question of
    /// `question_len` tokens followed by consecutive answers with lengths
    /// `answer_lens`. The question is causal; each answer attends to the full
    /// question and causally within itself (but not to other answers).
    SharedQuestion {
        /// Length of the shared question prefix.
        question_len: u32,
        /// Lengths of the answers, in order. Must sum (with the question) to
        /// the instantiated sequence length.
        answer_lens: Vec<u32>,
    },
    /// Arbitrary per-token ranges. Index `t` holds token `t`'s attend ranges.
    Custom(Vec<RangePair>),
}

impl MaskSpec {
    /// The paper's lambda-mask configuration: 64 sink tokens, window 4096.
    pub fn paper_lambda() -> Self {
        MaskSpec::Lambda {
            sink: 64,
            window: 4096,
        }
    }

    /// The paper's causal blockwise configuration: mask block 256, window of
    /// 2 blocks, a single sink block (the final block is always the test
    /// sample attending to all previous tokens).
    pub fn paper_causal_blockwise() -> Self {
        MaskSpec::CausalBlockwise {
            block: 256,
            window_blocks: 2,
            sink_blocks: 1,
        }
    }

    /// The paper's shared-question configuration for a sequence of length
    /// `len`: one shared question with 4 answers, each answer taking 20% of
    /// the sequence (the question takes the remaining 20%).
    pub fn paper_shared_question(len: u32) -> Self {
        let answer = len / 5;
        let question = len - 4 * answer;
        MaskSpec::SharedQuestion {
            question_len: question,
            answer_lens: vec![answer; 4],
        }
    }

    /// A block-diagonal "packed documents" mask: the sequence is a
    /// concatenation of documents of the given lengths, each causal within
    /// itself and blind to the others. This is the masking used when
    /// packing pre-training corpora (the setting WLB-LLM and the paper's
    /// related-work discussion assume); it is exactly a shared-question
    /// mask with an empty question, expressed via per-token ranges.
    ///
    /// The instantiated length must equal the sum of `doc_lens`.
    pub fn packed_documents(doc_lens: &[u32]) -> Self {
        let mut ranges = Vec::new();
        let mut start = 0u32;
        for &len in doc_lens {
            for t in start..start + len {
                ranges.push(RangePair::single(start, t + 1));
            }
            start += len;
        }
        MaskSpec::Custom(ranges)
    }

    /// A short, stable name for reports and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            MaskSpec::Full => "full",
            MaskSpec::Causal => "causal",
            MaskSpec::Lambda { .. } => "lambda",
            MaskSpec::CausalBlockwise { .. } => "causal_blockwise",
            MaskSpec::SharedQuestion { .. } => "shared_question",
            MaskSpec::Custom(_) => "custom",
        }
    }

    /// Binds this spec to a sequence of `len` tokens, materializing the
    /// per-token attend ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidMask`] if the spec cannot cover `len`
    /// tokens (e.g. shared-question lengths that do not sum to `len`, zero
    /// window, or custom ranges of the wrong arity).
    pub fn instantiate(&self, len: u32) -> DcpResult<Mask> {
        if len == 0 {
            return Err(DcpError::InvalidMask("sequence length must be > 0".into()));
        }
        let ranges = match self {
            MaskSpec::Full => (0..len).map(|_| RangePair::single(0, len)).collect(),
            MaskSpec::Causal => (0..len).map(|t| RangePair::single(0, t + 1)).collect(),
            MaskSpec::Lambda { sink, window } => {
                if *window == 0 {
                    return Err(DcpError::InvalidMask("lambda window must be > 0".into()));
                }
                (0..len)
                    .map(|t| {
                        let w_start = (t + 1).saturating_sub(*window);
                        RangePair::merged(0, (*sink).min(t + 1), w_start, t + 1)
                    })
                    .collect()
            }
            MaskSpec::CausalBlockwise {
                block,
                window_blocks,
                sink_blocks,
            } => {
                if *block == 0 || *window_blocks == 0 {
                    return Err(DcpError::InvalidMask(
                        "causal blockwise block and window must be > 0".into(),
                    ));
                }
                let num_blocks = len.div_ceil(*block);
                (0..len)
                    .map(|t| {
                        let bi = t / *block;
                        if bi + 1 == num_blocks {
                            // Final (test) block attends to everything.
                            return RangePair::single(0, t + 1);
                        }
                        let sink_end = (sink_blocks * block).min(t + 1);
                        let w_start = bi.saturating_sub(*window_blocks - 1) * *block;
                        RangePair::merged(0, sink_end, w_start, t + 1)
                    })
                    .collect()
            }
            MaskSpec::SharedQuestion {
                question_len,
                answer_lens,
            } => {
                let total: u64 =
                    *question_len as u64 + answer_lens.iter().map(|&a| a as u64).sum::<u64>();
                if total != len as u64 {
                    return Err(DcpError::InvalidMask(format!(
                        "shared-question segments sum to {total}, sequence length is {len}"
                    )));
                }
                let mut ranges = Vec::with_capacity(len as usize);
                for t in 0..*question_len {
                    ranges.push(RangePair::single(0, t + 1));
                }
                let mut start = *question_len;
                for &alen in answer_lens {
                    for t in start..start + alen {
                        ranges.push(RangePair::merged(0, *question_len, start, t + 1));
                    }
                    start += alen;
                }
                ranges
            }
            MaskSpec::Custom(ranges) => {
                if ranges.len() != len as usize {
                    return Err(DcpError::InvalidMask(format!(
                        "custom mask has {} token entries, sequence length is {len}",
                        ranges.len()
                    )));
                }
                for (t, r) in ranges.iter().enumerate() {
                    if r.end() > len {
                        return Err(DcpError::InvalidMask(format!(
                            "token {t} attends past the sequence end ({} > {len})",
                            r.end()
                        )));
                    }
                }
                ranges.iter().map(|r| r.normalized()).collect()
            }
        };
        Ok(Mask::from_ranges(len, ranges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_ranges() {
        let m = MaskSpec::Causal.instantiate(4).unwrap();
        for t in 0..4u32 {
            assert_eq!(m.allowed(t).count_total(), (t + 1) as u64);
            assert!(m.is_allowed(t, t));
            assert!(!m.is_allowed(t, t + 1) || t + 1 >= 4);
        }
    }

    #[test]
    fn full_mask_attends_everywhere() {
        let m = MaskSpec::Full.instantiate(5).unwrap();
        assert_eq!(m.total_pairs(), 25);
    }

    #[test]
    fn lambda_merges_overlapping_sink_and_window() {
        // Early tokens: sink and window overlap entirely -> single range.
        let m = MaskSpec::Lambda { sink: 4, window: 8 }
            .instantiate(32)
            .unwrap();
        let r = m.allowed(5);
        assert_eq!(r.count_total(), 6); // pure causal this early
        let r = m.allowed(20);
        // Sink 0..4 plus window 13..=20.
        assert_eq!(r.count_total(), 4 + 8);
        assert!(m.is_allowed(20, 2));
        assert!(!m.is_allowed(20, 10));
        assert!(m.is_allowed(20, 13));
    }

    #[test]
    fn lambda_is_subcausal() {
        let m = MaskSpec::paper_lambda().instantiate(8192).unwrap();
        for t in [0u32, 63, 64, 100, 4095, 4096, 8000] {
            assert!(m.is_allowed(t, t));
            if t + 1 < 8192 {
                assert!(!m.is_allowed(t, t + 1));
            }
        }
    }

    #[test]
    fn causal_blockwise_final_block_attends_all() {
        let m = MaskSpec::CausalBlockwise {
            block: 4,
            window_blocks: 2,
            sink_blocks: 1,
        }
        .instantiate(16)
        .unwrap();
        // Token 14 lives in the final block (12..16) -> fully causal.
        assert_eq!(m.allowed(14).count_total(), 15);
        // Token 9 (block 2): sink block 0..4, window blocks 1..=2 -> 4..=9.
        assert!(m.is_allowed(9, 0));
        assert!(m.is_allowed(9, 4));
        assert!(m.is_allowed(9, 9));
        // Out-of-window and not sink: block boundary check.
        let m2 = MaskSpec::CausalBlockwise {
            block: 2,
            window_blocks: 1,
            sink_blocks: 1,
        }
        .instantiate(10)
        .unwrap();
        assert!(!m2.is_allowed(5, 2)); // block 1 is neither sink nor in window of block 2
    }

    #[test]
    fn shared_question_answers_do_not_see_each_other() {
        let spec = MaskSpec::SharedQuestion {
            question_len: 4,
            answer_lens: vec![3, 3],
        };
        let m = spec.instantiate(10).unwrap();
        // Question is causal.
        assert!(m.is_allowed(2, 1));
        assert!(!m.is_allowed(2, 3));
        // Answer 1 (tokens 4..7) sees the question and itself.
        assert!(m.is_allowed(5, 0));
        assert!(m.is_allowed(5, 4));
        assert!(m.is_allowed(5, 5));
        assert!(!m.is_allowed(5, 6));
        // Answer 2 (tokens 7..10) does not see answer 1.
        assert!(m.is_allowed(8, 3));
        assert!(!m.is_allowed(8, 5));
        assert!(m.is_allowed(8, 7));
    }

    #[test]
    fn shared_question_rejects_bad_lengths() {
        let spec = MaskSpec::SharedQuestion {
            question_len: 4,
            answer_lens: vec![3, 3],
        };
        assert!(spec.instantiate(11).is_err());
    }

    #[test]
    fn paper_shared_question_splits_20_percent() {
        let spec = MaskSpec::paper_shared_question(1000);
        match &spec {
            MaskSpec::SharedQuestion {
                question_len,
                answer_lens,
            } => {
                assert_eq!(*question_len, 200);
                assert_eq!(answer_lens, &vec![200; 4]);
            }
            _ => unreachable!(),
        }
        spec.instantiate(1000).unwrap();
    }

    #[test]
    fn custom_mask_validates_bounds() {
        let spec = MaskSpec::Custom(vec![RangePair::single(0, 3); 2]);
        assert!(spec.instantiate(2).is_err()); // attends past end
        let spec = MaskSpec::Custom(vec![RangePair::single(0, 2); 2]);
        assert!(spec.instantiate(2).is_ok());
        let spec = MaskSpec::Custom(vec![RangePair::single(0, 1); 3]);
        assert!(spec.instantiate(2).is_err()); // wrong arity
    }

    #[test]
    fn packed_documents_are_block_diagonal() {
        let spec = MaskSpec::packed_documents(&[3, 4, 2]);
        let m = spec.instantiate(9).unwrap();
        // Causal within each document.
        assert!(m.is_allowed(1, 0));
        assert!(!m.is_allowed(1, 2));
        assert!(m.is_allowed(5, 3));
        // Blind across documents.
        assert!(!m.is_allowed(3, 2));
        assert!(!m.is_allowed(8, 0));
        assert!(m.is_allowed(8, 7));
        // Pair count: sum of per-document causal counts.
        let causal = |n: u64| n * (n + 1) / 2;
        assert_eq!(m.total_pairs(), causal(3) + causal(4) + causal(2));
        // Wrong length is rejected.
        assert!(spec.instantiate(10).is_err());
    }

    #[test]
    fn zero_length_rejected() {
        assert!(MaskSpec::Causal.instantiate(0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = MaskSpec::paper_causal_blockwise();
        let s = serde_json::to_string(&spec).unwrap();
        let back: MaskSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(spec, back);
    }
}
