//! Criterion benchmark: full planner throughput vs block size (the speed
//! side of the paper's Fig. 18) and vs mask sparsity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_core::{Planner, PlannerConfig};
use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
use dcp_mask::MaskSpec;
use dcp_types::{AttnSpec, ClusterSpec};

fn bench_planner(c: &mut Criterion) {
    let cluster = dcp_core::cp_cluster(&ClusterSpec::p4de(8), 4);
    let lengths = sample_lengths(DatasetKind::LongAlign, 64, 1.0, 65536, 1);
    let batch = pack_batches(&lengths, 65536, |l| MaskSetting::Causal.mask_for(l))
        .remove(0)
        .seqs;

    let mut group = c.benchmark_group("planner_block_size");
    group.sample_size(10);
    for block in [1024u32, 2048, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            let planner = Planner::new(
                cluster.clone(),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: block,
                    ..Default::default()
                },
            );
            b.iter(|| planner.plan(&batch).expect("plan"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("planner_masks");
    group.sample_size(10);
    for (name, mask) in [
        ("causal", MaskSpec::Causal),
        ("lambda", MaskSpec::paper_lambda()),
    ] {
        let masked: Vec<(u32, MaskSpec)> = batch.iter().map(|(l, _)| (*l, mask.clone())).collect();
        group.bench_function(name, |b| {
            let planner = Planner::new(
                cluster.clone(),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 2048,
                    ..Default::default()
                },
            );
            b.iter(|| planner.plan(&masked).expect("plan"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
