//! Criterion benchmark: the multilevel hypergraph partitioner on planner-
//! shaped hypergraphs of increasing size, the FM-refinement ablation, and
//! the gain-cache FM pass against the legacy lazy-heap implementation on a
//! planted k-way instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_core::Planner;
use dcp_hypergraph::{partition, refine, Hypergraph, HypergraphBuilder, PartitionConfig};
use dcp_mask::MaskSpec;
use dcp_types::AttnSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn planner_hypergraph(len: u32, block: u32) -> dcp_hypergraph::Hypergraph {
    let layout = BatchLayout::build(
        AttnSpec::paper_micro(),
        BlockConfig {
            block_size: block,
            head_blocks: 2,
        },
        &[(len, MaskSpec::Causal)],
    )
    .expect("layout");
    Planner::build_hypergraph(&layout)
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_16way");
    group.sample_size(10);
    for len in [16384u32, 32768, 65536] {
        let hg = planner_hypergraph(len, 1024);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("L{len}_v{}", hg.num_vertices())),
            &hg,
            |b, hg| {
                let cfg = PartitionConfig::new(16);
                b.iter(|| partition(hg, &cfg).expect("partition"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("partition_refine_ablation");
    group.sample_size(10);
    let hg = planner_hypergraph(32768, 1024);
    for refine in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if refine { "fm_on" } else { "fm_off" }),
            &refine,
            |b, &refine| {
                let mut cfg = PartitionConfig::new(16);
                cfg.refine_enabled = refine;
                b.iter(|| partition(&hg, &cfg).expect("partition"));
            },
        );
    }
    group.finish();
}

/// A planted k-way instance shaped like the planner's hypergraphs: `k`
/// clusters of `size` unit-weight vertices, each a weight-10 ring, plus
/// many-pin "consumer" hyperedges inside each cluster (one per ring vertex,
/// spanning the next 16 vertices — the shape KV-broadcast edges take) and
/// weight-1 bridges between consecutive clusters. The returned start
/// assignment is the planted optimum with the first few vertices of each
/// adjacent cluster pair swapped — local damage of the kind multilevel
/// projection hands to FM. Many-pin edges make single-gain recomputation
/// expensive, which is exactly what the gain cache amortizes.
fn planted_kway(k: u32, size: usize) -> (Hypergraph, Vec<u32>, [u64; 2]) {
    let n = k as usize * size;
    let mut b = HypergraphBuilder::new(n);
    for v in 0..n {
        b.set_vertex_weight(v, [1, 1]);
    }
    for c in 0..k as usize {
        let base = c * size;
        for i in 0..size {
            b.add_edge(10, &[(base + i) as u32, (base + (i + 1) % size) as u32]);
        }
        for i in (0..size).step_by(4) {
            let pins: Vec<u32> = (0..16.min(size))
                .map(|j| (base + (i + j) % size) as u32)
                .collect();
            b.add_edge(3, &pins);
        }
        let next = ((c + 1) % k as usize) * size;
        b.add_edge(1, &[base as u32, next as u32]);
    }
    let hg = b.build().expect("planted instance");
    let mut assignment: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
    let damage = (size / 16).clamp(2, 16);
    for c in 0..k as usize - 1 {
        for i in 0..damage {
            assignment.swap(c * size + i, (c + 1) * size + i);
        }
    }
    let caps = [(size + 2 * damage) as u64; 2];
    (hg, assignment, caps)
}

/// Gain-cache FM vs the legacy lazily-revalidated-heap FM, same planted
/// instance, same seed and pass budget.
fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_refinement_8way");
    group.sample_size(20);
    for size in [64usize, 256, 1024] {
        let (hg, start, caps) = planted_kway(8, size);
        group.bench_with_input(BenchmarkId::new("gain_cache", size), &size, |b, _| {
            b.iter(|| {
                let mut a = start.clone();
                let mut rng = SmallRng::seed_from_u64(7);
                refine::refine(&hg, &mut a, 8, &caps.into(), 8, &mut rng)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reference_lazy_heap", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let mut a = start.clone();
                    let mut rng = SmallRng::seed_from_u64(7);
                    refine::reference::refine(&hg, &mut a, 8, &caps.into(), 8, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioner, bench_refinement);
criterion_main!(benches);
