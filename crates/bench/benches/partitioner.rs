//! Criterion benchmark: the multilevel hypergraph partitioner on planner-
//! shaped hypergraphs of increasing size, and the FM-refinement ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_core::Planner;
use dcp_hypergraph::{partition, PartitionConfig};
use dcp_mask::MaskSpec;
use dcp_types::AttnSpec;

fn planner_hypergraph(len: u32, block: u32) -> dcp_hypergraph::Hypergraph {
    let layout = BatchLayout::build(
        AttnSpec::paper_micro(),
        BlockConfig {
            block_size: block,
            head_blocks: 2,
        },
        &[(len, MaskSpec::Causal)],
    )
    .expect("layout");
    Planner::build_hypergraph(&layout)
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_16way");
    group.sample_size(10);
    for len in [16384u32, 32768, 65536] {
        let hg = planner_hypergraph(len, 1024);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("L{len}_v{}", hg.num_vertices())),
            &hg,
            |b, hg| {
                let cfg = PartitionConfig::new(16);
                b.iter(|| partition(hg, &cfg).expect("partition"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("partition_refine_ablation");
    group.sample_size(10);
    let hg = planner_hypergraph(32768, 1024);
    for refine in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if refine { "fm_on" } else { "fm_off" }),
            &refine,
            |b, &refine| {
                let mut cfg = PartitionConfig::new(16);
                cfg.refine_enabled = refine;
                b.iter(|| partition(&hg, &cfg).expect("partition"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
