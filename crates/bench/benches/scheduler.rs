//! Criterion benchmark: division scheduling and instruction emission
//! (Listing 3) and the ablation over the number of divisions T.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, Placement, ScheduleConfig};
use dcp_types::AttnSpec;

fn setup(len: u32) -> (BatchLayout, Placement) {
    let layout = BatchLayout::build(
        AttnSpec::paper_micro(),
        BlockConfig {
            block_size: 1024,
            head_blocks: 2,
        },
        &[(len, MaskSpec::Causal)],
    )
    .expect("layout");
    let n = 16u32;
    let token_to_dev: Vec<u32> = (0..layout.token_blocks.len() as u32)
        .map(|i| i % n)
        .collect();
    let comp_to_dev: Vec<u32> = layout
        .comp_blocks
        .iter()
        .map(|c| token_to_dev[c.q_block.0 as usize])
        .collect();
    (
        layout,
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        },
    )
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build_plan");
    group.sample_size(10);
    for len in [32768u32, 65536, 131072] {
        let (layout, placement) = setup(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| build_plan(&layout, &placement, &ScheduleConfig::default()).expect("plan"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("schedule_divisions");
    group.sample_size(10);
    let (layout, placement) = setup(65536);
    for t in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                build_plan(
                    &layout,
                    &placement,
                    &ScheduleConfig {
                        divisions: t,
                        ..Default::default()
                    },
                )
                .expect("plan")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
