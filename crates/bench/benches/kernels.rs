//! Criterion benchmark: the numerical blockwise attention kernels (forward,
//! merge, backward) on realistic block shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_exec::kernels::{
    attn_block_bwd, attn_block_fwd, merge_outputs, BlockAcc, BlockArgs, BlockBwdArgs,
};
use dcp_mask::MaskSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn randv(n: usize, rng: &mut SmallRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let (qh, kvh, dim) = (4usize, 2usize, 32usize);
    let mut rng = SmallRng::seed_from_u64(1);

    let mut group = c.benchmark_group("attn_block_fwd");
    for block in [64usize, 128, 256] {
        let q = randv(block * qh * dim, &mut rng);
        let k = randv(block * kvh * dim, &mut rng);
        let v = randv(block * kvh * dim, &mut rng);
        let mask = MaskSpec::Causal.instantiate(2 * block as u32).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| {
                let mut acc = BlockAcc::new(block, qh, dim);
                attn_block_fwd(
                    &mut acc,
                    BlockArgs {
                        q: &q,
                        k: &k,
                        v: &v,
                        qh,
                        kvh,
                        dim,
                        q_len: block,
                        kv_len: block,
                        q_start: block as u32,
                        kv_start: 0,
                        mask: &mask,
                        scale: 0.17,
                    },
                );
                acc.finalize()
            });
        });
    }
    group.finish();

    let block = 128usize;
    let q = randv(block * qh * dim, &mut rng);
    let k = randv(block * kvh * dim, &mut rng);
    let v = randv(block * kvh * dim, &mut rng);
    let mask = MaskSpec::Causal.instantiate(2 * block as u32).unwrap();
    let mut acc = BlockAcc::new(block, qh, dim);
    let args = BlockArgs {
        q: &q,
        k: &k,
        v: &v,
        qh,
        kvh,
        dim,
        q_len: block,
        kv_len: block,
        q_start: block as u32,
        kv_start: 0,
        mask: &mask,
        scale: 0.17,
    };
    attn_block_fwd(&mut acc, args);
    let (o, lse) = acc.finalize();
    let d_o = randv(block * qh * dim, &mut rng);

    c.bench_function("attn_block_bwd_128", |b| {
        b.iter(|| {
            let mut dq = vec![0.0f32; block * qh * dim];
            let mut dk = vec![0.0f32; block * kvh * dim];
            let mut dv = vec![0.0f32; block * kvh * dim];
            attn_block_bwd(
                BlockBwdArgs {
                    fwd: args,
                    o: &o,
                    lse: &lse,
                    d_o: &d_o,
                },
                &mut dq,
                &mut dk,
                &mut dv,
            );
            (dq, dk, dv)
        });
    });

    c.bench_function("merge_outputs_128", |b| {
        b.iter(|| merge_outputs(&o, &lse, &o, &lse, dim));
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
