//! Figure 22: decomposition of end-to-end iteration time (LongAlign,
//! max sequence length 131072) into attention computation, exposed
//! (non-overlapped) CP communication, overlapped communication, and
//! everything else (context-independent ops, gradient sync, optimizer) —
//! for DCP and the MLM(TE) baseline under all four masks.

use dcp_baselines::Baseline;
use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, run_baseline, run_dcp,
    write_results, Table, BASELINE_BLOCK,
};
use dcp_core::{simulate_iteration, E2eConfig, PlannerConfig};
use dcp_data::{DatasetKind, MaskSetting};

fn main() {
    let cp = e2e_cp_cluster();
    let cfg = E2eConfig::paper();
    let attn = micro_attn();
    let n = num_batches();
    const MAX_LEN: u32 = 131_072;

    let mut table = Table::new(&[
        "mask",
        "system",
        "attn_s",
        "exposed_comm_s",
        "overlap_comm_s",
        "other_s",
        "total_s",
    ]);
    for mask in MaskSetting::ALL {
        let batches = make_batches(
            DatasetKind::LongAlign,
            1.0,
            MAX_LEN,
            MAX_LEN as u64,
            mask,
            n,
        );
        for system in ["DCP", "MLM"] {
            let mut attn_t = Vec::new();
            let mut exposed = Vec::new();
            let mut overlap = Vec::new();
            let mut other = Vec::new();
            let mut total = Vec::new();
            for batch in &batches {
                let (sim, max_tokens, total_tokens) = if system == "DCP" {
                    let (sim, out) = run_dcp(
                        &cp,
                        attn,
                        &PlannerConfig {
                            block_size: 2048,
                            ..Default::default()
                        },
                        batch,
                    )
                    .expect("dcp");
                    let mt = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                    (sim, mt, out.layout.total_tokens())
                } else {
                    let (sim, out) = run_baseline(
                        &cp,
                        attn,
                        Baseline::TransformerEngine { head_groups: 2 },
                        BASELINE_BLOCK,
                        batch,
                    )
                    .expect("te");
                    let mt = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                    (sim, mt, out.layout.total_tokens())
                };
                let it = simulate_iteration(&cfg, &sim, max_tokens, total_tokens);
                attn_t.push(it.attn_compute);
                exposed.push(it.exposed_comm);
                overlap.push(it.overlap_comm);
                other.push(it.ctx_independent + it.grad_sync + it.other);
                total.push(it.total);
            }
            table.row(vec![
                mask.name().to_string(),
                system.to_string(),
                format!("{:.3}", mean(&attn_t)),
                format!("{:.3}", mean(&exposed)),
                format!("{:.3}", mean(&overlap)),
                format!("{:.3}", mean(&other)),
                format!("{:.3}", mean(&total)),
            ]);
        }
    }
    println!("Fig. 22 — iteration time decomposition (LongAlign, max_len 131072, {n} batches)");
    table.print();
    write_results("fig22_decomposition", &table.to_json());
}
