//! Figure 1: context-parallel communication overhead when training the 8B
//! GPT with TP=4 / CP=16 on LongAlign, as a function of the maximum
//! sequence length — with and without computation/communication overlap.
//!
//! Reproduces the paper's motivation bar chart: static CP (the MLM/TE
//! zigzag baseline) pays a communication cost that grows with context
//! length, and a large fraction of iteration time even with overlap.

use dcp_baselines::Baseline;
use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, write_results, Table,
    BASELINE_BLOCK,
};
use dcp_core::{simulate_iteration, E2eConfig};
use dcp_data::{DatasetKind, MaskSetting};
use dcp_sched::{Instr, PhasePlan};
use dcp_sim::simulate_plan;

/// Rewrites a phase so every `CommLaunch` sits directly before its
/// `CommWait`: communication is fully serialized with computation (the
/// paper's "w/o overlap" bars).
fn serialize_comm(phase: &PhasePlan) -> PhasePlan {
    let mut out = phase.clone();
    for dev in &mut out.devices {
        let mut instrs = Vec::with_capacity(dev.instrs.len());
        let mut pending: Vec<Instr> = Vec::new();
        for ins in &dev.instrs {
            match ins {
                Instr::CommLaunch(cid) => pending.push(Instr::CommLaunch(*cid)),
                Instr::CommWait(cid) => {
                    if let Some(p) = pending
                        .iter()
                        .position(|i| matches!(i, Instr::CommLaunch(c) if c == cid))
                    {
                        instrs.push(pending.remove(p));
                    }
                    instrs.push(ins.clone());
                }
                other => instrs.push(other.clone()),
            }
        }
        instrs.extend(pending);
        dev.instrs = instrs;
    }
    out
}

fn main() {
    let cp = e2e_cp_cluster();
    let cfg = E2eConfig::paper();
    let n = num_batches();

    let mut table = Table::new(&[
        "max_len",
        "iter_s",
        "comm_overlap_s",
        "frac_overlap",
        "iter_serial_s",
        "comm_serial_s",
        "frac_serial",
    ]);
    for max_len in [32768u32, 65536, 131072, 262144] {
        let batches = make_batches(
            DatasetKind::LongAlign,
            1.0,
            max_len,
            max_len as u64,
            MaskSetting::Causal,
            n,
        );
        let mut iter_t = Vec::new();
        let mut comm_ov = Vec::new();
        let mut iter_serial = Vec::new();
        let mut comm_serial = Vec::new();
        for batch in &batches {
            let te = Baseline::TransformerEngine { head_groups: 2 }
                .build(micro_attn(), cp.num_devices(), BASELINE_BLOCK, batch)
                .expect("te builds");
            let sim = simulate_plan(&cp, &te.plan).expect("sim");
            let max_tokens = *te.placement.token_loads(&te.layout).iter().max().unwrap();
            let it = simulate_iteration(&cfg, &sim, max_tokens, te.layout.total_tokens());
            iter_t.push(it.total);
            comm_ov.push(it.exposed_comm);

            // Serialized variant.
            let mut plan = te.plan.clone();
            plan.fwd = serialize_comm(&plan.fwd);
            plan.bwd = serialize_comm(&plan.bwd);
            let sim_s = simulate_plan(&cp, &plan).expect("sim serial");
            let it_s = simulate_iteration(&cfg, &sim_s, max_tokens, te.layout.total_tokens());
            iter_serial.push(it_s.total);
            comm_serial.push(it_s.exposed_comm);
        }
        let (it, co, its, cs) = (
            mean(&iter_t),
            mean(&comm_ov),
            mean(&iter_serial),
            mean(&comm_serial),
        );
        table.row(vec![
            max_len.to_string(),
            format!("{it:.3}"),
            format!("{co:.3}"),
            format!("{:.1}%", 100.0 * co / it),
            format!("{its:.3}"),
            format!("{cs:.3}"),
            format!("{:.1}%", 100.0 * cs / its),
        ]);
    }
    println!("Fig. 1 — static CP communication overhead (8B GPT, TP4 x CP16, LongAlign)");
    table.print();
    write_results("fig01_comm_overhead", &table.to_json());
}
