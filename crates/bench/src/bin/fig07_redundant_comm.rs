//! Figure 7: redundant KV communication of ring attention under a
//! shared-question mask. A KV block transfer is *redundant* when the
//! receiving device has no computation block consuming it — ring attention
//! relays everything anyway; DCP transfers only what is consumed.

use dcp_baselines::Baseline;
use dcp_bench::write_results;
use dcp_core::{Planner, PlannerConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{ExecutionPlan, Payload, Placement};
use dcp_types::{AttnSpec, ClusterSpec};
use serde_json::json;

/// Counts (used, redundant) KV-block transfers of the forward phase.
fn classify(
    plan: &ExecutionPlan,
    placement: &Placement,
    layout: &dcp_blocks::BatchLayout,
) -> (u64, u64) {
    let mut used = 0u64;
    let mut redundant = 0u64;
    for op in &plan.fwd.comms {
        for tr in &op.transfers {
            if let Payload::Kv(tb) = tr.payload {
                let consumed = layout.kv_consumers[tb.0 as usize]
                    .iter()
                    .any(|&c| placement.comp_dev(c) == tr.to);
                if consumed {
                    used += 1;
                } else {
                    redundant += 1;
                }
            }
        }
    }
    (used, redundant)
}

fn main() {
    // One sequence of 8 mask blocks on 4 devices, shared-question mask with
    // one question and two answers (mirroring the paper's Fig. 7 example).
    let b = 1024u32;
    let len = 8 * b;
    let mask = MaskSpec::SharedQuestion {
        question_len: 2 * b,
        answer_lens: vec![3 * b, 3 * b],
    };
    let attn = AttnSpec::paper_micro();
    let cluster = ClusterSpec::single_node(4);

    let ring = Baseline::RfaRing
        .build(attn, 4, b, &[(len, mask.clone())])
        .expect("ring");
    let (ru, rr) = classify(&ring.plan, &ring.placement, &ring.layout);

    let planner = Planner::new(
        cluster,
        attn,
        PlannerConfig {
            block_size: b,
            ..Default::default()
        },
    );
    let dcp = planner.plan(&[(len, mask)]).expect("plan");
    let (du, dr) = classify(&dcp.plan, &dcp.placement, &dcp.layout);

    println!("Fig. 7 — redundant KV-block communication, shared-question mask, 4 devices\n");
    println!(
        "ring attention: {} KV block transfers, {} redundant ({:.0}%)",
        ru + rr,
        rr,
        100.0 * rr as f64 / (ru + rr).max(1) as f64
    );
    println!(
        "DCP:            {} KV block transfers, {} redundant",
        du + dr,
        dr
    );
    println!("\ncomputation imbalance (max/avg FLOPs):");
    let imb = |p: &Placement, l: &dcp_blocks::BatchLayout| {
        let loads = p.comp_loads(l);
        *loads.iter().max().unwrap() as f64
            / (loads.iter().sum::<u64>() as f64 / loads.len() as f64)
    };
    println!("ring attention: {:.2}", imb(&ring.placement, &ring.layout));
    println!("DCP:            {:.2}", imb(&dcp.placement, &dcp.layout));

    assert_eq!(dr, 0, "DCP never transfers unused KV blocks");
    write_results(
        "fig07_redundant_comm",
        &json!({
            "ring": {"transfers": ru + rr, "redundant": rr},
            "dcp": {"transfers": du + dr, "redundant": dr},
        }),
    );
}
