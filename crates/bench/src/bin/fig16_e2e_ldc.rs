//! Figure 16: end-to-end per-iteration training time on LongDataCollections
//! — same setup as Fig. 15 (8B GPT, TP4 x CP16, DCP vs MLM/TE).

use dcp_bench::e2e_figure;
use dcp_data::DatasetKind;

fn main() {
    e2e_figure(DatasetKind::LongDataCollections, "fig16_e2e_ldc");
}
