//! Figure 19: DCP communication volume vs mask sparsity. Sparsity is the
//! mask's FLOPs relative to the causal mask (the paper's definition); the
//! sweep varies the lambda-mask window. DCP's communication should grow
//! roughly linearly with sparsity — it exploits every masked-out block.

use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, run_dcp, write_results, Table,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};
use dcp_mask::MaskSpec;

fn main() {
    let cp = e2e_cp_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const MAX_LEN: u32 = 131_072;

    let mut table = Table::new(&[
        "dataset",
        "window",
        "sparsity",
        "DCP_comm_MiB",
        "comm_per_sparsity",
    ]);
    for kind in [DatasetKind::LongAlign, DatasetKind::LongDataCollections] {
        // Base batches: lengths only; masks substituted per window below.
        let base = make_batches(kind, 1.0, MAX_LEN, MAX_LEN as u64, MaskSetting::Causal, n);
        for window in [2048u32, 4096, 8192, 16384, 32768, 65536, 131072] {
            let mut comm = Vec::new();
            let mut sparsity = Vec::new();
            for batch in &base {
                let masked: Vec<(u32, MaskSpec)> = batch
                    .iter()
                    .map(|(l, _)| (*l, MaskSpec::Lambda { sink: 64, window }))
                    .collect();
                let (_, out) = run_dcp(
                    &cp,
                    attn,
                    &PlannerConfig {
                        block_size: 1024,
                        ..Default::default()
                    },
                    &masked,
                )
                .expect("dcp");
                comm.push(out.plan.total_comm_bytes() as f64);
                // Batch sparsity: masked pairs / causal pairs, token-weighted.
                let mut pairs = 0f64;
                let mut causal = 0f64;
                for m in &out.layout.masks {
                    pairs += m.total_pairs() as f64;
                    let l = m.len() as f64;
                    causal += l * (l + 1.0) / 2.0;
                }
                sparsity.push(pairs / causal);
            }
            let c = mean(&comm) / (1u64 << 20) as f64;
            let s = mean(&sparsity);
            table.row(vec![
                kind.name().to_string(),
                window.to_string(),
                format!("{s:.3}"),
                format!("{c:.1}"),
                format!("{:.1}", c / s),
            ]);
        }
    }
    println!("Fig. 19 — DCP communication vs mask sparsity (lambda window sweep, {n} batches)");
    table.print();
    println!("\nA roughly constant comm_per_sparsity column is the paper's \"grows nearly\nlinearly with mask sparsity\" observation.");
    write_results("fig19_comm_vs_sparsity", &table.to_json());
}
