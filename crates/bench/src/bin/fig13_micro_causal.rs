//! Figure 13: attention micro-benchmark under the causal mask — forward and
//! backward time of DCP vs RingFlashAttention (Ring, ZigZag), LoongTrain
//! (best inner ring) and TransformerEngine, across sequence-length scales
//! {0.5, 1, 2, 4} of LongDataCollections with a 131072-token batch budget
//! on 32 GPUs (4 p4de nodes).

use dcp_baselines::Baseline;
use dcp_bench::{
    make_batches, mean, micro_attn, micro_cluster, num_batches, run_baseline, run_dcp_best,
    run_loongtrain_best, write_results, Table, BASELINE_BLOCK,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let n = num_batches();
    let block = 1024u32;
    const BUDGET: u64 = 131_072;

    let mut table = Table::new(&[
        "scale",
        "phase",
        "DCP_ms",
        "RFA-Ring_ms",
        "RFA-ZigZag_ms",
        "LT_ms",
        "TE_ms",
        "speedup_vs_best",
    ]);
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let batches = make_batches(
            DatasetKind::LongDataCollections,
            scale,
            BUDGET as u32,
            BUDGET,
            MaskSetting::Causal,
            n,
        );
        let mut acc: Vec<[Vec<f64>; 2]> = (0..5).map(|_| [Vec::new(), Vec::new()]).collect();
        for batch in &batches {
            let (sim, _) = run_dcp_best(
                &cluster,
                attn,
                &PlannerConfig {
                    block_size: block,
                    ..Default::default()
                },
                batch,
            )
            .expect("dcp");
            acc[0][0].push(sim.fwd.makespan);
            acc[0][1].push(sim.bwd.makespan);
            for (i, b) in [Baseline::RfaRing, Baseline::RfaZigzag].iter().enumerate() {
                let (s, _) = run_baseline(&cluster, attn, *b, BASELINE_BLOCK, batch).expect("rfa");
                acc[1 + i][0].push(s.fwd.makespan);
                acc[1 + i][1].push(s.bwd.makespan);
            }
            let (s, _) = run_loongtrain_best(&cluster, attn, 2, BASELINE_BLOCK, batch).expect("lt");
            acc[3][0].push(s.fwd.makespan);
            acc[3][1].push(s.bwd.makespan);
            let (s, _) = run_baseline(
                &cluster,
                attn,
                Baseline::TransformerEngine { head_groups: 2 },
                BASELINE_BLOCK,
                batch,
            )
            .expect("te");
            acc[4][0].push(s.fwd.makespan);
            acc[4][1].push(s.bwd.makespan);
        }
        for (pi, phase) in ["fwd", "bwd"].iter().enumerate() {
            let ms: Vec<f64> = (0..5).map(|i| mean(&acc[i][pi]) * 1e3).collect();
            let best_baseline = ms[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            table.row(vec![
                format!("{scale}"),
                phase.to_string(),
                format!("{:.2}", ms[0]),
                format!("{:.2}", ms[1]),
                format!("{:.2}", ms[2]),
                format!("{:.2}", ms[3]),
                format!("{:.2}", ms[4]),
                format!("{:.2}x", best_baseline / ms[0]),
            ]);
        }
    }
    println!(
        "Fig. 13 — micro-benchmark, causal mask, LongDataCollections, 32 GPUs, {n} batches/config"
    );
    table.print();
    write_results("fig13_micro_causal", &table.to_json());
}
