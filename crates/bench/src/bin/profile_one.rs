//! Developer utility: time each pipeline stage on one micro-benchmark batch
//! (DCP plan + sim, and each baseline). Useful for finding harness
//! bottlenecks; not one of the paper's figures.

use std::time::Instant;

use dcp_baselines::Baseline;
use dcp_bench::{make_batches, micro_attn, micro_cluster, run_loongtrain_best};
use dcp_core::{Planner, PlannerConfig};
use dcp_data::{DatasetKind, MaskSetting};
use dcp_sim::simulate_plan;

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let batch = &make_batches(
        DatasetKind::LongDataCollections,
        scale,
        131072,
        131072,
        MaskSetting::Causal,
        1,
    )[0];
    println!(
        "scale {scale}: {} sequences, {} tokens",
        batch.len(),
        batch.iter().map(|(l, _)| *l as u64).sum::<u64>()
    );

    let t = Instant::now();
    let planner = Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: 1024,
            ..Default::default()
        },
    );
    let out = planner.plan(batch).expect("plan");
    println!(
        "dcp plan: {:.2}s (blocks {:.2}s partition {:.2}s schedule {:.2}s) — {} comp blocks",
        t.elapsed().as_secs_f64(),
        out.times.block_gen,
        out.times.partition,
        out.times.schedule,
        out.layout.comp_blocks.len()
    );
    let t = Instant::now();
    let sim = simulate_plan(&cluster, &out.plan).expect("sim");
    println!(
        "dcp sim: {:.2}s -> {:.3}ms",
        t.elapsed().as_secs_f64(),
        sim.total() * 1e3
    );

    for b in [
        Baseline::RfaRing,
        Baseline::RfaZigzag,
        Baseline::TransformerEngine { head_groups: 2 },
    ] {
        let t = Instant::now();
        let o = b
            .build(attn, cluster.num_devices(), 1024, batch)
            .expect("build");
        let tb = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let s = simulate_plan(&cluster, &o.plan).expect("sim");
        println!(
            "{:<12} build {tb:.2}s sim {:.2}s -> {:.3}ms ({} comp blocks)",
            b.name(),
            t.elapsed().as_secs_f64(),
            s.total() * 1e3,
            o.layout.comp_blocks.len()
        );
    }
    let t = Instant::now();
    let (s, o) = run_loongtrain_best(&cluster, attn, 2, 1024, batch).expect("lt");
    println!(
        "loongtrain*4 build+sim {:.2}s -> {:.3}ms ({} comp blocks, padded {} tokens)",
        t.elapsed().as_secs_f64(),
        s.total() * 1e3,
        o.layout.comp_blocks.len(),
        o.layout.total_tokens()
    );
}
