//! Executor performance report: measures the parallel blockwise execution
//! hot path on a pinned workload and records wall-times, throughput and the
//! speedup over single-threaded execution.
//!
//! Workload (fixed): a p4de(2) cluster (16 devices), LongDataCollections
//! sequence lengths, causal + sparse mask settings, fixed seeds. Each batch
//! runs through plan → execute (forward + backward) → simulate. Execution is
//! timed twice in-process — once at the default rayon width and once with
//! `RAYON_NUM_THREADS=1` — and the two results are compared bitwise, so
//! every report run re-verifies the executor's determinism contract.
//!
//! Writes `BENCH_exec.json` (execution timings), `BENCH_plan.json`
//! (planning/simulation timings, planner stage breakdown, plan-cache hit
//! rates and the serial-vs-parallel partitioner equivalence check) and
//! `BENCH_robustness.json` (fallback-tier plan latencies, fault-injected
//! makespans and dataloader recovery stats with structured replan events)
//! to the current directory.
//!
//! The planner section plans every batch twice through one shared
//! [`Planner`]: the first (cold) plan runs the full multilevel pipeline and
//! is the `plan_wall_s` the latency gate watches; the second (warm) plan
//! must be served by the signature-keyed plan cache. Each batch is also
//! re-planned by two fresh planners at `RAYON_NUM_THREADS=1` and the
//! default width, asserting the partitioner's serial/parallel determinism.
//!
//! A separate `planner_incremental` section measures the near-hit
//! warm-start tier: identical re-plans must reproduce the cold plan bit
//! for bit (asserted structurally and through the `dcp-exec` execution
//! oracle) inside the gate's sub-millisecond budget, and drifted re-plans
//! (same block shape, shifted lengths) time the delta-refinement path and
//! its near-hit rate.
//!
//! Environment knobs: `DCP_BENCH_BATCHES` (default 2) batches per mask.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcp_bench::{trace_doc, trace_workload, Table, BENCH_SCHEMA_VERSION};
use dcp_blocks::TokenBlockId;
use dcp_core::dataloader::PlanFn;
use dcp_core::{
    simulate_iteration, simulate_iteration_with_recovery, DcpDataloader, E2eConfig, FailureEvent,
    IncrementalConfig, PlanOutput, Planner, PlannerConfig, RecoveryConfig, RecoveryPlanner,
    RetryConfig,
};
use dcp_data::{pack_batches, sample_lengths, Batch, DatasetKind, MaskSetting};
use dcp_exec::executor::{
    execute_backward, execute_forward, execute_forward_recovery, BatchData, BlockGrads, BlockOut,
    ExecObs, SalvageCtx,
};
use dcp_exec::plans_equivalent;
use dcp_mask::MaskSpec;
use dcp_sched::{verify_phase, verify_structure, Instr, PassConfig, PassManager};
use dcp_sim::{simulate_phase, simulate_plan, simulate_plan_faulted, Fault, FaultSpec};
use dcp_types::{AttnSpec, ClusterSpec, ModelSpec, PlanTier};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

/// Fixed dataset seed (independent of `DCP_BENCH_SEED`: the report must be
/// comparable across machines and runs).
const SEED: u64 = 7;
/// Tokens per batch.
const BUDGET: u64 = 8192;
/// Maximum sequence length.
const MAX_LEN: u32 = 2048;
/// Planner block size (small, so divisions hold enough computation blocks
/// for the pool to chew on).
const BLOCK_SIZE: u32 = 128;

/// The executed attention operator. Smaller than the paper's (4Q/2KV heads,
/// d=16) so the numeric f32 executor, not the simulator, is the thing being
/// measured at a tractable scale.
fn exec_attn() -> AttnSpec {
    AttnSpec::new(4, 2, 16, 1)
}

fn batches_per_mask() -> usize {
    std::env::var("DCP_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Median of `values` (0.0 for an empty slice).
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Runs `f` with `RAYON_NUM_THREADS` set to `threads` (`None` = default
/// width), restoring the previous value afterwards. Works in-process: the
/// vendored rayon re-reads the variable at every parallel call.
fn with_rayon_threads<T>(threads: Option<&str>, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    match threads {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

struct ExecRun {
    wall_s: f64,
    fwd: HashMap<TokenBlockId, BlockOut>,
    bwd: HashMap<TokenBlockId, BlockGrads>,
}

/// Executes forward + backward once, timed.
fn run_exec(out: &PlanOutput, data: &BatchData, d_o: &HashMap<TokenBlockId, Vec<f32>>) -> ExecRun {
    let t0 = Instant::now();
    let fwd = execute_forward(&out.layout, &out.placement, &out.plan, data).expect("forward");
    let bwd = execute_backward(&out.layout, &out.placement, &out.plan, data, &fwd, d_o)
        .expect("backward");
    ExecRun {
        wall_s: t0.elapsed().as_secs_f64(),
        fwd,
        bwd,
    }
}

/// Robustness benchmarks: plan latency per fallback tier, fallback-tier
/// counts under an ε-infeasible partitioning request, fault-injected
/// simulation cost, and dataloader recovery from a killed planning worker.
fn robustness_report(cluster: &ClusterSpec, attn: AttnSpec, n: usize) -> serde_json::Value {
    let n = n.max(2);
    let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
    let batches: Vec<Batch> = pack_batches(&lengths, BUDGET, |l| MaskSetting::Causal.mask_for(l))
        .into_iter()
        .take(n)
        .collect();

    // Plan latency and simulated quality per fallback tier, same batches.
    let mut tier_rows = Vec::new();
    for tier in PlanTier::all() {
        let planner = Planner::new(
            cluster.clone(),
            attn,
            PlannerConfig {
                block_size: BLOCK_SIZE,
                force_tier: Some(tier),
                ..Default::default()
            },
        );
        let mut wall = 0.0f64;
        let mut sim_total = 0.0f64;
        for b in &batches {
            let t0 = Instant::now();
            let out = planner.plan(&b.seqs).expect("plan");
            wall += t0.elapsed().as_secs_f64();
            assert_eq!(out.tier, tier, "forced tier must be honored");
            sim_total += simulate_plan(cluster, &out.plan).expect("simulate").total();
        }
        tier_rows.push(json!({
            "tier": tier.label(),
            "batches": batches.len(),
            "plan_wall_s": wall,
            "simulated_total_s": sim_total,
        }));
    }

    // Fallback-tier counts when the partitioning request is ε-infeasible
    // (strict ε = 0 with coarse blocks: exact balance is impossible).
    let infeasible = Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: BLOCK_SIZE * 8,
            eps_intra: 0.0,
            strict_epsilon: true,
            ..Default::default()
        },
    );
    let mut tier_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for b in &batches {
        let out = infeasible.plan(&b.seqs).expect("fallback plan");
        *tier_counts.entry(out.tier.label()).or_insert(0) += 1;
    }

    // Fault-injected simulation of the default (partitioned) plans.
    let faults = FaultSpec {
        seed: SEED,
        faults: vec![
            Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            Fault::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.1,
            },
            Fault::DelayedStart {
                device: 2,
                delay_s: 1e-3,
            },
        ],
    };
    let planner = Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: BLOCK_SIZE,
            ..Default::default()
        },
    );
    let mut fault_rows = Vec::new();
    for (bi, b) in batches.iter().enumerate() {
        let out = planner.plan(&b.seqs).expect("plan");
        let clean = simulate_plan(cluster, &out.plan).expect("simulate");
        let faulted = simulate_plan_faulted(cluster, &out.plan, &faults).expect("simulate faulted");
        fault_rows.push(json!({
            "batch": bi,
            "clean_total_s": clean.total(),
            "faulted_total_s": faulted.total(),
            "slowdown": faulted.total() / clean.total(),
        }));
    }

    // Elastic mid-iteration recovery: kill the busiest device of each
    // batch's plan halfway through its attention divisions, patch-plan the
    // residual work onto the survivors, and price the patch (planning
    // latency, redone computation, recovered-vs-clean makespan).
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let mut recovery_rows = Vec::new();
    let mut patch_walls: Vec<f64> = Vec::new();
    for (bi, b) in batches.iter().enumerate() {
        let out = planner.plan(&b.seqs).expect("plan");
        let (dev, nd) = out
            .plan
            .fwd
            .devices
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let n = s
                    .instrs
                    .iter()
                    .filter(|ins| matches!(ins, Instr::Attn { .. }))
                    .count() as u32;
                (i as u32, n)
            })
            .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
            .expect("nonempty plan");
        if nd < 2 {
            continue;
        }
        let k = (nd / 2).max(1);
        let patch = rp
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: dev,
                    divisions_done: k,
                },
            )
            .expect("patch plan");
        let clean_fwd = simulate_phase(cluster, &out.plan.fwd).expect("simulate clean fwd");
        let recovered_fwd = simulate_phase(cluster, &patch.timing).expect("simulate recovered fwd");
        let st = patch.stats;
        patch_walls.push(st.plan_wall_s);
        recovery_rows.push(json!({
            "batch": bi,
            "failed_device": dev,
            "divisions_done": k,
            "attn_divisions": nd,
            "patch_plan_wall_s": st.plan_wall_s,
            "failed_flops": st.failed_flops,
            "redone_flops": st.redone_flops,
            "redone_fraction": if st.failed_flops > 0 {
                st.redone_flops as f64 / st.failed_flops as f64
            } else {
                0.0
            },
            "salvage_bytes": st.salvage_bytes,
            "refetch_bytes": st.refetch_bytes,
            "residual_units": st.residual_units as u64,
            "greedy_fallback": st.greedy_fallback,
            "clean_fwd_makespan_s": clean_fwd.makespan,
            "recovered_fwd_makespan_s": recovered_fwd.makespan,
            "makespan_ratio": if clean_fwd.makespan > 0.0 {
                recovered_fwd.makespan / clean_fwd.makespan
            } else {
                0.0
            },
        }));
    }
    let patch_wall_median = median(&patch_walls);
    println!(
        "[robustness: elastic recovery — {} patch plans, median {:.2}ms]",
        patch_walls.len(),
        patch_wall_median * 1e3
    );

    // Dataloader recovery: the first look-ahead planning worker is killed;
    // the loader must still yield every batch (via a synchronous re-plan).
    println!("[robustness: killing one planning worker on purpose — a panic message follows]");
    let p2 = planner.clone();
    let killed = AtomicUsize::new(0);
    let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
        if killed.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("injected: planning worker killed");
        }
        p2.plan(seqs)
    });
    let t0 = Instant::now();
    let mut loader = DcpDataloader::with_plan_fn(
        plan_fn,
        batches.clone(),
        2,
        RetryConfig {
            backoff: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let mut yielded = 0u64;
    for item in loader.by_ref() {
        item.expect("loader must recover from the killed worker");
        yielded += 1;
    }
    let loader_wall = t0.elapsed().as_secs_f64();
    assert_eq!(yielded, batches.len() as u64);

    // Charge the loader's recovery wall time into the end-to-end timeline:
    // a synchronous re-plan stalls the training step, so the e2e model adds
    // it to the iteration total rather than only reporting it on the side.
    let recovery_s: f64 = loader
        .replan_events()
        .iter()
        .map(|e| e.recovery_wall_s)
        .sum();
    let e2e_cfg = E2eConfig {
        model: ModelSpec::gpt_8b(),
        tp: 1,
        cluster: cluster.clone(),
    };
    let out = planner.plan(&batches[0].seqs).expect("plan");
    let sim = simulate_plan(cluster, &out.plan).expect("simulate");
    let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
    let clean = simulate_iteration(&e2e_cfg, &sim, max_tokens, out.layout.total_tokens());
    let charged = simulate_iteration_with_recovery(
        &e2e_cfg,
        &sim,
        max_tokens,
        out.layout.total_tokens(),
        recovery_s,
    );
    assert!(charged.total >= clean.total);

    json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": {
            "cluster": "p4de(2)",
            "dataset": "LongDataCollections",
            "max_len": MAX_LEN,
            "budget_tokens": BUDGET,
            "block_size": BLOCK_SIZE,
            "seed": SEED,
            "batches": batches.len(),
        },
        "plan_latency_by_tier": tier_rows,
        "infeasible_fallback_tier_counts": tier_counts,
        "fault_spec": faults,
        "faulted_simulation": fault_rows,
        "elastic_recovery": {
            "patch_plans": patch_walls.len() as u64,
            "patch_plan_wall_s_median": patch_wall_median,
            "runs": recovery_rows,
        },
        "dataloader_recovery": {
            "batches": batches.len() as u64,
            "killed_workers": 1u64,
            "planning_workers": loader.workers() as u64,
            "yielded": yielded,
            "replans": loader.replans(),
            "replan_events": loader.replan_events(),
            "wall_s": loader_wall,
        },
        "e2e_recovery_accounting": {
            "recovery_wall_s": recovery_s,
            "iteration_s_clean": clean.total,
            "iteration_s_with_recovery": charged.total,
            "recovery_charged": charged.recovery,
        },
    })
}

fn main() {
    // `--trace <path>`: additionally run one *instrumented* pass over the
    // causal batches and write a unified Chrome trace there. The timed runs
    // below always use the no-op sink, so the flag never perturbs the
    // measurements this report exists to take.
    let mut trace_path: Option<String> = None;
    let mut cli = std::env::args().skip(1);
    while let Some(arg) = cli.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path = Some(cli.next().unwrap_or_else(|| {
                    eprintln!("perf_report: --trace requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("perf_report: unknown argument {other} (supported: --trace <path>)");
                std::process::exit(2);
            }
        }
    }

    let cluster = ClusterSpec::p4de(2);
    let attn = exec_attn();
    let n = batches_per_mask();
    let masks = [
        MaskSetting::Causal,
        MaskSetting::Lambda,
        MaskSetting::SharedQuestion,
    ];
    let threads_default = rayon::current_num_threads();

    println!(
        "perf_report: p4de(2) / LongDataCollections / block {BLOCK_SIZE} / {n} batch(es) per \
         mask / {threads_default} thread(s) vs 1"
    );

    let mut exec_rows = Vec::new();
    let mut plan_rows = Vec::new();
    let mut table = Table::new(&[
        "mask", "batch", "blocks", "t1_s", "tN_s", "speedup", "blk/s_1", "blk/s_N",
    ]);
    let mut total_t1 = 0.0f64;
    let mut total_tn = 0.0f64;
    let mut total_blocks = 0u64;

    // One shared planner across every batch: recurring batch signatures hit
    // its plan cache exactly as they would in a training loop.
    let plan_cfg = PlannerConfig {
        block_size: BLOCK_SIZE,
        ..Default::default()
    };
    let plan_planner = Planner::new(cluster.clone(), attn, plan_cfg.clone());
    let mut cold_walls: Vec<f64> = Vec::new();
    let mut warm_walls: Vec<f64> = Vec::new();
    let mut serial_parallel_identical = true;

    // Pass-pipeline accounting: every batch's plan is re-run through the
    // optimizer, re-simulated and re-executed; the optimized outputs must be
    // bitwise identical to the unoptimized run already measured above.
    let pass_pm = PassManager::new(PassConfig::optimize());
    let mut pass_rows = Vec::new();
    let mut per_pass: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    let mut pass_bytes_before = 0u64;
    let mut pass_bytes_after = 0u64;
    let mut pass_makespan_before = 0.0f64;
    let mut pass_makespan_after = 0.0f64;
    let mut pass_bitwise = true;

    for mask in masks {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<_> = pack_batches(&lengths, BUDGET, |l| mask.mask_for(l))
            .into_iter()
            .take(n)
            .map(|b| b.seqs)
            .collect();
        for (bi, batch) in batches.iter().enumerate() {
            // Cold plan: full multilevel pipeline (this is the latency the
            // plan gate watches). Warm plan: must hit the signature cache.
            let t0 = Instant::now();
            let out = plan_planner.plan(batch).expect("plan");
            let plan_s = t0.elapsed().as_secs_f64();
            assert!(!out.stats.cache_hit, "first plan of a batch must miss");
            let t0 = Instant::now();
            let warm = plan_planner.plan(batch).expect("warm plan");
            let warm_s = t0.elapsed().as_secs_f64();
            assert!(warm.stats.cache_hit, "second plan of a batch must hit");
            assert_eq!(warm.placement, out.placement, "cached plan must match");
            assert_eq!(warm.plan, out.plan, "cached plan must match");
            cold_walls.push(plan_s);
            warm_walls.push(warm_s);

            // Partitioner determinism: a serial and a default-width re-plan
            // (fresh planners — empty caches) must agree bitwise.
            let fresh = || Planner::new(cluster.clone(), attn, plan_cfg.clone());
            let ser_out =
                with_rayon_threads(Some("1"), || fresh().plan(batch).expect("serial plan"));
            let par_out = with_rayon_threads(None, || fresh().plan(batch).expect("parallel plan"));
            let identical = ser_out.placement == par_out.placement
                && ser_out.plan == par_out.plan
                && ser_out.placement == out.placement;
            assert!(identical, "plans must not depend on RAYON_NUM_THREADS");
            serial_parallel_identical &= identical;

            let t0 = Instant::now();
            let sim = simulate_plan(&cluster, &out.plan).expect("simulate");
            let sim_wall_s = t0.elapsed().as_secs_f64();

            let data = BatchData::random(&out.layout, 2024);
            let (qh, _) = BatchData::head_counts(&out.layout);
            let dim = out.layout.attn.head_dim as usize;
            let mut d_o = HashMap::new();
            let mut rng = SmallRng::seed_from_u64(99);
            for (i, tb) in out.layout.token_blocks.iter().enumerate() {
                let v: Vec<f32> = (0..tb.len as usize * qh * dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                d_o.insert(TokenBlockId(i as u32), v);
            }

            // Warm-up, then timed runs: default width first, then one
            // thread (the vendored rayon re-reads RAYON_NUM_THREADS at
            // every parallel call, so this works in-process).
            let saved = std::env::var("RAYON_NUM_THREADS").ok();
            std::env::remove_var("RAYON_NUM_THREADS");
            run_exec(&out, &data, &d_o);
            let par = run_exec(&out, &data, &d_o);
            std::env::set_var("RAYON_NUM_THREADS", "1");
            let ser = run_exec(&out, &data, &d_o);
            match saved {
                Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
                None => std::env::remove_var("RAYON_NUM_THREADS"),
            }
            assert_eq!(par.fwd, ser.fwd, "forward outputs must be bitwise equal");
            assert_eq!(par.bwd, ser.bwd, "gradients must be bitwise equal");

            // Pass pipeline: optimize a clone of the plan, re-simulate and
            // re-execute it, and compare outputs bitwise against the
            // unoptimized run above.
            let mut optimized = out.plan.clone();
            let outcomes = pass_pm.run_plan(&out.layout, &out.placement, &mut optimized);
            let sim_opt = simulate_plan(&cluster, &optimized).expect("simulate optimized");
            let opt_run = run_exec(
                &PlanOutput {
                    plan: optimized.clone(),
                    ..out.clone()
                },
                &data,
                &d_o,
            );
            let bitwise = opt_run.fwd == par.fwd && opt_run.bwd == par.bwd;
            assert!(bitwise, "passes must preserve merged outputs bitwise");
            pass_bitwise &= bitwise;
            let bytes_before = out.plan.total_comm_bytes();
            let bytes_after = optimized.total_comm_bytes();
            pass_bytes_before += bytes_before;
            pass_bytes_after += bytes_after;
            pass_makespan_before += sim.total();
            pass_makespan_after += sim_opt.total();
            for o in &outcomes {
                let e = per_pass.entry(o.pass.clone()).or_insert((0, 0, 0));
                e.0 += o.comm_bytes_saved();
                e.1 += o.instrs_removed + o.transfers_removed;
                e.2 += o.ops_fused + o.reduces_coalesced + o.copies_coalesced + o.waits_sunk;
            }
            pass_rows.push(json!({
                "mask": mask.name(),
                "batch": bi,
                "comm_bytes_before": bytes_before,
                "comm_bytes_after": bytes_after,
                "simulated_total_before_s": sim.total(),
                "simulated_total_after_s": sim_opt.total(),
                "bitwise_identical": bitwise,
                "outcomes": outcomes,
            }));

            // Forward + backward each execute every computation block once.
            let blocks = 2 * out.layout.comp_blocks.len() as u64;
            let speedup = ser.wall_s / par.wall_s;
            total_t1 += ser.wall_s;
            total_tn += par.wall_s;
            total_blocks += blocks;
            table.row(vec![
                mask.name().to_string(),
                bi.to_string(),
                blocks.to_string(),
                format!("{:.3}", ser.wall_s),
                format!("{:.3}", par.wall_s),
                format!("{speedup:.2}x"),
                format!("{:.0}", blocks as f64 / ser.wall_s),
                format!("{:.0}", blocks as f64 / par.wall_s),
            ]);
            exec_rows.push(json!({
                "mask": mask.name(),
                "batch": bi,
                "seqs": batch.len(),
                "tokens": batch.iter().map(|(l, _)| *l as u64).sum::<u64>(),
                "comp_blocks_executed": blocks,
                "wall_s_1_thread": ser.wall_s,
                "wall_s_default": par.wall_s,
                "speedup": speedup,
                "blocks_per_sec_1_thread": blocks as f64 / ser.wall_s,
                "blocks_per_sec_default": blocks as f64 / par.wall_s,
                "bitwise_identical": true,
            }));
            plan_rows.push(json!({
                "mask": mask.name(),
                "batch": bi,
                "plan_wall_s": plan_s,
                "plan_wall_warm_s": warm_s,
                "cache_hit_warm": warm.stats.cache_hit,
                "stages_s": {
                    "coarsen": out.stats.coarsen_s,
                    "initial": out.stats.initial_s,
                    "refine": out.stats.refine_s,
                    "schedule": out.stats.schedule_s,
                },
                "serial_parallel_identical": identical,
                "simulate_wall_s": sim_wall_s,
                "simulated_total_s": sim.total(),
                "comm_bytes": out.plan.total_comm_bytes(),
                "token_blocks": out.layout.token_blocks.len(),
                "comp_blocks": out.layout.comp_blocks.len(),
            }));
        }
    }

    table.print();
    let overall = total_t1 / total_tn;
    println!(
        "\noverall executor speedup: {overall:.2}x ({threads_default} threads, \
         {total_blocks} blocks, {total_t1:.3}s -> {total_tn:.3}s)"
    );

    let exec_report = json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": {
            "cluster": "p4de(2)",
            "dataset": "LongDataCollections",
            "max_len": MAX_LEN,
            "budget_tokens": BUDGET,
            "block_size": BLOCK_SIZE,
            "attn": { "q_heads": 4, "kv_heads": 2, "head_dim": 16 },
            "seed": SEED,
            "batches_per_mask": n,
        },
        "threads_default": threads_default as u64,
        "overall_speedup": overall,
        "total_wall_s_1_thread": total_t1,
        "total_wall_s_default": total_tn,
        "runs": exec_rows,
    });
    // Pass pipeline over recovery patches: the truncated failed stream
    // retains prefetches whose waits were cut — genuine dead communication
    // only the optimizer can remove. The optimized functional stream must
    // still execute to a bitwise-identical merged output, and the optimized
    // timing stream must stay structurally legal.
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let mut rec_pass_rows = Vec::new();
    let mut rec_fwd_saved = 0u64;
    let mut rec_timing_before = 0.0f64;
    let mut rec_timing_after = 0.0f64;
    {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<_> = pack_batches(&lengths, BUDGET, |l| MaskSetting::Causal.mask_for(l))
            .into_iter()
            .take(n)
            .map(|b| b.seqs)
            .collect();
        for (bi, batch) in batches.iter().enumerate() {
            let out = plan_planner.plan(batch).expect("plan");
            let (dev, nd) = out
                .plan
                .fwd
                .devices
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let divs = s
                        .instrs
                        .iter()
                        .filter(|ins| matches!(ins, Instr::Attn { .. }))
                        .count() as u32;
                    (i as u32, divs)
                })
                .max_by_key(|&(i, divs)| (divs, std::cmp::Reverse(i)))
                .expect("nonempty plan");
            if nd < 2 {
                continue;
            }
            let patch = rp
                .plan_recovery(
                    &out,
                    &FailureEvent {
                        device: dev,
                        divisions_done: (nd / 2).max(1),
                    },
                )
                .expect("patch plan");
            let ctx = patch.verify_ctx();
            let mut fwd = patch.fwd.clone();
            let fwd_outs =
                pass_pm.run_phase(&out.layout, &mut fwd, "recovery_fwd", &patch.salvage_comms);
            verify_phase(&out.layout, &patch.placement, &fwd, false, &ctx)
                .expect("optimized recovery stream must stay legal");
            let salvage = SalvageCtx {
                failed: patch.failed_streams.clone(),
                salvage_comms: patch.salvage_comms.clone(),
                producer_of: patch.producer_of.clone(),
                reowned: patch.reowned.clone(),
                ..SalvageCtx::default()
            };
            let data = BatchData::random(&out.layout, 2024);
            let obs = ExecObs::disabled();
            let base_out = execute_forward_recovery(
                &out.layout,
                &patch.placement,
                &patch.fwd,
                &data,
                &salvage,
                &obs,
            )
            .expect("recovery execute");
            let opt_out = execute_forward_recovery(
                &out.layout,
                &patch.placement,
                &fwd,
                &data,
                &salvage,
                &obs,
            )
            .expect("optimized recovery execute");
            assert_eq!(
                base_out, opt_out,
                "passes must preserve recovered outputs bitwise"
            );
            let fwd_saved: u64 = fwd_outs.iter().map(|o| o.comm_bytes_saved()).sum();
            rec_fwd_saved += fwd_saved;
            // Recovery phases count toward the headline totals: fresh plans
            // are comm-tight, so the dead prefetches of a truncated failed
            // stream are where the byte savings actually live.
            pass_bytes_before += patch.fwd.total_comm_bytes();
            pass_bytes_after += fwd.total_comm_bytes();

            let mut timing = patch.timing.clone();
            let t_before = simulate_phase(&cluster, &patch.timing)
                .expect("simulate timing")
                .makespan;
            let timing_outs = pass_pm.run_phase(
                &out.layout,
                &mut timing,
                "recovery_timing",
                &patch.salvage_comms,
            );
            verify_structure(&timing).expect("optimized timing stream must stay legal");
            let t_after = simulate_phase(&cluster, &timing)
                .expect("simulate optimized timing")
                .makespan;
            rec_timing_before += t_before;
            rec_timing_after += t_after;
            pass_bytes_before += patch.timing.total_comm_bytes();
            pass_bytes_after += timing.total_comm_bytes();
            for o in fwd_outs.iter().chain(timing_outs.iter()) {
                let e = per_pass.entry(o.pass.clone()).or_insert((0, 0, 0));
                e.0 += o.comm_bytes_saved();
                e.1 += o.instrs_removed + o.transfers_removed;
                e.2 += o.ops_fused + o.reduces_coalesced + o.copies_coalesced + o.waits_sunk;
            }
            rec_pass_rows.push(json!({
                "batch": bi,
                "failed_device": dev,
                "fwd_comm_bytes_saved": fwd_saved,
                "fwd_outcomes": fwd_outs,
                "timing_makespan_before_s": t_before,
                "timing_makespan_after_s": t_after,
                "timing_outcomes": timing_outs,
                "bitwise_identical": true,
            }));
        }
    }
    println!(
        "passes: comm bytes {pass_bytes_before} -> {pass_bytes_after} \
         ({:.2}% saved), simulated {:.3}s -> {:.3}s, recovery fwd saved {rec_fwd_saved} bytes, \
         bitwise: {pass_bitwise}",
        if pass_bytes_before > 0 {
            100.0 * (pass_bytes_before - pass_bytes_after) as f64 / pass_bytes_before as f64
        } else {
            0.0
        },
        pass_makespan_before,
        pass_makespan_after,
    );

    // Incremental re-planning: a dedicated planner with the exact output
    // cache disabled and the near-hit warm-start tier enabled. Every batch
    // is planned cold, then re-planned twice:
    //
    // - *identical* re-plan: must take the near-hit path, reproduce the
    //   cold plan bit for bit (checked structurally and through the
    //   `dcp-exec` execution oracle) and pass the stream verifier — this
    //   is the latency the incremental gate's sub-millisecond budget
    //   watches;
    // - *drifted* re-plan (every length nudged down one token without
    //   changing its block count): same near-hit key, different exact
    //   lengths, so the warm path cannot shortcut to the exact fixed
    //   point and must run delta refinement end to end.
    let inc_planner = Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: BLOCK_SIZE,
            plan_cache: 0,
            incremental: IncrementalConfig {
                enabled: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut inc_rows = Vec::new();
    let mut inc_walls: Vec<f64> = Vec::new();
    let mut drift_walls: Vec<f64> = Vec::new();
    let mut inc_bitwise = true;
    let mut inc_oracle = true;
    let mut drift_near_hits = 0u64;
    let mut drift_attempts = 0u64;
    for mask in masks {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<_> = pack_batches(&lengths, BUDGET, |l| mask.mask_for(l))
            .into_iter()
            .take(n)
            .map(|b| b.seqs)
            .collect();
        for (bi, batch) in batches.iter().enumerate() {
            let t0 = Instant::now();
            let cold = inc_planner.plan(batch).expect("incremental cold plan");
            let cold_s = t0.elapsed().as_secs_f64();
            assert!(!cold.stats.near_hit, "first plan of a batch must be cold");

            let t0 = Instant::now();
            let warm = inc_planner.plan(batch).expect("incremental warm plan");
            let inc_s = t0.elapsed().as_secs_f64();
            assert!(
                warm.stats.near_hit,
                "re-plan of an identical batch must take the near-hit path"
            );
            let bitwise = warm.placement == cold.placement && warm.plan == cold.plan;
            assert!(bitwise, "identical re-plan must reproduce the cold plan");
            inc_bitwise &= bitwise;
            dcp_sched::schedule::validate_plan(&warm.layout, &warm.placement, &warm.plan)
                .expect("warm plan must pass the stream verifier");
            let oracle = plans_equivalent(
                &cold.layout,
                &cold.placement,
                &cold.plan,
                &warm.placement,
                &warm.plan,
                SEED,
            )
            .expect("oracle execution");
            assert!(oracle, "oracle found a cold/warm bitwise divergence");
            inc_oracle &= oracle;
            inc_walls.push(inc_s);

            // Nudge each length down one token without changing its block
            // count, regenerating the mask for the new length (some mask
            // settings, e.g. shared-question, encode structure tied to the
            // exact length — those drift to a different near-hit key and
            // land in the cold-fallback part of the rate).
            let drifted: Vec<(u32, MaskSpec)> = batch
                .iter()
                .map(|(l, _)| {
                    let l = if *l > 1 && l % BLOCK_SIZE != 1 {
                        l - 1
                    } else {
                        *l
                    };
                    (l, mask.mask_for(l))
                })
                .collect();
            drift_attempts += 1;
            let t0 = Instant::now();
            let drift = inc_planner
                .plan(&drifted)
                .expect("incremental drifted plan");
            let drift_s = t0.elapsed().as_secs_f64();
            drift_near_hits += u64::from(drift.stats.near_hit);
            dcp_sched::schedule::validate_plan(&drift.layout, &drift.placement, &drift.plan)
                .expect("drifted plan must pass the stream verifier");
            drift_walls.push(drift_s);

            inc_rows.push(json!({
                "mask": mask.name(),
                "batch": bi,
                "plan_wall_s_cold": cold_s,
                "plan_wall_s_incremental": inc_s,
                "plan_wall_s_drift": drift_s,
                "bitwise_identical": bitwise,
                "oracle_equivalent": oracle,
                "drift_near_hit": drift.stats.near_hit,
            }));
        }
    }
    let inc_median = median(&inc_walls);
    let drift_median = median(&drift_walls);
    let near_hit_rate = if drift_attempts > 0 {
        drift_near_hits as f64 / drift_attempts as f64
    } else {
        0.0
    };
    println!(
        "planner incremental: identical re-plan median {:.3}ms, drifted re-plan median \
         {:.3}ms, drift near-hit rate {near_hit_rate:.2} ({drift_near_hits}/{drift_attempts}), \
         bitwise: {inc_bitwise}, oracle: {inc_oracle}",
        inc_median * 1e3,
        drift_median * 1e3,
    );

    let (cache_hits, cache_misses) = plan_planner.cache_stats();
    let cold_median = median(&cold_walls);
    let warm_median = median(&warm_walls);
    println!(
        "planner: cold median {:.2}ms, warm median {:.3}ms (warm/cold {:.4}), cache \
         {cache_hits} hits / {cache_misses} misses, serial==parallel: {serial_parallel_identical}",
        cold_median * 1e3,
        warm_median * 1e3,
        if cold_median > 0.0 {
            warm_median / cold_median
        } else {
            0.0
        },
    );
    let plan_report = json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": { "cluster": "p4de(2)", "dataset": "LongDataCollections", "seed": SEED },
        "planner": {
            "threads_default": threads_default as u64,
            "plan_wall_s_cold_median": cold_median,
            "plan_wall_s_warm_median": warm_median,
            "warm_over_cold": if cold_median > 0.0 { warm_median / cold_median } else { 0.0 },
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": if cache_hits + cache_misses > 0 {
                    cache_hits as f64 / (cache_hits + cache_misses) as f64
                } else {
                    0.0
                },
            },
            "stage_totals_s": {
                "coarsen": plan_rows.iter().map(|r| r["stages_s"]["coarsen"].as_f64().unwrap()).sum::<f64>(),
                "initial": plan_rows.iter().map(|r| r["stages_s"]["initial"].as_f64().unwrap()).sum::<f64>(),
                "refine": plan_rows.iter().map(|r| r["stages_s"]["refine"].as_f64().unwrap()).sum::<f64>(),
                "schedule": plan_rows.iter().map(|r| r["stages_s"]["schedule"].as_f64().unwrap()).sum::<f64>(),
            },
            "serial_parallel_identical": serial_parallel_identical,
        },
        "planner_incremental": {
            "enabled": true,
            "plan_wall_s_incremental_median": inc_median,
            "plan_wall_s_drift_median": drift_median,
            "near_hit_rate": near_hit_rate,
            "bitwise_identical": inc_bitwise,
            "oracle_equivalent": inc_oracle,
            "verified": true,
            "batches": inc_rows.len() as u64,
            "runs": inc_rows,
        },
        "passes": {
            "enabled": true,
            "comm_bytes_before_total": pass_bytes_before,
            "comm_bytes_after_total": pass_bytes_after,
            "comm_bytes_saved_total": pass_bytes_before - pass_bytes_after,
            "simulated_makespan_before_s": pass_makespan_before,
            "simulated_makespan_after_s": pass_makespan_after,
            "output_bitwise_identical": pass_bitwise,
            "per_pass": per_pass
                .iter()
                .map(|(name, (saved, removed, rewritten))| json!({
                    "pass": name,
                    "comm_bytes_saved": saved,
                    "instrs_or_transfers_removed": removed,
                    "instrs_rewritten": rewritten,
                }))
                .collect::<Vec<_>>(),
            "runs": pass_rows,
            "recovery": {
                "patches": rec_pass_rows.len() as u64,
                "fwd_comm_bytes_saved": rec_fwd_saved,
                "timing_makespan_before_s": rec_timing_before,
                "timing_makespan_after_s": rec_timing_after,
                "runs": rec_pass_rows,
            },
        },
        "runs": plan_rows,
    });
    let robustness = robustness_report(&cluster, attn, n);
    for (name, value) in [
        ("BENCH_exec.json", &exec_report),
        ("BENCH_plan.json", &plan_report),
        ("BENCH_robustness.json", &robustness),
    ] {
        std::fs::write(
            name,
            serde_json::to_string_pretty(value).expect("serializable"),
        )
        .unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        println!("[written {name}]");
    }

    if let Some(path) = trace_path {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<Batch> =
            pack_batches(&lengths, BUDGET, |l| MaskSetting::Causal.mask_for(l))
                .into_iter()
                .take(n)
                .collect();
        let iters = batches.len() as u64;
        let outcome =
            trace_workload(&cluster, attn, &plan_cfg, batches, true).expect("trace workload");
        let doc = trace_doc(
            &outcome,
            json!({
                "cluster": "p4de(2)",
                "dataset": "LongDataCollections",
                "max_len": MAX_LEN,
                "budget_tokens": BUDGET,
                "block_size": BLOCK_SIZE,
                "seed": SEED,
                "iterations": iters,
                "executed": true,
            }),
        );
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        )
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("[written {path} — open in chrome://tracing or Perfetto]");
    }
}
