//! Figure 21: training loss curves — DCP-planned distributed attention vs
//! the dense single-device baseline, on a really-trained tiny transformer.
//! The curves must coincide up to kernel-order floating-point noise.

use dcp_bench::{write_results, Table};
use dcp_exec::train::{train, AttnBackend, TrainConfig};
use dcp_mask::MaskSpec;

fn main() {
    let cfg = TrainConfig {
        seq_len: 96,
        lr: 0.2,
        ..Default::default()
    };
    let steps = 60;

    let mut table = Table::new(&["step", "MLM_baseline_loss", "DCP_loss", "abs_diff"]);
    let mut worst = 0.0f32;
    for (mask_name, mask) in [
        ("causal", MaskSpec::Causal),
        (
            "shared_question",
            MaskSpec::SharedQuestion {
                question_len: 24,
                answer_lens: vec![24, 24, 24],
            },
        ),
    ] {
        let dense = train(cfg, AttnBackend::Dense, &mask, steps).expect("dense train");
        let planned = train(
            cfg,
            AttnBackend::Planned {
                num_devices: 4,
                block_size: 8,
            },
            &mask,
            steps,
        )
        .expect("planned train");
        println!("mask = {mask_name}");
        for (i, (a, b)) in dense.iter().zip(&planned).enumerate() {
            let d = (a - b).abs();
            worst = worst.max(d);
            if i % 10 == 0 || i + 1 == steps {
                table.row(vec![
                    format!("{mask_name}:{i}"),
                    format!("{a:.6}"),
                    format!("{b:.6}"),
                    format!("{d:.2e}"),
                ]);
            }
        }
        println!(
            "  loss {:.4} -> {:.4} over {steps} steps",
            dense[0],
            dense.last().unwrap()
        );
    }
    println!("\nFig. 21 — loss curves (sampled every 10 steps)");
    table.print();
    println!("\nmax |DCP - baseline| over all steps and masks: {worst:.2e}");
    assert!(worst < 1e-2, "curves must coincide");
    write_results("fig21_loss_curves", &table.to_json());
}
