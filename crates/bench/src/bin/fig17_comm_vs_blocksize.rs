//! Figure 17: total inter-node communication volume (and max per-device
//! volume) vs DCP block size, on both datasets, against the static MLM(TE)
//! baseline — communication grows slightly with block size because larger
//! blocks give the placement less flexibility.

use dcp_baselines::Baseline;
use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, run_baseline, run_dcp,
    write_results, Table, BASELINE_BLOCK,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};
use dcp_types::DeviceId;

fn main() {
    let cp = e2e_cp_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const MAX_LEN: u32 = 131_072;

    let mut table = Table::new(&[
        "dataset",
        "block",
        "DCP_inter_MiB",
        "DCP_maxdev_MiB",
        "MLM_inter_MiB",
        "MLM_maxdev_MiB",
    ]);
    for kind in [DatasetKind::LongAlign, DatasetKind::LongDataCollections] {
        let batches = make_batches(kind, 1.0, MAX_LEN, MAX_LEN as u64, MaskSetting::Causal, n);
        // Baseline volume is block-size independent (chunking by ring):
        // measure once at 2048.
        let mut mlm_inter = Vec::new();
        let mut mlm_maxdev = Vec::new();
        for batch in &batches {
            let (_, out) = run_baseline(
                &cp,
                attn,
                Baseline::TransformerEngine { head_groups: 2 },
                BASELINE_BLOCK,
                batch,
            )
            .expect("te");
            let inter =
                out.plan
                    .fwd
                    .comm_bytes_where(|a, b| cp.node_of(DeviceId(a)) != cp.node_of(DeviceId(b)))
                    + out.plan.bwd.comm_bytes_where(|a, b| {
                        cp.node_of(DeviceId(a)) != cp.node_of(DeviceId(b))
                    });
            mlm_inter.push(inter as f64);
            mlm_maxdev.push(
                (out.plan.fwd.max_device_comm_bytes() + out.plan.bwd.max_device_comm_bytes())
                    as f64,
            );
        }
        for block in [512u32, 1024, 2048, 4096] {
            let mut inter = Vec::new();
            let mut maxdev = Vec::new();
            for batch in &batches {
                let (_, out) = run_dcp(
                    &cp,
                    attn,
                    &PlannerConfig {
                        block_size: block,
                        ..Default::default()
                    },
                    batch,
                )
                .expect("dcp");
                let i =
                    out.plan.fwd.comm_bytes_where(|a, b| {
                        cp.node_of(DeviceId(a)) != cp.node_of(DeviceId(b))
                    }) + out.plan.bwd.comm_bytes_where(|a, b| {
                        cp.node_of(DeviceId(a)) != cp.node_of(DeviceId(b))
                    });
                inter.push(i as f64);
                maxdev.push(
                    (out.plan.fwd.max_device_comm_bytes() + out.plan.bwd.max_device_comm_bytes())
                        as f64,
                );
            }
            let mib = (1u64 << 20) as f64;
            table.row(vec![
                kind.name().to_string(),
                block.to_string(),
                format!("{:.1}", mean(&inter) / mib),
                format!("{:.1}", mean(&maxdev) / mib),
                format!("{:.1}", mean(&mlm_inter) / mib),
                format!("{:.1}", mean(&mlm_maxdev) / mib),
            ]);
        }
    }
    println!("Fig. 17 — inter-node communication volume vs block size ({n} batches/config)");
    table.print();
    write_results("fig17_comm_vs_blocksize", &table.to_json());
}
