//! Figure 14: attention micro-benchmark under the four attention masks —
//! DCP vs the (mask-extended) TransformerEngine baseline, 32 GPUs,
//! LongDataCollections at scale 1, 131072-token batches.

use dcp_baselines::Baseline;
use dcp_bench::{
    make_batches, mean, micro_attn, micro_cluster, num_batches, run_baseline, run_dcp_best,
    write_results, Table, BASELINE_BLOCK,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let n = num_batches();
    let block = 1024u32;
    const BUDGET: u64 = 131_072;

    let mut table = Table::new(&["mask", "phase", "DCP_ms", "TE_ms", "speedup"]);
    for mask in MaskSetting::ALL {
        let batches = make_batches(
            DatasetKind::LongDataCollections,
            1.0,
            BUDGET as u32,
            BUDGET,
            mask,
            n,
        );
        let mut dcp_t = [Vec::new(), Vec::new()];
        let mut te_t = [Vec::new(), Vec::new()];
        for batch in &batches {
            let (sim, _) = run_dcp_best(
                &cluster,
                attn,
                &PlannerConfig {
                    block_size: block,
                    ..Default::default()
                },
                batch,
            )
            .expect("dcp");
            dcp_t[0].push(sim.fwd.makespan);
            dcp_t[1].push(sim.bwd.makespan);
            let (s, _) = run_baseline(
                &cluster,
                attn,
                Baseline::TransformerEngine { head_groups: 2 },
                BASELINE_BLOCK,
                batch,
            )
            .expect("te");
            te_t[0].push(s.fwd.makespan);
            te_t[1].push(s.bwd.makespan);
        }
        for (pi, phase) in ["fwd", "bwd"].iter().enumerate() {
            let d = mean(&dcp_t[pi]) * 1e3;
            let t = mean(&te_t[pi]) * 1e3;
            table.row(vec![
                mask.name().to_string(),
                phase.to_string(),
                format!("{d:.2}"),
                format!("{t:.2}"),
                format!("{:.2}x", t / d),
            ]);
        }
    }
    println!("Fig. 14 — micro-benchmark under attention masks, DCP vs TE, {n} batches/config");
    table.print();
    write_results("fig14_micro_masks", &table.to_json());
}
