//! Causal trace analytics over the pinned robustness workload.
//!
//! Runs the 8-device scenario of `tests/robustness.rs` — five batches,
//! block size 1024, a ×4 straggler on device 0 plus a degraded 1→0 link —
//! twice per batch and phase: once clean, once faulted. For every traced
//! phase it
//!
//! 1. reconstructs the critical path ([`dcp_obs::critical_path`]) and
//!    checks the conservation law (bucket components tile the simulated
//!    makespan exactly),
//! 2. runs the differential attribution ([`dcp_obs::diff_attribution`])
//!    blaming the faulted-vs-clean makespan delta on a device and bucket,
//! 3. feeds the kernel timings to the online detector bank
//!    ([`dcp_obs::DetectorBank`]) — the clean runs must stay silent, the
//!    faulted runs must flag the injected straggler,
//! 4. folds the confirmed incidents into an estimated
//!    [`dcp_sim::FaultSpec`] and re-plans fault-aware, pricing the
//!    makespan recovered by the closed detection loop, and
//! 5. exercises the flight recorder: a deliberately corrupted stream is
//!    pushed through the verifier, the diagnostic instant trips the
//!    recorder, and the postmortem bundles land in
//!    `results/POSTMORTEM_*.json`.
//!
//! Writes the schema-stamped `BENCH_trace.json` consumed by the
//! `plan_gate` trace leg. `--smoke` runs two batches instead of five (the
//! CI verify job's quick end-to-end check); the document shape is
//! identical.

use std::path::Path;

use dcp_bench::{Table, BENCH_SCHEMA_VERSION};
use dcp_core::{Planner, PlannerConfig};
use dcp_data::Batch;
use dcp_mask::MaskSpec;
use dcp_obs::{
    critical_path, diff_attribution, AnalysisScope, Attribution, AttributionDelta, DetectorBank,
    DetectorConfig, Event, FlightRecorder, IncidentKind, ObsSink, Phase, RecorderConfig, Registry,
    Source,
};
use dcp_sched::plan::{Instr, PhasePlan};
use dcp_sched::verify::{verify_phase, VerifyCtx};
use dcp_sim::{estimate_fault_spec, simulate_phase_faulted, trace_to_obs, Fault, FaultSpec};
use dcp_types::{AttnSpec, ClusterSpec};

/// The pinned fault scenario (`tests/robustness.rs` faults 1 and 3).
fn faults() -> FaultSpec {
    FaultSpec {
        seed: 7,
        faults: vec![
            Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            Fault::DegradedLink {
                src: 1,
                dst: 0,
                factor: 0.1,
            },
        ],
    }
}

fn batches(n: usize) -> Vec<Batch> {
    (0..n as u32)
        .map(|i| Batch {
            seqs: vec![
                (8192 + 1024 * i, MaskSpec::Causal),
                (4096, MaskSpec::paper_lambda()),
            ],
        })
        .collect()
}

fn planner_with(cluster: &ClusterSpec, fault_spec: Option<FaultSpec>) -> Planner {
    Planner::new(
        cluster.clone(),
        AttnSpec::paper_micro(),
        PlannerConfig {
            block_size: 1024,
            fault_spec,
            ..Default::default()
        },
    )
}

fn attribution_json(a: &Attribution) -> serde_json::Value {
    serde_json::json!({
        "makespan_s": a.makespan,
        "compute_s": a.compute,
        "exposed_comm_s": a.exposed_comm,
        "wait_s": a.wait,
        "straggle_s": a.straggle,
        "recovery_s": a.recovery,
        "residual_s": a.residual(),
        "path_steps": a.steps.len(),
        "per_device": a.per_device.iter().map(|d| serde_json::json!({
            "device": d.device,
            "total_s": d.total(),
            "compute_s": d.compute,
            "exposed_comm_s": d.exposed_comm,
            "wait_s": d.wait,
            "straggle_s": d.straggle,
        })).collect::<Vec<_>>(),
    })
}

fn delta_json(d: &AttributionDelta) -> serde_json::Value {
    serde_json::json!({
        "makespan_delta_s": d.makespan_delta,
        "compute_delta_s": d.compute_delta,
        "exposed_comm_delta_s": d.exposed_comm_delta,
        "wait_delta_s": d.wait_delta,
        "straggle_delta_s": d.straggle_delta,
        "recovery_delta_s": d.recovery_delta,
        "prime_suspect": d.prime_suspect,
        "suspect_share": d.suspect_share,
        "dominant_bucket": d.dominant_bucket.map(|b| b.label()),
    })
}

/// Corrupts `phase` so the stream verifier must reject it: the first
/// `CommWait` found is deleted, leaving a later instruction reading data
/// that never arrives (or an unwaited launch).
fn corrupt_phase(phase: &PhasePlan) -> Option<PhasePlan> {
    let mut bad = phase.clone();
    for dev in &mut bad.devices {
        if let Some(pos) = dev
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::CommWait(_)))
        {
            dev.instrs.remove(pos);
            return Some(bad);
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let num_batches = if smoke { 2 } else { 5 };
    let cluster = ClusterSpec::p4de(1);
    let spec = faults();
    let straggler_dev = 0u32;

    let planner = planner_with(&cluster, None);
    let bs = batches(num_batches);
    println!(
        "trace_analyze: {} batches on {} devices ({})",
        bs.len(),
        cluster.num_devices(),
        if smoke { "smoke" } else { "full" }
    );

    let mut clean_bank = DetectorBank::new(DetectorConfig::default());
    let mut fault_bank = DetectorBank::new(DetectorConfig::default());
    let recorder = FlightRecorder::new(RecorderConfig::default());
    let mut registry = Registry::new();

    let mut runs = Vec::new();
    let mut table = Table::new(&[
        "batch",
        "phase",
        "clean ms",
        "faulted ms",
        "delta ms",
        "suspect",
        "share",
    ]);
    let mut max_residual_rel: f64 = 0.0;
    let mut all_sum_ok = true;
    let mut suspect_share_min = f64::INFINITY;
    let mut suspect_hits = 0usize;
    let mut total_runs = 0usize;
    let mut naive_faulted_makespans = Vec::new();
    let mut plans = Vec::new();

    for (bi, batch) in bs.iter().enumerate() {
        let out = planner.plan(&batch.seqs).expect("pinned workload plans");
        for (phase, pp) in [(Phase::Fwd, &out.plan.fwd), (Phase::Bwd, &out.plan.bwd)] {
            let backward = phase == Phase::Bwd;
            let (clean_sim, clean_trace) =
                simulate_phase_faulted(&cluster, pp, &FaultSpec::none()).expect("clean sim");
            let (fault_sim, fault_trace) =
                simulate_phase_faulted(&cluster, pp, &spec).expect("faulted sim");
            let clean_ev = trace_to_obs(&clean_trace, phase, Some(bi as u64));
            let fault_ev = trace_to_obs(&fault_trace, phase, Some(bi as u64));

            let scope = AnalysisScope::sim_iter(phase, bi as u64);
            let clean_attr = critical_path(&clean_ev, &scope);
            let fault_attr = critical_path(&fault_ev, &scope);
            for (attr, sim, what) in [
                (&clean_attr, &clean_sim, "clean"),
                (&fault_attr, &fault_sim, "faulted"),
            ] {
                let rel = attr.residual().abs() / sim.makespan.max(1e-15);
                max_residual_rel = max_residual_rel.max(rel);
                if !attr.sums_to_makespan(1e-6) || (attr.makespan - sim.makespan).abs() > 1e-9 {
                    all_sum_ok = false;
                    eprintln!(
                        "trace_analyze: conservation violated on batch {bi} {} {what}: \
                         components {:.9}s vs makespan {:.9}s (sim {:.9}s)",
                        phase.label(),
                        attr.components_total(),
                        attr.makespan,
                        sim.makespan,
                    );
                }
            }

            let delta = diff_attribution(&clean_attr, &fault_attr);
            total_runs += 1;
            if delta.prime_suspect == Some(straggler_dev) {
                suspect_hits += 1;
            }
            suspect_share_min = suspect_share_min.min(delta.suspect_share);

            clean_bank.ingest(&clean_ev);
            fault_bank.ingest(&fault_ev);
            registry.merge(&Registry::from_events(&fault_ev)).unwrap();
            recorder.record_all(fault_ev.clone());
            if backward {
                naive_faulted_makespans.push(fault_sim.makespan);
            }

            table.row(vec![
                format!("{bi}"),
                phase.label().into(),
                format!("{:.3}", clean_attr.makespan * 1e3),
                format!("{:.3}", fault_attr.makespan * 1e3),
                format!("{:.3}", delta.makespan_delta * 1e3),
                delta
                    .prime_suspect
                    .map_or("-".into(), |d| format!("dev{d}")),
                format!("{:.2}", delta.suspect_share),
            ]);
            runs.push(serde_json::json!({
                "batch": bi,
                "phase": phase.label(),
                "clean": attribution_json(&clean_attr),
                "faulted": attribution_json(&fault_attr),
                "delta": delta_json(&delta),
            }));
        }
        plans.push(out);
    }
    table.print();

    // Online detection: clean runs must stay silent; faulted runs must
    // flag the injected straggler.
    let clean_incidents = clean_bank.incidents();
    let fault_incidents = fault_bank.incidents();
    let straggler = fault_incidents.iter().find_map(|i| match &i.kind {
        IncidentKind::Straggler { device, slowdown } if *device == straggler_dev => {
            Some((*slowdown, i.at_s, i.samples, i.score))
        }
        _ => None,
    });
    println!(
        "trace_analyze: detector incidents — clean {}, faulted {} (straggler flagged: {})",
        clean_incidents.len(),
        fault_incidents.len(),
        straggler.is_some(),
    );
    for i in &fault_incidents {
        recorder.note_incident(i.clone());
    }

    // Closed loop: estimated FaultSpec -> fault-aware re-plan -> the same
    // faults sting less. Compared on the backward phase (the heavier one).
    let estimated = estimate_fault_spec(&fault_incidents, spec.seed);
    let aware = planner_with(&cluster, Some(estimated.clone()));
    let mut aware_faulted_makespans = Vec::new();
    for batch in &bs {
        let out = aware.plan(&batch.seqs).expect("fault-aware plan");
        let (sim, _) = simulate_phase_faulted(&cluster, &out.plan.bwd, &spec).expect("aware sim");
        aware_faulted_makespans.push(sim.makespan);
    }
    let naive_mean = dcp_bench::mean(&naive_faulted_makespans);
    let aware_mean = dcp_bench::mean(&aware_faulted_makespans);
    println!(
        "trace_analyze: faulted bwd makespan — fault-naive {:.3}ms, fault-aware {:.3}ms ({:+.1}%)",
        naive_mean * 1e3,
        aware_mean * 1e3,
        (aware_mean / naive_mean - 1.0) * 100.0,
    );

    // Flight recorder: corrupt batch 0's forward streams, push the wreck
    // through the verifier, and let the diagnostic instant trip a dump.
    let out0 = &plans[0];
    let diag = corrupt_phase(&out0.plan.fwd)
        .and_then(|bad| {
            verify_phase(
                &out0.layout,
                &out0.placement,
                &bad,
                false,
                &VerifyCtx::default(),
            )
            .err()
        })
        .expect("corrupted stream must be rejected by the verifier");
    println!("trace_analyze: forced verifier diagnostic: {diag}");
    let mut ev = Event::instant(Source::Planner, "verify_diagnostic").with_label(diag.to_string());
    if let Some(d) = diag.device {
        ev = ev.with_device(d);
    }
    recorder.record(ev);

    let bundle_count = recorder.pending();
    let paths = recorder
        .write_all(Path::new("results"))
        .expect("postmortem bundles write");
    let mut bundle_files = Vec::new();
    let mut bundles_valid = bundle_count > 0;
    for p in &paths {
        let text = std::fs::read_to_string(p).expect("bundle readable");
        let bundle: dcp_obs::PostmortemBundle = serde_json::from_str(&text).expect("bundle parses");
        if let Err(e) = bundle.validate() {
            bundles_valid = false;
            eprintln!("trace_analyze: invalid bundle {}: {e}", p.display());
        }
        bundle_files.push(p.display().to_string());
        println!("trace_analyze: wrote {}", p.display());
    }

    // Duration histograms accumulated over every faulted phase.
    let mut histograms = serde_json::Map::new();
    for key in registry.histogram_keys().collect::<Vec<_>>() {
        let h = registry.histogram(key).unwrap();
        histograms.insert(
            key.to_string(),
            serde_json::json!({
                "count": h.count(),
                "sum_s": h.sum(),
                "p50_s": h.quantile(0.5),
                "p90_s": h.quantile(0.9),
                "p99_s": h.quantile(0.99),
            }),
        );
    }

    let report = serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": {
            "devices": cluster.num_devices(),
            "batches": bs.len(),
            "block_size": 1024,
            "smoke": smoke,
            "faults": {
                "straggler_device": straggler_dev,
                "straggler_slowdown": 4.0,
                "degraded_link": [1, 0, 0.1],
                "seed": spec.seed,
            },
        },
        "attribution": {
            "runs": runs,
            "sums_to_makespan": all_sum_ok,
            "max_residual_rel": max_residual_rel,
        },
        "differential": {
            "runs_total": total_runs,
            "prime_suspect_hits": suspect_hits,
            "suspect_share_min": suspect_share_min,
        },
        "detection": {
            "clean_incidents": clean_incidents.len(),
            "faulted_incidents": fault_incidents.len(),
            "straggler_flagged": straggler.is_some(),
            "straggler": straggler.map(|(slowdown, at_s, samples, score)| serde_json::json!({
                "estimated_slowdown": slowdown,
                "at_s": at_s,
                "samples": samples,
                "score": score,
            })),
            "estimated_fault_spec": serde_json::to_value(&estimated).unwrap(),
        },
        "replan": {
            "faulted_bwd_makespan_naive_s": naive_mean,
            "faulted_bwd_makespan_aware_s": aware_mean,
            "improvement": 1.0 - aware_mean / naive_mean,
        },
        "flight_recorder": {
            "trigger": "verify_diagnostic",
            "bundles": bundle_files,
            "valid": bundles_valid,
        },
        "histograms": histograms,
    });
    std::fs::write(
        "BENCH_trace.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .expect("BENCH_trace.json writes");
    println!("trace_analyze: wrote BENCH_trace.json");

    if !all_sum_ok {
        eprintln!("trace_analyze: FAIL: attribution components do not sum to the makespan");
        std::process::exit(1);
    }
}
