//! Figure 5: the motivating example — two short sequences and one long
//! sequence on two devices, under three parallelization configurations:
//!
//! (a) pure CP (every sequence split across both devices): balanced but
//!     maximal communication;
//! (b) pure DP (long sequence on device 0, short ones on device 1):
//!     zero communication but imbalanced computation;
//! (c) the mixed configuration DCP finds (CP for the long sequence, DP for
//!     the short ones): balanced *and* half the communication.

use dcp_bench::write_results;
use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_core::{Planner, PlannerConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, Placement, ScheduleConfig};
use dcp_sim::simulate_plan;
use dcp_types::{AttnSpec, ClusterSpec};
use serde_json::json;

fn main() {
    // Two short sequences of 4 blocks, one long of 8 blocks (the figure's
    // blue sequence has blocks twice the size; here twice as many).
    let b = 1024u32;
    let seqs = vec![
        (4 * b, MaskSpec::Causal),
        (4 * b, MaskSpec::Causal),
        (8 * b, MaskSpec::Causal),
    ];
    let attn = AttnSpec::paper_micro();
    let cluster = ClusterSpec::single_node(2);
    let layout = BatchLayout::build(
        attn,
        BlockConfig {
            block_size: b,
            head_blocks: 1,
        },
        &seqs,
    )
    .expect("layout");

    let eval = |name: &str, placement: &Placement| {
        let plan = build_plan(&layout, placement, &ScheduleConfig::default()).expect("plan");
        let sim = simulate_plan(&cluster, &plan).expect("sim");
        let loads = placement.comp_loads(&layout);
        let avg = loads.iter().sum::<u64>() as f64 / 2.0;
        let imb = *loads.iter().max().unwrap() as f64 / avg;
        println!(
            "{name:<28} comm {:7.1} MiB   comp imbalance {imb:.2}   sim {:7.3} ms",
            plan.total_comm_bytes() as f64 / (1 << 20) as f64,
            sim.total() * 1e3
        );
        json!({
            "config": name,
            "comm_bytes": plan.total_comm_bytes(),
            "imbalance": imb,
            "sim_ms": sim.total() * 1e3,
        })
    };

    // (a) Pure CP: zigzag halves of every sequence.
    let zigzag = |n_blocks: u32, i: u32| -> u32 {
        // First half of blocks to dev0/dev1 alternating halves (zigzag).
        let half = n_blocks / 2;
        if i < half {
            i % 2
        } else {
            1 - (i - half) % 2
        }
    };
    let mut token_to_dev = Vec::new();
    for (s, (len, _)) in seqs.iter().enumerate() {
        let n_blocks = len / b;
        for i in 0..n_blocks {
            let _ = s;
            token_to_dev.push(zigzag(n_blocks, i));
        }
    }
    let comp_follow_q = |token_to_dev: &[u32]| -> Vec<u32> {
        layout
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect()
    };
    let pure_cp = Placement {
        num_devices: 2,
        token_to_dev: token_to_dev.clone(),
        comp_to_dev: comp_follow_q(&token_to_dev),
    };

    // (b) Pure DP: sequence 2 (long) on device 0, the short ones on 1.
    let dp_tokens: Vec<u32> = layout
        .token_blocks
        .iter()
        .map(|tb| if tb.seq == 2 { 0 } else { 1 })
        .collect();
    let pure_dp = Placement {
        num_devices: 2,
        token_to_dev: dp_tokens.clone(),
        comp_to_dev: comp_follow_q(&dp_tokens),
    };

    // (c) Mixed: short sequences on distinct devices (DP), long split (CP).
    let mixed_tokens: Vec<u32> = layout
        .token_blocks
        .iter()
        .map(|tb| match tb.seq {
            0 => 0,
            1 => 1,
            _ => {
                let i = tb.start / b;
                let n_blocks = 8;
                let half = n_blocks / 2;
                if i < half {
                    i % 2
                } else {
                    1 - (i - half) % 2
                }
            }
        })
        .collect();
    let mixed = Placement {
        num_devices: 2,
        token_to_dev: mixed_tokens.clone(),
        comp_to_dev: comp_follow_q(&mixed_tokens),
    };

    println!("Fig. 5 — parallelization configurations for [4k, 4k, 8k] on 2 devices\n");
    let a = eval("(a) pure CP (zigzag)", &pure_cp);
    let b_ = eval("(b) pure DP", &pure_dp);
    let c = eval("(c) mixed CP+DP (DCP-style)", &mixed);

    // And what the real planner picks.
    let planner = Planner::new(
        cluster.clone(),
        attn,
        PlannerConfig {
            block_size: b,
            head_blocks: Some(1),
            ..Default::default()
        },
    );
    let out = planner.plan(&seqs).expect("plan");
    let sim = simulate_plan(&cluster, &out.plan).expect("sim");
    println!(
        "{:<28} comm {:7.1} MiB   sim {:7.3} ms",
        "planner (hypergraph)",
        out.plan.total_comm_bytes() as f64 / (1 << 20) as f64,
        sim.total() * 1e3
    );
    write_results(
        "fig05_motivating",
        &json!([a, b_, c, {
            "config": "planner",
            "comm_bytes": out.plan.total_comm_bytes(),
            "sim_ms": sim.total() * 1e3,
        }]),
    );
}
