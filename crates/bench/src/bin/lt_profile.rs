//! Developer utility: profile LoongTrain baseline stages per inner-ring size.
use std::time::Instant;

use dcp_baselines::{build_ring_baseline_with_layout, build_ring_layout, RingConfig};
use dcp_bench::{make_batches, micro_attn, micro_cluster};
use dcp_data::{DatasetKind, MaskSetting};
use dcp_sim::simulate_plan;

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let idx: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let batches = make_batches(
        DatasetKind::LongDataCollections,
        scale,
        131072,
        131072,
        MaskSetting::Causal,
        idx + 1,
    );
    let batch = &batches[idx];
    let cfg = RingConfig {
        devices: 32,
        head_groups: 2,
        zigzag: true,
        inner_ring: 1,
        pad_to_max: true,
        block_size: 1024,
        reorder_copy: true,
    };
    let t = Instant::now();
    let layout = build_ring_layout(attn, &cfg, batch).unwrap();
    eprintln!(
        "batch {idx}: layout {:.2}s ({} tokens, {} comp, {} blocks)",
        t.elapsed().as_secs_f64(),
        layout.total_tokens(),
        layout.comp_blocks.len(),
        layout.token_blocks.len()
    );
    for w in [1u32, 2, 4, 8] {
        let mut c2 = cfg;
        c2.inner_ring = w;
        let t = Instant::now();
        let out = build_ring_baseline_with_layout("lt", &c2, layout.clone()).unwrap();
        let ta = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let sim = simulate_plan(&cluster, &out.plan).unwrap();
        eprintln!(
            "w={w}: assemble {ta:.2}s sim {:.2}s -> {:.3}ms",
            t.elapsed().as_secs_f64(),
            sim.total() * 1e3
        );
    }
}
