//! End-to-end observability trace: runs a pinned workload through the
//! instrumented dataloader → planner → executor → simulator pipeline and
//! writes `results/TRACE_e2e.json` — a single Chrome Trace Event file
//! merging all four sources onto per-device rows, doubled as a
//! machine-readable report carrying the schema version and the
//! communication-overlap summary (the fraction of transfer time hidden
//! under compute, per device and per division).
//!
//! Open the trace at `chrome://tracing` or <https://ui.perfetto.dev>; the
//! planner, dataloader, executor and simulator each get their own process
//! row, devices their own thread rows (compute and `net` tracks).
//!
//! A JSONL event log (`results/TRACE_e2e.jsonl`) and a Prometheus-style
//! metric snapshot (`results/TRACE_e2e.prom`) are written alongside from
//! the same event stream.
//!
//! Environment knobs: `DCP_BENCH_BATCHES` (default 2) batches per mask.

use std::path::Path;

use dcp_bench::{trace_doc, trace_workload, Table};
use dcp_core::PlannerConfig;
use dcp_data::{pack_batches, sample_lengths, Batch, DatasetKind, MaskSetting};
use dcp_obs::{to_jsonl, Registry};
use dcp_types::{AttnSpec, ClusterSpec};
use serde_json::json;

/// Fixed dataset seed (the report must be comparable across machines).
const SEED: u64 = 7;
/// Tokens per batch.
const BUDGET: u64 = 8192;
/// Maximum sequence length.
const MAX_LEN: u32 = 2048;
/// Planner block size.
const BLOCK_SIZE: u32 = 128;

fn main() {
    let cluster = ClusterSpec::p4de(2);
    // Small operator so the f32 executor runs at a tractable scale.
    let attn = AttnSpec::new(4, 2, 16, 1);
    let n = std::env::var("DCP_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);

    // Distinct masks give the trace recognizable per-iteration structure.
    let mut batches: Vec<Batch> = Vec::new();
    for mask in [MaskSetting::Causal, MaskSetting::Lambda] {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        batches.extend(
            pack_batches(&lengths, BUDGET, |l| mask.mask_for(l))
                .into_iter()
                .take(n),
        );
    }
    let iters = batches.len();
    println!(
        "trace_report: p4de(2) / LongDataCollections / block {BLOCK_SIZE} / {iters} iteration(s)"
    );

    let cfg = PlannerConfig {
        block_size: BLOCK_SIZE,
        ..Default::default()
    };
    let outcome = trace_workload(&cluster, attn, &cfg, batches, true).expect("trace workload");

    let summary = outcome.overlap_summary();
    let mut table = Table::new(&["device", "comm_ms", "hidden_ms", "efficiency"]);
    for row in summary["per_device"].as_array().expect("per_device rows") {
        table.row(vec![
            row["device"].as_u64().unwrap_or(0).to_string(),
            format!("{:.3}", row["comm_s"].as_f64().unwrap_or(0.0) * 1e3),
            format!("{:.3}", row["hidden_s"].as_f64().unwrap_or(0.0) * 1e3),
            format!("{:.3}", row["efficiency"].as_f64().unwrap_or(1.0)),
        ]);
    }
    table.print();
    println!(
        "overall overlap efficiency: {:.3} ({} events captured, {} division rows)",
        summary["overall"].as_f64().unwrap_or(1.0),
        outcome.events.len(),
        summary["per_division"].as_array().map_or(0, Vec::len),
    );

    let doc = trace_doc(
        &outcome,
        json!({
            "cluster": "p4de(2)",
            "dataset": "LongDataCollections",
            "max_len": MAX_LEN,
            "budget_tokens": BUDGET,
            "block_size": BLOCK_SIZE,
            "attn": { "q_heads": 4, "kv_heads": 2, "head_dim": 16 },
            "seed": SEED,
            "iterations": iters as u64,
            "executed": true,
        }),
    );

    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("TRACE_e2e.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!(
        "[written {} — open in chrome://tracing or Perfetto]",
        path.display()
    );

    let jsonl = dir.join("TRACE_e2e.jsonl");
    std::fs::write(&jsonl, to_jsonl(&outcome.events))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", jsonl.display()));
    println!("[written {}]", jsonl.display());

    let prom = dir.join("TRACE_e2e.prom");
    std::fs::write(
        &prom,
        Registry::from_events(&outcome.events).render_prometheus(),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", prom.display()));
    println!("[written {}]", prom.display());
}
