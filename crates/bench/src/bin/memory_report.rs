//! Memory-balance report: per-device peak block-buffer bytes under DCP vs
//! the baselines. The paper's placement constraint balances *data* blocks
//! precisely so that activation memory (which is linear in resident tokens,
//! Sec. 2.3) stays even while computation (quadratic) is balanced
//! separately — this harness verifies both on real batches, and shows
//! LoongTrain's padding blowing up its footprint.

use dcp_baselines::Baseline;
use dcp_bench::{
    make_batches, mean, micro_attn, micro_cluster, num_batches, run_baseline, run_dcp_best,
    run_loongtrain_best, write_results, Table, BASELINE_BLOCK,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};
use dcp_sched::PlanReport;

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const BUDGET: u64 = 131_072;
    let batches = make_batches(
        DatasetKind::LongDataCollections,
        1.0,
        BUDGET as u32,
        BUDGET,
        MaskSetting::Causal,
        n,
    );

    let mut table = Table::new(&[
        "system",
        "peak_buf_MiB_mean",
        "peak_buf_MiB_max",
        "mem_imbalance",
        "flops_imbalance",
    ]);
    let mut add = |name: &str, reports: &[PlanReport]| {
        let mean_buf: Vec<f64> = reports
            .iter()
            .map(|r| {
                r.devices
                    .iter()
                    .map(|d| d.peak_buffer_bytes as f64)
                    .sum::<f64>()
                    / r.devices.len() as f64
            })
            .collect();
        let max_buf: Vec<f64> = reports
            .iter()
            .map(|r| {
                r.devices
                    .iter()
                    .map(|d| d.peak_buffer_bytes as f64)
                    .fold(0.0, f64::max)
            })
            .collect();
        let mem_imb: Vec<f64> = reports
            .iter()
            .map(|r| r.imbalance(|d| d.peak_buffer_bytes))
            .collect();
        let flop_imb: Vec<f64> = reports
            .iter()
            .map(|r| r.imbalance(|d| d.attn_flops))
            .collect();
        let mib = (1u64 << 20) as f64;
        table.row(vec![
            name.to_string(),
            format!("{:.1}", mean(&mean_buf) / mib),
            format!("{:.1}", mean(&max_buf) / mib),
            format!("{:.2}", mean(&mem_imb)),
            format!("{:.2}", mean(&flop_imb)),
        ]);
    };

    let mut dcp_reports = Vec::new();
    let mut te_reports = Vec::new();
    let mut zz_reports = Vec::new();
    let mut lt_reports = Vec::new();
    for batch in &batches {
        let (_, out) = run_dcp_best(
            &cluster,
            attn,
            &PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
            batch,
        )
        .expect("dcp");
        dcp_reports.push(PlanReport::from_phase(&out.plan.fwd));
        let (_, te) = run_baseline(
            &cluster,
            attn,
            Baseline::TransformerEngine { head_groups: 2 },
            BASELINE_BLOCK,
            batch,
        )
        .expect("te");
        te_reports.push(PlanReport::from_phase(&te.plan.fwd));
        let (_, zz) =
            run_baseline(&cluster, attn, Baseline::RfaZigzag, BASELINE_BLOCK, batch).expect("zz");
        zz_reports.push(PlanReport::from_phase(&zz.plan.fwd));
        let (_, lt) = run_loongtrain_best(&cluster, attn, 2, BASELINE_BLOCK, batch).expect("lt");
        lt_reports.push(PlanReport::from_phase(&lt.plan.fwd));
    }
    add("DCP", &dcp_reports);
    add("TE", &te_reports);
    add("RFA-ZigZag", &zz_reports);
    add("LoongTrain (padded)", &lt_reports);

    println!("Memory balance report (LDC, 32 GPUs, forward phase, {n} batches)");
    table.print();
    println!(
        "\nDCP balances peak buffers alongside FLOPs (separate weight dimensions in\n\
         the hypergraph); LoongTrain's padding inflates every device's footprint."
    );
    write_results("memory_report", &table.to_json());
}
