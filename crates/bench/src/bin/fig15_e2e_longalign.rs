//! Figure 15: end-to-end per-iteration training time on LongAlign — 8B GPT,
//! 64 GPUs (TP = 4, CP = 16), DCP vs Megatron-LM with the mask-extended
//! TransformerEngine CP backend, across maximum sequence lengths and masks.

use dcp_bench::e2e_figure;
use dcp_data::DatasetKind;

fn main() {
    e2e_figure(DatasetKind::LongAlign, "fig15_e2e_longalign");
}
