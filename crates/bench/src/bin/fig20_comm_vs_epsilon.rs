//! Figure 20: DCP communication volume vs the computation-imbalance
//! tolerance epsilon — the trade-off between balance and communication.
//! Larger epsilon lets the partitioner keep more blocks local, reducing
//! communication at the cost of compute imbalance.

use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, run_dcp, write_results, Table,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};

fn main() {
    let cp = e2e_cp_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const MAX_LEN: u32 = 131_072;

    let mut table = Table::new(&["dataset", "epsilon", "DCP_comm_MiB", "comp_imbalance"]);
    for kind in [DatasetKind::LongAlign, DatasetKind::LongDataCollections] {
        let batches = make_batches(kind, 1.0, MAX_LEN, MAX_LEN as u64, MaskSetting::Causal, n);
        for eps in [0.0f64, 0.1, 0.2, 0.4, 0.8] {
            let mut comm = Vec::new();
            let mut imb = Vec::new();
            for batch in &batches {
                let (_, out) = run_dcp(
                    &cp,
                    attn,
                    &PlannerConfig {
                        block_size: 1024,
                        eps_inter: eps.max(0.4),
                        eps_intra: eps,
                        ..Default::default()
                    },
                    batch,
                )
                .expect("dcp");
                comm.push(out.plan.total_comm_bytes() as f64);
                let loads = out.placement.comp_loads(&out.layout);
                let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
                imb.push(*loads.iter().max().unwrap() as f64 / avg);
            }
            table.row(vec![
                kind.name().to_string(),
                format!("{eps}"),
                format!("{:.1}", mean(&comm) / (1u64 << 20) as f64),
                format!("{:.3}", mean(&imb)),
            ]);
        }
    }
    println!("Fig. 20 — DCP communication vs computation imbalance tolerance ({n} batches)");
    table.print();
    write_results("fig20_comm_vs_epsilon", &table.to_json());
}
