//! Figure 18: planning time vs block size — block generation, hypergraph
//! partitioning and scheduling, per batch, for causal and sparse masks.
//! Planning time falls rapidly with block size (fewer blocks), and sparse
//! masks plan faster (fewer computation blocks).

use dcp_bench::{
    e2e_cp_cluster, make_batches, mean, micro_attn, num_batches, write_results, Table,
};
use dcp_core::{Planner, PlannerConfig};
use dcp_data::{DatasetKind, MaskSetting};

fn main() {
    let cp = e2e_cp_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const MAX_LEN: u32 = 131_072;

    let mut table = Table::new(&[
        "mask",
        "block",
        "blockgen_ms",
        "partition_ms",
        "schedule_ms",
        "total_ms",
    ]);
    for mask in [MaskSetting::Causal, MaskSetting::Lambda] {
        let batches = make_batches(
            DatasetKind::LongAlign,
            1.0,
            MAX_LEN,
            MAX_LEN as u64,
            mask,
            n,
        );
        for block in [512u32, 1024, 2048, 4096] {
            let planner = Planner::new(
                cp.clone(),
                attn,
                PlannerConfig {
                    block_size: block,
                    ..Default::default()
                },
            );
            let mut bg = Vec::new();
            let mut pt = Vec::new();
            let mut st = Vec::new();
            for batch in &batches {
                let out = planner.plan(batch).expect("plan");
                bg.push(out.times.block_gen * 1e3);
                pt.push(out.times.partition * 1e3);
                st.push(out.times.schedule * 1e3);
            }
            table.row(vec![
                mask.name().to_string(),
                block.to_string(),
                format!("{:.1}", mean(&bg)),
                format!("{:.1}", mean(&pt)),
                format!("{:.1}", mean(&st)),
                format!("{:.1}", mean(&bg) + mean(&pt) + mean(&st)),
            ]);
        }
    }
    println!("Fig. 18 — planning time vs block size ({n} batches/config, wall clock)");
    table.print();
    println!(
        "\nThe paper's budget: < 10 s/batch planning overlaps > 1 s/iteration execution\n\
         with >= 10 parallel planner cores; the Rust planner is orders of magnitude\n\
         below that budget."
    );
    write_results("fig18_planning_time", &table.to_json());
}
