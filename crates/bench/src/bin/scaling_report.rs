//! Cluster-scaling evidence: plan latency, plan quality and simulator
//! throughput from 16 to 1024 devices across fabric topologies.
//!
//! For every `(devices, topology)` point — flat two-tier p4de, rail-optimized
//! NICs, and a 4x-oversubscribed leaf/spine fabric — the sweep plans a
//! workload whose token budget grows linearly with the cluster (fixed
//! per-device load, the standard weak-scaling regime) and reports:
//!
//! - **cold plan latency** (median over fresh planners with the plan cache
//!   disabled — no warm-start, no memoization),
//! - **plan quality vs. the flat-topology oracle**: the makespan of a plan
//!   produced by a topology-blind planner, simulated on the *true* fabric,
//!   divided by the topology-aware plan's makespan (>= 1 means awareness
//!   won),
//! - **simulated makespan** and **simulator event throughput**
//!   (events/second of wall time) for the forward phase.
//!
//! The `sim_engine` section re-simulates the sweep's largest plan under both
//! network engines — the incremental dirty-component allocator and the
//! retained per-event scratch water-fill — checking bitwise agreement and
//! recording the speedup (gated at >= 5x by `plan_gate --scaling`).
//!
//! Writes `BENCH_scaling.json` (schema-versioned, at the repo root, gated in
//! CI against `results/BENCH_scaling_baseline.json`) and the table to
//! `results/scaling_report.json`.
//!
//! Usage: `scaling_report [--smoke]` — `--smoke` keeps the full 16→1024
//! device coverage but runs one planning rep per point instead of five.

use std::time::Instant;

use dcp_bench::{micro_attn, seed, write_results, Table, BENCH_SCHEMA_VERSION};
use dcp_core::{PlanOutput, Planner, PlannerConfig};
use dcp_data::{pack_batches, sample_lengths, DatasetKind};
use dcp_mask::MaskSpec;
use dcp_sim::{simulate_phase_counted, simulate_phase_scratch};
use dcp_types::ClusterSpec;

/// Weak-scaling token budget per device.
const TOKENS_PER_DEVICE: u64 = 2048;
/// Longest single sequence in any sweep batch. Capped at 64k so the causal
/// comp-block count (quadratic in per-sequence blocks) stays planning-bound
/// rather than graph-construction-bound at 1024 devices.
const MAX_LEN: u32 = 65_536;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// One weak-scaled batch for a cluster of `devices` GPUs.
fn batch_for(devices: u32) -> Vec<(u32, MaskSpec)> {
    let budget = devices as u64 * TOKENS_PER_DEVICE;
    let max_len = MAX_LEN.min(budget as u32);
    let lengths = sample_lengths(DatasetKind::LongAlign, 4096, 1.0, max_len, seed());
    pack_batches(&lengths, budget, |_| MaskSpec::Causal)
        .into_iter()
        .next()
        .expect("non-empty budget")
        .seqs
}

fn planner_cfg(devices: u32) -> PlannerConfig {
    PlannerConfig {
        // Coarser blocks at scale keep the hypergraph tractable — the same
        // knob the paper turns for its largest contexts.
        block_size: if devices >= 256 { 2048 } else { 1024 },
        plan_cache: 0,
        ..Default::default()
    }
}

/// Cold-plans `batch` on `cluster` `reps` times with fresh planners,
/// returning the per-rep wall seconds and the (deterministic) plan.
fn cold_plan(
    cluster: &ClusterSpec,
    batch: &[(u32, MaskSpec)],
    reps: usize,
) -> (Vec<f64>, PlanOutput) {
    let cfg = planner_cfg(cluster.num_devices());
    let mut walls = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let planner = Planner::new(cluster.clone(), micro_attn(), cfg.clone());
        let t = Instant::now();
        out = Some(planner.plan(batch).expect("plan"));
        walls.push(t.elapsed().as_secs_f64());
    }
    (walls, out.expect("reps >= 1"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    let attn_note = "paper_micro GQA 8Q/2KV d=128";

    let mut table = Table::new(&[
        "devices",
        "topology",
        "plan_ms",
        "oracle_ratio",
        "makespan_ms",
        "sim_events",
        "sim_kev_per_s",
    ]);
    let mut sweep = Vec::new();
    let mut largest: Option<(ClusterSpec, PlanOutput, String)> = None;

    for nodes in [2u32, 8, 32, 128] {
        let devices = nodes * 8;
        let batch = batch_for(devices);
        let nodes_per_leaf = if nodes >= 4 { 4 } else { 2 };
        let topologies: Vec<(&str, ClusterSpec)> = vec![
            ("flat", ClusterSpec::p4de(nodes)),
            ("rail", ClusterSpec::p4de_rail(nodes)),
            (
                "spine4x",
                ClusterSpec::p4de_spine(nodes, nodes_per_leaf, 4.0),
            ),
        ];
        // The flat plan doubles as every topology's blind oracle.
        let (flat_walls, flat_out) = cold_plan(&topologies[0].1, &batch, reps);
        for (name, cluster) in &topologies {
            let (walls, out) = if *name == "flat" {
                (flat_walls.clone(), flat_out.clone())
            } else {
                cold_plan(cluster, &batch, reps)
            };
            let plan_s = median(walls.clone());

            let t = Instant::now();
            let (sim, counters) = simulate_phase_counted(cluster, &out.plan.fwd).expect("simulate");
            let sim_wall = t.elapsed().as_secs_f64();
            let events_per_s = counters.events as f64 / sim_wall.max(1e-12);

            // Oracle: the topology-blind plan, paid for on the true fabric.
            let oracle_ratio = if *name == "flat" {
                1.0
            } else {
                let (oracle_sim, _) =
                    simulate_phase_counted(cluster, &flat_out.plan.fwd).expect("oracle sim");
                oracle_sim.makespan / sim.makespan
            };

            table.row(vec![
                devices.to_string(),
                name.to_string(),
                format!("{:.1}", plan_s * 1e3),
                format!("{oracle_ratio:.3}"),
                format!("{:.2}", sim.makespan * 1e3),
                counters.events.to_string(),
                format!("{:.0}", events_per_s / 1e3),
            ]);
            sweep.push(serde_json::json!({
                "devices": devices,
                "nodes": nodes,
                "topology": name,
                "tiers": cluster.tiers().len() + 2,
                "batch_seqs": batch.len() as u64,
                "batch_tokens": batch.iter().map(|(l, _)| *l as u64).sum::<u64>(),
                "plan_wall_s": walls,
                "plan_wall_s_median": plan_s,
                "plan_tier": out.tier.label(),
                "oracle_makespan_ratio": oracle_ratio,
                "makespan_s": sim.makespan,
                "total_comm_bytes": out.plan.total_comm_bytes(),
                "comm_bytes_by_tier": out.plan.comm_bytes_by_tier(cluster),
                "sim_wall_s": sim_wall,
                "sim_events": counters.events,
                "sim_flows": counters.flows,
                "sim_events_per_s": events_per_s,
            }));
            if largest
                .as_ref()
                .is_none_or(|(c, _, _)| cluster.num_devices() >= c.num_devices())
            {
                largest = Some((cluster.clone(), out.clone(), name.to_string()));
            }
        }
    }

    // Engine A/B on the sweep's largest plan: the incremental allocator must
    // agree bitwise with the retained scratch water-fill and beat it by the
    // gated factor on wall time.
    let (cluster, out, topo) = largest.expect("non-empty sweep");
    let t = Instant::now();
    let (inc_sim, inc_counters) =
        simulate_phase_counted(&cluster, &out.plan.fwd).expect("incremental sim");
    let inc_wall = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (scr_sim, scr_counters) =
        simulate_phase_scratch(&cluster, &out.plan.fwd).expect("scratch sim");
    let scr_wall = t.elapsed().as_secs_f64();
    let bitwise = inc_sim == scr_sim;
    // The scratch reference iterates fresh hash maps, so *its* tie-breaks at
    // this scale wander by an ulp run-to-run; exact bitwise agreement on the
    // flat default topology is pinned by `tests/scale.rs` instead. Here the
    // engines must agree to fp-noise tolerance.
    let rel_err = (inc_sim.makespan - scr_sim.makespan).abs() / scr_sim.makespan.max(1e-300);
    let speedup = scr_wall / inc_wall.max(1e-12);
    assert!(
        rel_err < 1e-9,
        "engines diverged: incremental makespan {} vs scratch {} (rel err {rel_err:.3e})",
        inc_sim.makespan,
        scr_sim.makespan
    );
    println!(
        "Scaling sweep (weak scaling, {TOKENS_PER_DEVICE} tokens/device, {attn_note}, \
         reps={reps}{})",
        if smoke { ", smoke" } else { "" }
    );
    table.print();
    println!(
        "\nEngine A/B on the largest plan ({} devices, {topo}): incremental {:.2}s vs \
         scratch {:.2}s = {speedup:.1}x, makespan rel err {rel_err:.2e}",
        cluster.num_devices(),
        inc_wall,
        scr_wall
    );

    let doc = serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "smoke": smoke,
            "reps": reps as u64,
            "tokens_per_device": TOKENS_PER_DEVICE,
            "max_len": MAX_LEN,
            "attn": attn_note,
        },
        "sweep": sweep,
        "sim_engine": {
            "devices": cluster.num_devices(),
            "topology": topo,
            "incremental_wall_s": inc_wall,
            "scratch_wall_s": scr_wall,
            "speedup": speedup,
            "bitwise_identical": bitwise,
            "makespan_rel_err": rel_err,
            "events": inc_counters.events,
            "incremental_touched_flows": inc_counters.touched_flows,
            "scratch_touched_flows": scr_counters.touched_flows,
            "incremental_events_per_s": inc_counters.events as f64 / inc_wall.max(1e-12),
            "scratch_events_per_s": scr_counters.events as f64 / scr_wall.max(1e-12),
        },
    });
    std::fs::write(
        "BENCH_scaling.json",
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .expect("write BENCH_scaling.json");
    println!("\n[scaling report written to BENCH_scaling.json]");
    write_results("scaling_report", &doc["sweep"]);
}
