//! Cluster-scaling report: the paper's introduction claim that static CP's
//! communication overhead grows with the training-cluster size, and how DCP
//! changes the curve. Sweeps the context-parallel degree at a fixed
//! per-batch workload.

use dcp_baselines::Baseline;
use dcp_bench::{
    make_batches, mean, micro_attn, num_batches, run_baseline, run_dcp_best, write_results, Table,
    BASELINE_BLOCK,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};
use dcp_types::ClusterSpec;

fn main() {
    let attn = micro_attn();
    let n = num_batches();
    const BUDGET: u64 = 131_072;
    let batches = make_batches(
        DatasetKind::LongAlign,
        1.0,
        BUDGET as u32,
        BUDGET,
        MaskSetting::Causal,
        n,
    );

    let mut table = Table::new(&[
        "nodes",
        "gpus",
        "DCP_ms",
        "DCP_exposed_ms",
        "TE_ms",
        "TE_exposed_ms",
        "speedup",
    ]);
    for nodes in [1u32, 2, 4, 8] {
        let cluster = ClusterSpec::p4de(nodes);
        let mut dcp_t = Vec::new();
        let mut dcp_e = Vec::new();
        let mut te_t = Vec::new();
        let mut te_e = Vec::new();
        for batch in &batches {
            let (sim, _) = run_dcp_best(
                &cluster,
                attn,
                &PlannerConfig {
                    block_size: 1024,
                    ..Default::default()
                },
                batch,
            )
            .expect("dcp");
            dcp_t.push(sim.total() * 1e3);
            dcp_e.push((sim.fwd.max_exposed() + sim.bwd.max_exposed()) * 1e3);
            let (sim, _) = run_baseline(
                &cluster,
                attn,
                Baseline::TransformerEngine { head_groups: 2 },
                BASELINE_BLOCK,
                batch,
            )
            .expect("te");
            te_t.push(sim.total() * 1e3);
            te_e.push((sim.fwd.max_exposed() + sim.bwd.max_exposed()) * 1e3);
        }
        table.row(vec![
            nodes.to_string(),
            (nodes * 8).to_string(),
            format!("{:.2}", mean(&dcp_t)),
            format!("{:.2}", mean(&dcp_e)),
            format!("{:.2}", mean(&te_t)),
            format!("{:.2}", mean(&te_e)),
            format!("{:.2}x", mean(&te_t) / mean(&dcp_t)),
        ]);
    }
    println!(
        "Cluster scaling: attention time for a fixed 131072-token LongAlign batch\n\
         as context parallelism widens ({n} batches/config)"
    );
    table.print();
    println!(
        "\nWith a fixed workload, wider CP means less compute per device but more\n\
         relayed KV for the static baseline — the paper's motivation for dynamic\n\
         parallelization (Sec. 1, Fig. 1)."
    );
    write_results("scaling_report", &table.to_json());
}
