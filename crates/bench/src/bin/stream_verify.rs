//! CI stream-legality sweep: runs the `dcp_sched::verify` checker over
//! every plan the benchmark workload produces — all fallback tiers, the
//! pass-optimized rewrites and every recovery-patch rendering — and over a
//! battery of seeded illegal mutations that the verifier must *reject* with
//! a typed diagnostic.
//!
//! Writes `VERIFY_streams.json` (uploaded as a CI artifact) and exits
//! non-zero on any illegal stream or any accepted mutation, so a scheduler
//! or patcher regression that emits a malformed stream fails the `verify`
//! job even when no numeric test happens to execute that plan.
//!
//! Workload: the `perf_report` batches (p4de(2), LongDataCollections,
//! block 128, 3 mask settings, `DCP_BENCH_BATCHES` batches per mask).

use std::process::exit;

use dcp_bench::BENCH_SCHEMA_VERSION;
use dcp_core::{FailureEvent, Planner, PlannerConfig, RecoveryConfig, RecoveryPlanner};
use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
use dcp_mask::MaskSpec;
use dcp_sched::{
    verify_phase, verify_plan, verify_structure, CommId, Diagnostic, ExecutionPlan, Instr,
    PassConfig, PassManager, Payload, PayloadKind, Placement, ViolationKind,
};
use dcp_types::{AttnSpec, ClusterSpec, PlanTier};
use serde_json::json;

const SEED: u64 = 7;
const BUDGET: u64 = 8192;
const MAX_LEN: u32 = 2048;
const BLOCK_SIZE: u32 = 128;

fn exec_attn() -> AttnSpec {
    AttnSpec::new(4, 2, 16, 1)
}

fn batches_per_mask() -> usize {
    std::env::var("DCP_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// One plan candidate the mutation battery can draw from.
struct Candidate {
    layout: dcp_blocks::BatchLayout,
    placement: Placement,
    plan: ExecutionPlan,
}

/// A seeded illegal rewrite: returns `true` when it could be applied to
/// this plan (some mutations need a partial transfer or a multi-device op
/// to exist).
type Mutation = (
    &'static str,
    &'static [ViolationKind],
    fn(&mut ExecutionPlan) -> bool,
);

fn mutate_wait_before_launch(plan: &mut ExecutionPlan) -> bool {
    for stream in &mut plan.fwd.devices {
        for i in 0..stream.instrs.len() {
            if let Instr::CommLaunch(cid) = stream.instrs[i] {
                let input_only = plan.fwd.comms[cid.0 as usize]
                    .transfers
                    .iter()
                    .all(|t| matches!(t.payload.kind(), PayloadKind::Q | PayloadKind::Kv));
                if !input_only {
                    continue;
                }
                if let Some(j) = stream.instrs[i + 1..]
                    .iter()
                    .position(|x| *x == Instr::CommWait(cid))
                {
                    let wait = stream.instrs.remove(i + 1 + j);
                    stream.instrs.insert(i, wait);
                    return true;
                }
            }
        }
    }
    false
}

fn mutate_duplicate_compute(plan: &mut ExecutionPlan) -> bool {
    for stream in &mut plan.fwd.devices {
        for ins in &mut stream.instrs {
            if let Instr::Attn { items, .. } = ins {
                if let Some(&c) = items.first() {
                    items.push(c);
                    return true;
                }
            }
        }
    }
    false
}

fn mutate_drop_input_transfer(plan: &mut ExecutionPlan) -> bool {
    for op in &mut plan.fwd.comms {
        if let Some(pos) = op
            .transfers
            .iter()
            .position(|t| matches!(t.payload, Payload::Q(_) | Payload::Kv(_)))
        {
            op.transfers.remove(pos);
            return true;
        }
    }
    false
}

fn mutate_out_of_range_comm_id(plan: &mut ExecutionPlan) -> bool {
    let bogus = CommId(plan.fwd.comms.len() as u32 + 7);
    plan.fwd.devices[0].instrs.insert(0, Instr::CommWait(bogus));
    true
}

fn mutate_self_transfer(plan: &mut ExecutionPlan) -> bool {
    for op in &mut plan.fwd.comms {
        for tr in &mut op.transfers {
            if matches!(tr.payload, Payload::Q(_) | Payload::Kv(_)) {
                tr.from = tr.to;
                return true;
            }
        }
    }
    false
}

fn mutate_drop_attn(plan: &mut ExecutionPlan) -> bool {
    for stream in &mut plan.fwd.devices {
        if let Some(i) = stream
            .instrs
            .iter()
            .position(|ins| matches!(ins, Instr::Attn { .. }))
        {
            stream.instrs.remove(i);
            return true;
        }
    }
    false
}

fn mutate_phantom_reduce_source(plan: &mut ExecutionPlan) -> bool {
    let nd = plan.num_devices;
    for stream in &mut plan.fwd.devices {
        let dev = stream.device;
        for ins in &mut stream.instrs {
            if let Instr::Reduce { items, .. } = ins {
                for item in items.iter_mut() {
                    if let Some(phantom) = (0..nd).find(|d| !item.sources.contains(d) && *d != dev)
                    {
                        item.sources.push(phantom);
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn mutate_misdirect_partial(plan: &mut ExecutionPlan) -> bool {
    let nd = plan.num_devices;
    for op in &mut plan.fwd.comms {
        for tr in &mut op.transfers {
            if matches!(tr.payload, Payload::PartialO(..)) {
                tr.to = (tr.to + 1) % nd;
                if tr.to == tr.from {
                    tr.to = (tr.to + 1) % nd;
                }
                return true;
            }
        }
    }
    false
}

const MUTATIONS: &[Mutation] = &[
    (
        "wait-before-launch",
        &[ViolationKind::WaitWithoutLaunch],
        mutate_wait_before_launch,
    ),
    (
        "duplicate-compute",
        &[ViolationKind::DuplicateCompute],
        mutate_duplicate_compute,
    ),
    (
        "dropped-input-transfer",
        &[
            ViolationKind::MissingInput,
            ViolationKind::WaitReceivesNothing,
        ],
        mutate_drop_input_transfer,
    ),
    (
        "out-of-range-comm-id",
        &[ViolationKind::CommIdOutOfRange],
        mutate_out_of_range_comm_id,
    ),
    (
        "self-transfer",
        &[ViolationKind::SelfTransfer],
        mutate_self_transfer,
    ),
    (
        "dropped-attn",
        &[
            ViolationKind::MissingCompute,
            ViolationKind::MissingProducerState,
            ViolationKind::MissingPartial,
            ViolationKind::Deadlock,
        ],
        mutate_drop_attn,
    ),
    (
        "phantom-reduce-source",
        &[ViolationKind::MissingPartial],
        mutate_phantom_reduce_source,
    ),
    (
        "misdirected-partial",
        &[
            ViolationKind::BadRoute,
            ViolationKind::MissingPartial,
            ViolationKind::WaitReceivesNothing,
            ViolationKind::Deadlock,
        ],
        mutate_misdirect_partial,
    ),
];

fn diag_json(d: &Diagnostic) -> serde_json::Value {
    serde_json::to_value(d).expect("diagnostic serializes")
}

fn main() {
    let cluster = ClusterSpec::p4de(2);
    let attn = exec_attn();
    let n = batches_per_mask();
    let masks = [
        MaskSetting::Causal,
        MaskSetting::Lambda,
        MaskSetting::SharedQuestion,
    ];
    let pm = PassManager::new(PassConfig::optimize());

    let mut failures: Vec<String> = Vec::new();
    let mut stream_rows = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();

    // Every fallback tier over every batch, raw and pass-optimized.
    for mask in masks {
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<Vec<(u32, MaskSpec)>> =
            pack_batches(&lengths, BUDGET, |l| mask.mask_for(l))
                .into_iter()
                .take(n)
                .map(|b| b.seqs)
                .collect();
        for (bi, batch) in batches.iter().enumerate() {
            for tier in PlanTier::all() {
                let planner = Planner::new(
                    cluster.clone(),
                    attn,
                    PlannerConfig {
                        block_size: BLOCK_SIZE,
                        force_tier: Some(tier),
                        ..Default::default()
                    },
                );
                let out = match planner.plan(batch) {
                    Ok(out) => out,
                    Err(e) => {
                        failures.push(format!(
                            "{}/batch{bi}/{}: planning failed: {e}",
                            mask.name(),
                            tier.label()
                        ));
                        continue;
                    }
                };
                let raw = verify_plan(&out.layout, &out.placement, &out.plan).err();
                let mut optimized = out.plan.clone();
                pm.run_plan(&out.layout, &out.placement, &mut optimized);
                let opt = verify_plan(&out.layout, &out.placement, &optimized).err();
                let fwd_structure = verify_structure(&out.plan.fwd).err();
                let bwd_structure = verify_structure(&out.plan.bwd).err();
                for (what, err) in [
                    ("raw", &raw),
                    ("optimized", &opt),
                    ("fwd-structure", &fwd_structure),
                    ("bwd-structure", &bwd_structure),
                ] {
                    if let Some(d) = err {
                        failures.push(format!(
                            "{}/batch{bi}/{} ({what}): {d}",
                            mask.name(),
                            tier.label()
                        ));
                    }
                }
                stream_rows.push(json!({
                    "mask": mask.name(),
                    "batch": bi,
                    "tier": tier.label(),
                    "comm_ops": out.plan.fwd.comms.len() + out.plan.bwd.comms.len(),
                    "comm_bytes": out.plan.total_comm_bytes(),
                    "raw_ok": raw.is_none(),
                    "optimized_ok": opt.is_none(),
                    "raw_diagnostic": raw.as_ref().map(diag_json),
                    "optimized_diagnostic": opt.as_ref().map(diag_json),
                }));
                if tier == PlanTier::Partitioned {
                    candidates.push(Candidate {
                        layout: out.layout,
                        placement: out.placement,
                        plan: out.plan,
                    });
                }
            }
        }
    }

    // Recovery patches: the functional forward phase under the salvage
    // rules, the re-planned backward phase and the host-folded timing plan.
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let mut recovery_rows = Vec::new();
    {
        let planner = Planner::new(
            cluster.clone(),
            attn,
            PlannerConfig {
                block_size: BLOCK_SIZE,
                ..Default::default()
            },
        );
        let lengths = sample_lengths(DatasetKind::LongDataCollections, n * 64, 1.0, MAX_LEN, SEED);
        let batches: Vec<Vec<(u32, MaskSpec)>> =
            pack_batches(&lengths, BUDGET, |l| MaskSetting::Causal.mask_for(l))
                .into_iter()
                .take(n)
                .map(|b| b.seqs)
                .collect();
        for (bi, batch) in batches.iter().enumerate() {
            let out = planner.plan(batch).expect("plan");
            let (dev, nd) = out
                .plan
                .fwd
                .devices
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let divs = s
                        .instrs
                        .iter()
                        .filter(|ins| matches!(ins, Instr::Attn { .. }))
                        .count() as u32;
                    (i as u32, divs)
                })
                .max_by_key(|&(i, divs)| (divs, std::cmp::Reverse(i)))
                .expect("nonempty plan");
            if nd < 2 {
                continue;
            }
            let patch = match rp.plan_recovery(
                &out,
                &FailureEvent {
                    device: dev,
                    divisions_done: (nd / 2).max(1),
                },
            ) {
                Ok(p) => p,
                Err(e) => {
                    failures.push(format!("recovery/batch{bi}: patch planning failed: {e}"));
                    continue;
                }
            };
            let ctx = patch.verify_ctx();
            let fwd = verify_phase(&out.layout, &patch.placement, &patch.fwd, false, &ctx).err();
            let bwd = verify_plan(&out.layout, &patch.bwd_placement, &patch.bwd).err();
            let timing = verify_structure(&patch.timing).err();
            let mut opt_fwd_phase = patch.fwd.clone();
            pm.run_phase(
                &out.layout,
                &mut opt_fwd_phase,
                "recovery_fwd",
                &patch.salvage_comms,
            );
            let opt_fwd =
                verify_phase(&out.layout, &patch.placement, &opt_fwd_phase, false, &ctx).err();
            for (what, err) in [
                ("fwd", &fwd),
                ("bwd", &bwd),
                ("timing", &timing),
                ("optimized-fwd", &opt_fwd),
            ] {
                if let Some(d) = err {
                    failures.push(format!("recovery/batch{bi} ({what}): {d}"));
                }
            }
            let diagnostics: Vec<_> = [&fwd, &bwd, &timing, &opt_fwd]
                .iter()
                .filter_map(|e| e.as_ref().map(diag_json))
                .collect();
            recovery_rows.push(json!({
                "batch": bi,
                "failed_device": dev,
                "divisions_done": (nd / 2).max(1),
                "fwd_ok": fwd.is_none(),
                "bwd_ok": bwd.is_none(),
                "timing_ok": timing.is_none(),
                "optimized_fwd_ok": opt_fwd.is_none(),
                "diagnostics": diagnostics,
            }));
        }
    }

    // Seeded illegal mutations: each must be rejected with a typed
    // diagnostic of the expected kind. Candidates come from the partitioned
    // tier above; a mutation that applies to no candidate is a failure
    // (the battery has gone stale against the scheduler's output shape).
    let mut mutation_rows = Vec::new();
    for (name, expected, apply) in MUTATIONS {
        let mut applied = false;
        for cand in &candidates {
            let mut plan = cand.plan.clone();
            if !apply(&mut plan) {
                continue;
            }
            applied = true;
            match verify_plan(&cand.layout, &cand.placement, &plan) {
                Ok(()) => {
                    failures.push(format!(
                        "mutation {name}: verifier ACCEPTED an illegal stream"
                    ));
                    mutation_rows.push(json!({
                        "mutation": name,
                        "rejected": false,
                    }));
                }
                Err(d) => {
                    let kind_ok = expected.contains(&d.kind);
                    if !kind_ok {
                        failures.push(format!(
                            "mutation {name}: rejected with unexpected kind {} \
                             (expected one of {expected:?}): {d}",
                            d.kind
                        ));
                    }
                    mutation_rows.push(json!({
                        "mutation": name,
                        "rejected": true,
                        "kind_ok": kind_ok,
                        "diagnostic": diag_json(&d),
                    }));
                }
            }
            break;
        }
        if !applied {
            failures.push(format!("mutation {name}: applied to no candidate plan"));
        }
    }

    let ok = failures.is_empty();
    let report = json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": {
            "cluster": "p4de(2)",
            "dataset": "LongDataCollections",
            "max_len": MAX_LEN,
            "budget_tokens": BUDGET,
            "block_size": BLOCK_SIZE,
            "seed": SEED,
            "batches_per_mask": n,
        },
        "streams": stream_rows,
        "recovery": recovery_rows,
        "mutations": mutation_rows,
        "failures": failures,
        "ok": ok,
    });
    std::fs::write(
        "VERIFY_streams.json",
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write VERIFY_streams.json: {e}"));
    println!(
        "stream_verify: {} streams, {} recovery patches, {} mutations — {}",
        report["streams"].as_array().unwrap().len(),
        report["recovery"].as_array().unwrap().len(),
        report["mutations"].as_array().unwrap().len(),
        if ok { "OK" } else { "FAIL" }
    );
    println!("[written VERIFY_streams.json]");
    if !ok {
        for f in report["failures"].as_array().unwrap() {
            eprintln!("stream_verify: FAIL: {}", f.as_str().unwrap_or("?"));
        }
        exit(1);
    }
}
