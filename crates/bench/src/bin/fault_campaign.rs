//! Seeded fault-campaign sweep: randomized kill cocktails against the
//! elastic-recovery subsystem, priced into `BENCH_robustness.json`.
//!
//! Four scenario families, all seeded and fully deterministic:
//!
//! - **single**: one device dies mid-forward at a random division frontier;
//! - **concurrent**: two devices die back to back before the second one
//!   starts any recovery work (its kill frontier stays inside its own
//!   stream), composing a depth-2 patch over an untouched shard set;
//! - **cascade**: a shard-hosting survivor dies *mid-patch* — after
//!   executing part of the spliced recovery shard — so the second patch
//!   must salvage recovery work from the first;
//! - **backward**: a device dies mid-backward and its partial `dQ`/`dKV`
//!   accumulators are salvaged at the reduction frontier.
//!
//! Every run executes the patched plan numerically and compares the merged
//! output (or gradients) **bitwise** against the unfaulted run. Half the
//! forward runs plan recovery fault-aware (a straggler and a degraded link
//! among the survivors) to exercise the `FaultSpec`-adjusted water-fill.
//!
//! The summary is merged into `BENCH_robustness.json` under a
//! `fault_campaign` key (the rest of the document — written by
//! `perf_report` — is preserved; the file is created schema-stamped when
//! absent), and the process exits 1 on any bitwise mismatch or verifier
//! rejection so CI fails even without the gate.
//!
//! Usage: `fault_campaign [--smoke] [robustness.json]`
//! `--smoke` runs 2 seeds per scenario instead of 5 (the CI verify job).

use std::collections::HashMap;
use std::process::exit;
use std::time::Instant;

use dcp_bench::BENCH_SCHEMA_VERSION;
use dcp_blocks::TokenBlockId;
use dcp_core::{
    BwdRecoveryPatch, FailureEvent, PlanOutput, Planner, PlannerConfig, RecoveryConfig,
    RecoveryPatch, RecoveryPlanner,
};
use dcp_exec::{
    execute_backward, execute_backward_recovery, execute_forward, execute_forward_recovery,
    BatchData, BlockOut, ExecObs, SalvageCtx,
};
use dcp_mask::MaskSpec;
use dcp_sched::Instr;
use dcp_sim::{Fault, FaultSpec};
use dcp_types::{AttnSpec, ClusterSpec, DcpError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

const DEVICES: u32 = 8;
const CAMPAIGN_SEED: u64 = 0xFA17;

fn fwd_divs(out_instrs: &[Instr]) -> u32 {
    out_instrs
        .iter()
        .filter(|i| matches!(i, Instr::Attn { .. }))
        .count() as u32
}

fn bwd_divs(out_instrs: &[Instr]) -> u32 {
    out_instrs
        .iter()
        .filter(|i| matches!(i, Instr::AttnBwd { .. }))
        .count() as u32
}

fn plan_batch(seed: u64) -> PlanOutput {
    let planner = Planner::new(
        ClusterSpec::single_node(DEVICES),
        AttnSpec::new(4, 2, 8, 2),
        PlannerConfig {
            block_size: 16,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let nseq = rng.gen_range(3..6);
    let seqs: Vec<(u32, MaskSpec)> = (0..nseq)
        .map(|i| {
            let len = rng.gen_range(48..220);
            let mask = if i == 0 {
                MaskSpec::Lambda {
                    sink: 4,
                    window: 24,
                }
            } else {
                MaskSpec::Causal
            };
            (len, mask)
        })
        .collect();
    planner.plan(&seqs).expect("campaign batch plans")
}

fn fwd_salvage_ctx(patch: &RecoveryPatch) -> SalvageCtx {
    SalvageCtx {
        failed: patch.failed_streams.clone(),
        salvage_comms: patch.salvage_comms.clone(),
        producer_of: patch.producer_of.clone(),
        reowned: patch.reowned.clone(),
        ..SalvageCtx::default()
    }
}

fn bwd_salvage_ctx(patch: &BwdRecoveryPatch) -> SalvageCtx {
    SalvageCtx {
        failed: std::collections::HashSet::from([patch.failed]),
        salvage_comms: patch.salvage_comms.clone(),
        producer_of_dq: patch.producer_of_dq.clone(),
        producer_of_dkv: patch.producer_of_dkv.clone(),
        reowned: patch.reowned.clone(),
        ..SalvageCtx::default()
    }
}

fn bits_of(outs: &HashMap<TokenBlockId, BlockOut>) -> Vec<u32> {
    let mut keys: Vec<TokenBlockId> = outs.keys().copied().collect();
    keys.sort_by_key(|t| t.0);
    let mut bits = Vec::new();
    for id in keys {
        let b = &outs[&id];
        bits.extend(b.o.iter().map(|v| v.to_bits()));
        bits.extend(b.lse.iter().map(|v| v.to_bits()));
    }
    bits
}

/// A FaultSpec degrading two random survivors (straggler + slow link),
/// exercising the fault-aware water-fill without changing numerics.
fn survivor_faults(rng: &mut SmallRng, failed: u32) -> FaultSpec {
    let mut pick = || loop {
        let d = rng.gen_range(0..DEVICES);
        if d != failed {
            return d;
        }
    };
    let straggler = pick();
    let (src, dst) = (pick(), pick());
    let mut faults = vec![Fault::Straggler {
        device: straggler,
        slowdown: 2.5,
    }];
    if src != dst {
        faults.push(Fault::DegradedLink {
            src,
            dst,
            factor: 0.4,
        });
    }
    FaultSpec { seed: 1, faults }
}

#[derive(Default)]
struct Tally {
    runs: u64,
    redone_fracs: Vec<f64>,
    patch_walls: Vec<f64>,
    salvage_bytes: u64,
    bitwise_failures: u64,
    verifier_rejections: u64,
    errors: Vec<String>,
}

impl Tally {
    fn record_err(&mut self, what: &str, e: &DcpError) {
        if matches!(e, DcpError::InvalidPlan(_)) {
            self.verifier_rejections += 1;
        }
        self.errors.push(format!("{what}: {e}"));
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "runs": self.runs,
            "redone_frac_median": median(&self.redone_fracs),
            "patch_plan_wall_s_median": median(&self.patch_walls),
            "salvage_bytes_total": self.salvage_bytes,
            "bitwise_failures": self.bitwise_failures,
            "verifier_rejections": self.verifier_rejections,
            "errors": self.errors,
        })
    }
}

fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// One forward-phase campaign run. `depth2` selects a second kill;
/// `mid_patch` places the second kill frontier inside the spliced shard
/// (cascade) instead of inside the victim's own stream (concurrent).
fn run_forward(seed: u64, depth2: bool, mid_patch: bool, fault_aware: bool, tally: &mut Tally) {
    let out = plan_batch(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let d = out.plan.num_devices;
    // First victim: any device with at least one division.
    let mut dev1 = rng.gen_range(0..d);
    for _ in 0..d {
        if fwd_divs(&out.plan.fwd.devices[dev1 as usize].instrs) >= 2 {
            break;
        }
        dev1 = (dev1 + 1) % d;
    }
    let nd1 = fwd_divs(&out.plan.fwd.devices[dev1 as usize].instrs);
    let k1 = rng.gen_range(0..=nd1);
    let mut rp = RecoveryPlanner::new(RecoveryConfig::default());
    if fault_aware {
        rp = rp.with_fault_spec(survivor_faults(&mut rng, dev1));
    }
    let t0 = Instant::now();
    let patch1 = match rp.plan_recovery(
        &out,
        &FailureEvent {
            device: dev1,
            divisions_done: k1,
        },
    ) {
        Ok(p) => p,
        Err(e) => return tally.record_err(&format!("seed{seed} patch1"), &e),
    };
    let wall1 = t0.elapsed().as_secs_f64();
    tally.runs += 1;
    tally.patch_walls.push(wall1);
    tally.salvage_bytes += patch1.stats.salvage_bytes;

    let (patch, lost, redone) = if depth2 {
        // Second victim: the shard-hosting survivor with the most spliced
        // attention work.
        let divs = |x: u32| fwd_divs(&patch1.fwd.devices[x as usize].instrs);
        let (j2, _) = patch1
            .shard_hosts
            .iter()
            .enumerate()
            .map(|(j, _)| (j, divs(d + j as u32)))
            .max_by_key(|&(j, n)| (n, std::cmp::Reverse(j)))
            .expect("survivors exist");
        let dev2 = patch1.shard_hosts[j2];
        let own2 = divs(dev2);
        let shard2 = divs(d + j2 as u32);
        let k2 = if mid_patch && shard2 > 0 {
            own2 + rng.gen_range(1..=shard2)
        } else {
            rng.gen_range(0..=own2)
        };
        let t1 = Instant::now();
        let patch2 = match rp.plan_recovery_onto(
            &out,
            &patch1,
            &FailureEvent {
                device: dev2,
                divisions_done: k2,
            },
        ) {
            Ok(p) => p,
            Err(e) => return tally.record_err(&format!("seed{seed} patch2"), &e),
        };
        tally.patch_walls.push(t1.elapsed().as_secs_f64());
        tally.salvage_bytes += patch2.stats.salvage_bytes;
        let lost = patch1.stats.failed_flops + patch2.stats.failed_flops;
        let redone = patch1.stats.redone_flops + patch2.stats.redone_flops;
        (patch2, lost, redone)
    } else {
        let (l, r) = (patch1.stats.failed_flops, patch1.stats.redone_flops);
        (patch1, l, r)
    };
    if lost > 0 {
        tally.redone_fracs.push(redone as f64 / lost as f64);
    }

    let data = BatchData::random(&out.layout, seed);
    let clean = execute_forward(&out.layout, &out.placement, &out.plan, &data)
        .expect("clean forward executes");
    match execute_forward_recovery(
        &out.layout,
        &patch.placement,
        &patch.fwd,
        &data,
        &fwd_salvage_ctx(&patch),
        &ExecObs::disabled(),
    ) {
        Ok(rec) => {
            if bits_of(&clean) != bits_of(&rec) {
                tally.bitwise_failures += 1;
                tally
                    .errors
                    .push(format!("seed{seed}: forward output diverged bitwise"));
            }
        }
        Err(e) => tally.record_err(&format!("seed{seed} recovery exec"), &e),
    }
}

/// One backward-phase campaign run: reduction-frontier salvage.
fn run_backward(seed: u64, tally: &mut Tally) {
    let out = plan_batch(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBAD);
    let d = out.plan.num_devices;
    let mut dev = rng.gen_range(0..d);
    for _ in 0..d {
        if bwd_divs(&out.plan.bwd.devices[dev as usize].instrs) >= 2 {
            break;
        }
        dev = (dev + 1) % d;
    }
    let nd = bwd_divs(&out.plan.bwd.devices[dev as usize].instrs);
    let k = rng.gen_range(1..=nd.max(1));
    let rp = RecoveryPlanner::new(RecoveryConfig::default());
    let t0 = Instant::now();
    let patch = match rp.plan_backward_recovery(
        &out,
        &FailureEvent {
            device: dev,
            divisions_done: k,
        },
    ) {
        Ok(p) => p,
        Err(e) => return tally.record_err(&format!("seed{seed} bwd patch"), &e),
    };
    tally.runs += 1;
    tally.patch_walls.push(t0.elapsed().as_secs_f64());
    tally.salvage_bytes += patch.stats.salvage_bytes;
    if patch.stats.failed_flops > 0 {
        tally
            .redone_fracs
            .push(patch.stats.redone_flops as f64 / patch.stats.failed_flops as f64);
    }

    let data = BatchData::random(&out.layout, seed);
    let fwd_out = execute_forward(&out.layout, &out.placement, &out.plan, &data)
        .expect("clean forward executes");
    let (qh, _) = BatchData::head_counts(&out.layout);
    let dim = out.layout.attn.head_dim as usize;
    let mut d_o = HashMap::new();
    let mut grng = SmallRng::seed_from_u64(seed ^ 0xD0);
    for (i, tb) in out.layout.token_blocks.iter().enumerate() {
        let v: Vec<f32> = (0..tb.len as usize * qh * dim)
            .map(|_| grng.gen_range(-1.0..1.0))
            .collect();
        d_o.insert(TokenBlockId(i as u32), v);
    }
    let clean = execute_backward(
        &out.layout,
        &out.placement,
        &out.plan,
        &data,
        &fwd_out,
        &d_o,
    )
    .expect("clean backward executes");
    match execute_backward_recovery(
        &out.layout,
        &patch.placement,
        &patch.bwd,
        &data,
        &fwd_out,
        &d_o,
        &bwd_salvage_ctx(&patch),
        &ExecObs::disabled(),
    ) {
        Ok(rec) => {
            let same = clean.len() == rec.len()
                && clean.iter().all(|(id, c)| {
                    let r = &rec[id];
                    c.dq.iter()
                        .map(|v| v.to_bits())
                        .eq(r.dq.iter().map(|v| v.to_bits()))
                        && c.dk
                            .iter()
                            .map(|v| v.to_bits())
                            .eq(r.dk.iter().map(|v| v.to_bits()))
                        && c.dv
                            .iter()
                            .map(|v| v.to_bits())
                            .eq(r.dv.iter().map(|v| v.to_bits()))
                });
            if !same {
                tally.bitwise_failures += 1;
                tally
                    .errors
                    .push(format!("seed{seed}: backward grads diverged bitwise"));
            }
        }
        Err(e) => tally.record_err(&format!("seed{seed} bwd recovery exec"), &e),
    }
}

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let smoke = flags.iter().any(|f| f == "--smoke");
    let path = positional
        .into_iter()
        .next()
        .unwrap_or_else(|| "BENCH_robustness.json".into());
    let seeds_per = if smoke { 2u64 } else { 5 };

    let mut single = Tally::default();
    let mut concurrent = Tally::default();
    let mut cascade = Tally::default();
    let mut backward = Tally::default();
    for i in 0..seeds_per {
        let seed = CAMPAIGN_SEED + i;
        // Half the single-kill runs plan fault-aware.
        run_forward(seed, false, false, i % 2 == 1, &mut single);
        run_forward(seed + 100, true, false, false, &mut concurrent);
        run_forward(seed + 200, true, true, i % 2 == 0, &mut cascade);
        run_backward(seed + 300, &mut backward);
    }

    let tallies = [
        ("single", &single),
        ("concurrent", &concurrent),
        ("cascade", &cascade),
        ("backward", &backward),
    ];
    let bitwise_failures: u64 = tallies.iter().map(|(_, t)| t.bitwise_failures).sum();
    let verifier_rejections: u64 = tallies.iter().map(|(_, t)| t.verifier_rejections).sum();
    let runs_total: u64 = tallies.iter().map(|(_, t)| t.runs).sum();
    let all_redone: Vec<f64> = tallies
        .iter()
        .flat_map(|(_, t)| t.redone_fracs.iter().copied())
        .collect();
    let campaign = json!({
        "seed": CAMPAIGN_SEED,
        "smoke": smoke,
        "runs_total": runs_total,
        "bitwise_failures": bitwise_failures,
        "verifier_rejections": verifier_rejections,
        "redone_frac_median": median(&all_redone),
        "redone_frac_max": all_redone.iter().cloned().fold(0.0f64, f64::max),
        "cascade_patch_wall_s_median": median(&cascade.patch_walls),
        "scenarios": tallies
            .iter()
            .map(|(name, t)| (name.to_string(), t.to_json()))
            .collect::<serde_json::Map>(),
    });

    // Merge into the robustness report, preserving perf_report's sections.
    let prior: serde_json::Value = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or_else(|| json!({}));
    let mut map = match prior {
        serde_json::Value::Object(m) => m,
        _ => serde_json::Map::new(),
    };
    map.insert("schema_version".into(), json!(BENCH_SCHEMA_VERSION));
    map.insert("fault_campaign".into(), campaign);
    let doc = serde_json::Value::Object(map);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));

    println!(
        "fault_campaign: {runs_total} runs ({} per scenario family), \
         {bitwise_failures} bitwise failure(s), {verifier_rejections} verifier rejection(s)",
        seeds_per
    );
    for (name, t) in &tallies {
        println!(
            "  {name:<10} runs={} redone_frac_median={:.3} patch_wall_median={:.2}ms \
             salvage_bytes={}",
            t.runs,
            median(&t.redone_fracs),
            median(&t.patch_walls) * 1e3,
            t.salvage_bytes
        );
        for e in &t.errors {
            eprintln!("  {name}: ERROR {e}");
        }
    }
    println!("[merged fault_campaign into {path}]");

    if bitwise_failures > 0 || verifier_rejections > 0 {
        eprintln!("fault_campaign: FAIL");
        exit(1);
    }
    let errs: usize = tallies.iter().map(|(_, t)| t.errors.len()).sum();
    if errs > 0 {
        eprintln!("fault_campaign: FAIL ({errs} run error(s))");
        exit(1);
    }
}
