//! Figure 2: sequence-length distributions of the (synthetic) LongAlign and
//! LongDataCollections datasets, capped at 131072 tokens.

use dcp_bench::{seed, write_results, Table};
use dcp_data::{log_histogram, sample_lengths, DatasetKind};

fn main() {
    const N: usize = 20_000;
    const CAP: u32 = 131_072;
    const BINS: usize = 14;

    let la = sample_lengths(DatasetKind::LongAlign, N, 1.0, CAP, seed());
    let ldc = sample_lengths(DatasetKind::LongDataCollections, N, 1.0, CAP, seed());
    let (edges, la_counts) = log_histogram(&la, BINS, CAP);
    let (_, ldc_counts) = log_histogram(&ldc, BINS, CAP);

    let mut table = Table::new(&["len_upto", "LongAlign_frac", "LDC_frac", "LongAlign", "LDC"]);
    for i in 0..BINS {
        table.row(vec![
            edges[i].to_string(),
            format!("{:.4}", la_counts[i] as f64 / N as f64),
            format!("{:.4}", ldc_counts[i] as f64 / N as f64),
            "#".repeat(la_counts[i] * 60 / N),
            "#".repeat(ldc_counts[i] * 60 / N),
        ]);
    }
    println!("Fig. 2 — sequence length distributions (fraction per log bin, {N} samples)");
    table.print();

    let stats = |v: &[u32]| {
        let mut s = v.to_vec();
        s.sort_unstable();
        let mean = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        (mean, s[s.len() / 2], s[s.len() * 99 / 100])
    };
    let (m1, med1, p99_1) = stats(&la);
    let (m2, med2, p99_2) = stats(&ldc);
    println!("\nLongAlign: mean {m1:.0}, median {med1}, p99 {p99_1}");
    println!("LongDataCollections: mean {m2:.0}, median {med2}, p99 {p99_2}");
    write_results("fig02_seqlen_dist", &table.to_json());
}
