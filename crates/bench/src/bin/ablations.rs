//! Quality ablations of DCP's design choices (DESIGN.md Sec. 5): the effect
//! of hierarchical placement, FM refinement, and the number of divisions on
//! communication volume and simulated attention time.

use dcp_bench::{
    make_batches, mean, micro_attn, micro_cluster, num_batches, run_dcp, write_results, Table,
};
use dcp_core::PlannerConfig;
use dcp_data::{DatasetKind, MaskSetting};
use dcp_types::DeviceId;

fn main() {
    let cluster = micro_cluster();
    let attn = micro_attn();
    let n = num_batches();
    const BUDGET: u64 = 131_072;
    let batches = make_batches(
        DatasetKind::LongDataCollections,
        1.0,
        BUDGET as u32,
        BUDGET,
        MaskSetting::Causal,
        n,
    );

    let mut table = Table::new(&[
        "variant",
        "total_comm_MiB",
        "inter_node_MiB",
        "sim_ms",
        "plan_ms",
    ]);
    let variants: Vec<(&str, PlannerConfig)> = vec![
        (
            "default (hier, FM, T=4)",
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        ),
        (
            "flat placement",
            PlannerConfig {
                block_size: 1024,
                hierarchical: false,
                ..Default::default()
            },
        ),
        (
            "no FM refinement",
            PlannerConfig {
                block_size: 1024,
                refine: false,
                ..Default::default()
            },
        ),
        (
            "T=1 (no overlap)",
            PlannerConfig {
                block_size: 1024,
                divisions: 1,
                ..Default::default()
            },
        ),
        (
            "T=2",
            PlannerConfig {
                block_size: 1024,
                divisions: 2,
                ..Default::default()
            },
        ),
        (
            "T=8",
            PlannerConfig {
                block_size: 1024,
                divisions: 8,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let mut comm = Vec::new();
        let mut inter = Vec::new();
        let mut sim_t = Vec::new();
        let mut plan_t = Vec::new();
        for batch in &batches {
            let (sim, out) = run_dcp(&cluster, attn, &cfg, batch).expect("dcp");
            comm.push(out.plan.total_comm_bytes() as f64);
            let i = out.plan.fwd.comm_bytes_where(|a, b| {
                cluster.node_of(DeviceId(a)) != cluster.node_of(DeviceId(b))
            }) + out.plan.bwd.comm_bytes_where(|a, b| {
                cluster.node_of(DeviceId(a)) != cluster.node_of(DeviceId(b))
            });
            inter.push(i as f64);
            sim_t.push(sim.total() * 1e3);
            plan_t.push(out.times.total() * 1e3);
        }
        let mib = (1u64 << 20) as f64;
        table.row(vec![
            name.to_string(),
            format!("{:.1}", mean(&comm) / mib),
            format!("{:.1}", mean(&inter) / mib),
            format!("{:.2}", mean(&sim_t)),
            format!("{:.1}", mean(&plan_t)),
        ]);
    }
    println!("DCP design ablations (LongDataCollections, 32 GPUs, {n} batches)");
    table.print();
    write_results("ablations", &table.to_json());
}
