//! Plan-latency regression gate for CI.
//!
//! Compares the freshly generated `BENCH_plan.json` (written by
//! `perf_report`) against the committed baseline
//! `results/BENCH_plan_baseline.json` and fails (exit 1) when:
//!
//! 1. either document's `schema_version` is missing or differs from
//!    [`dcp_bench::BENCH_SCHEMA_VERSION`] (schema drift must fail loudly,
//!    never silently compare mismatched shapes),
//! 2. the median cold `plan_wall_s` regressed by more than the allowed
//!    factor (default 1.25, i.e. >25%; override with
//!    `DCP_PLAN_GATE_FACTOR`),
//! 3. the serial-vs-parallel partitioner equivalence check did not pass, or
//! 4. the warm (cache-hit) median is not well below the cold median
//!    (< 5% — a cache hit must cost a lookup, not a re-plan).
//!
//! It also gates incremental re-planning (the `planner_incremental`
//! section): the identical-batch warm re-plan median must stay at or under
//! an absolute budget (default 1ms, `DCP_INC_GATE_MS`), every warm re-plan
//! must have reproduced the cold plan bitwise (structurally and under the
//! `dcp-exec` oracle) and passed the stream verifier, and the drift-path
//! median / near-hit rate must not regress against the baseline's section
//! when present.
//!
//! It also gates the pass pipeline (the `passes` section `perf_report` now
//! emits): the gate fails when optimized total comm bytes or the optimized
//! simulated makespan regress by more than 10% (`DCP_PASS_GATE_FACTOR`,
//! default 1.10) against the baseline's `passes` section, or when any pass
//! broke bitwise output equivalence (`output_bitwise_identical` false,
//! report-level or in any run). The passes leg is skipped (with a notice)
//! only when the committed baseline predates the section.
//!
//! It also gates elastic recovery: `BENCH_robustness.json` (written by the
//! same `perf_report` run) is compared against the committed
//! `results/BENCH_robustness_baseline.json` with the same schema check, and
//! the gate fails when the median patch-plan latency
//! (`elastic_recovery.patch_plan_wall_s_median`) regressed by more than the
//! allowed factor. The robustness leg is skipped (with a notice) only when
//! the committed baseline does not exist.
//!
//! It also gates cluster scaling (`BENCH_scaling.json`, written by
//! `scaling_report`) against `results/BENCH_scaling_baseline.json`:
//!
//! - the 256-device flat-topology cold-plan median must stay within
//!   `DCP_SCALE_GATE_FACTOR` (default 1.5) of the committed baseline,
//! - every 1024-device cold-plan median must stay under the absolute
//!   `DCP_SCALE_GATE_S` budget (default 2 seconds),
//! - the incremental network engine must beat the scratch water-fill
//!   reference by at least `DCP_SIM_GATE_FACTOR` (default 5x) on the
//!   sweep's largest plan, agreeing with it to fp tolerance.
//!
//! The scaling leg is skipped (with a notice) when `BENCH_scaling.json` is
//! absent — the CI jobs that don't run `scaling_report` — and runs *alone*
//! under `plan_gate --scaling` (the dedicated CI scaling job).
//!
//! It also gates trace analytics (`BENCH_trace.json`, written by
//! `trace_analyze`): the critical-path attribution components must sum to
//! the simulated makespan within `DCP_TRACE_GATE_TOL` (default 1e-6,
//! relative), the online detectors must report zero incidents on the clean
//! runs and flag the injected straggler on the faulted ones, the
//! differential attribution must blame the straggler device on a majority
//! of runs with the prime suspect carrying at least half of every makespan
//! delta, and the forced postmortem bundle must have validated. The trace
//! leg is skipped (with a notice) when `BENCH_trace.json` is absent.
//!
//! Usage: `plan_gate [--scaling] [report.json] [baseline.json]
//! [robustness.json] [robustness_baseline.json]`.

use std::process::exit;

use dcp_bench::check_schema;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Gates `BENCH_scaling.json` against the committed scaling baseline,
/// appending failures. Exits immediately on unreadable/drifted documents.
fn scaling_leg(report_path: &str, baseline_path: &str, failures: &mut Vec<String>) {
    let report = load(report_path);
    let baseline = load(baseline_path);
    for (doc, path) in [(&report, report_path), (&baseline, baseline_path)] {
        if let Err(e) = check_schema(doc, path) {
            eprintln!("plan_gate: FAIL: {e}");
            exit(1);
        }
    }
    println!("plan_gate: schema_version OK on scaling report and baseline");
    let factor = env_f64("DCP_SCALE_GATE_FACTOR", 1.5);
    let abs_s = env_f64("DCP_SCALE_GATE_S", 2.0);
    let sim_factor = env_f64("DCP_SIM_GATE_FACTOR", 5.0);

    let flat_median = |doc: &serde_json::Value, devices: u64| -> Option<f64> {
        doc["sweep"].as_array()?.iter().find_map(|r| {
            if r["devices"].as_u64() == Some(devices) && r["topology"].as_str() == Some("flat") {
                r["plan_wall_s_median"].as_f64()
            } else {
                None
            }
        })
    };
    match (flat_median(&report, 256), flat_median(&baseline, 256)) {
        (Some(cur), Some(base)) => {
            let limit = base * factor;
            println!(
                "plan_gate: 256-device cold plan median {:.1}ms vs baseline {:.1}ms \
                 (limit {:.1}ms = {factor:.2}x)",
                cur * 1e3,
                base * 1e3,
                limit * 1e3
            );
            if cur > limit {
                failures.push(format!(
                    "256-device cold plan median regressed: {:.1}ms > {:.1}ms \
                     ({factor:.2}x baseline)",
                    cur * 1e3,
                    limit * 1e3
                ));
            }
        }
        (None, _) => failures.push(format!(
            "{report_path} has no 256-device flat-topology sweep row"
        )),
        (_, None) => failures.push(format!(
            "{baseline_path} has no 256-device flat-topology sweep row"
        )),
    }

    let mut saw_1024 = false;
    for row in report["sweep"].as_array().into_iter().flatten() {
        if row["devices"].as_u64() != Some(1024) {
            continue;
        }
        saw_1024 = true;
        let topo = row["topology"].as_str().unwrap_or("?");
        match row["plan_wall_s_median"].as_f64() {
            Some(cur) => {
                println!(
                    "plan_gate: 1024-device/{topo} cold plan median {:.2}s (budget {abs_s:.2}s)",
                    cur
                );
                if cur > abs_s {
                    failures.push(format!(
                        "1024-device/{topo} cold plan median {cur:.2}s exceeds the \
                         {abs_s:.2}s budget"
                    ));
                }
            }
            None => failures.push(format!(
                "{report_path} 1024-device/{topo} row lacks plan_wall_s_median"
            )),
        }
    }
    if !saw_1024 {
        failures.push(format!("{report_path} has no 1024-device sweep rows"));
    }

    let engine = &report["sim_engine"];
    match engine["speedup"].as_f64() {
        Some(sp) => {
            println!(
                "plan_gate: incremental engine speedup {sp:.1}x over scratch \
                 (floor {sim_factor:.1}x)"
            );
            if sp < sim_factor {
                failures.push(format!(
                    "incremental engine speedup {sp:.1}x is below the {sim_factor:.1}x floor"
                ));
            }
        }
        None => failures.push(format!("{report_path} sim_engine lacks speedup")),
    }
    match engine["makespan_rel_err"].as_f64() {
        Some(err) if err < 1e-9 => {
            println!("plan_gate: engine A/B makespan rel err {err:.2e} (< 1e-9)");
        }
        Some(err) => failures.push(format!(
            "incremental and scratch engines disagree: makespan rel err {err:.2e} >= 1e-9"
        )),
        None => failures.push(format!("{report_path} sim_engine lacks makespan_rel_err")),
    }
}

/// Gates `BENCH_trace.json` (written by `trace_analyze`): conservation of
/// the critical-path attribution, detector precision on the pinned fault
/// scenario, differential blame quality, and postmortem validity. Exits
/// immediately on unreadable/drifted documents.
fn trace_leg(report_path: &str, failures: &mut Vec<String>) {
    let report = load(report_path);
    if let Err(e) = check_schema(&report, report_path) {
        eprintln!("plan_gate: FAIL: {e}");
        exit(1);
    }
    println!("plan_gate: schema_version OK on trace report");
    let tol = env_f64("DCP_TRACE_GATE_TOL", 1e-6);

    match (
        report["attribution"]["sums_to_makespan"].as_bool(),
        report["attribution"]["max_residual_rel"].as_f64(),
    ) {
        (Some(ok), Some(rel)) => {
            println!(
                "plan_gate: attribution conservation — max relative residual {rel:.2e} \
                 (tolerance {tol:.0e})"
            );
            if !ok || rel > tol {
                failures.push(format!(
                    "attribution components do not sum to the simulated makespan: \
                     max relative residual {rel:.2e} > {tol:.0e}"
                ));
            }
        }
        _ => failures.push(format!(
            "{report_path} lacks attribution conservation fields"
        )),
    }

    match report["detection"]["clean_incidents"].as_u64() {
        Some(0) => println!("plan_gate: detectors silent on clean runs"),
        Some(n) => failures.push(format!("{n} false-positive incident(s) on the clean runs")),
        None => failures.push(format!("{report_path} lacks detection.clean_incidents")),
    }
    match report["detection"]["straggler_flagged"].as_bool() {
        Some(true) => println!("plan_gate: injected straggler flagged"),
        _ => failures.push("injected straggler was not flagged".into()),
    }

    let diff = &report["differential"];
    match (
        diff["runs_total"].as_u64(),
        diff["prime_suspect_hits"].as_u64(),
    ) {
        (Some(total), Some(hits)) if total > 0 => {
            println!("plan_gate: differential prime suspect hit {hits}/{total} runs");
            if hits * 2 < total {
                failures.push(format!(
                    "differential attribution blamed the straggler on only {hits}/{total} runs"
                ));
            }
        }
        _ => failures.push(format!("{report_path} lacks differential run counts")),
    }
    match diff["suspect_share_min"].as_f64() {
        Some(share) => {
            println!("plan_gate: minimum prime-suspect delta share {share:.2} (floor 0.50)");
            if share < 0.5 {
                failures.push(format!(
                    "prime suspect carries only {share:.2} of a makespan delta (< 0.50)"
                ));
            }
        }
        None => failures.push(format!(
            "{report_path} lacks differential.suspect_share_min"
        )),
    }

    match report["flight_recorder"]["valid"].as_bool() {
        Some(true) => println!("plan_gate: postmortem bundle(s) validated"),
        _ => failures.push("flight-recorder postmortem bundles missing or invalid".into()),
    }
}

fn median_plan_wall(report: &serde_json::Value) -> Option<f64> {
    // Prefer the precomputed median; recompute from the rows otherwise
    // (keeps the gate usable against older reports).
    if let Some(m) = report["planner"]["plan_wall_s_cold_median"].as_f64() {
        return Some(m);
    }
    let mut walls: Vec<f64> = report["runs"]
        .as_array()?
        .iter()
        .filter_map(|r| r["plan_wall_s"].as_f64())
        .collect();
    if walls.is_empty() {
        return None;
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = walls.len() / 2;
    Some(if walls.len() % 2 == 1 {
        walls[mid]
    } else {
        (walls[mid - 1] + walls[mid]) / 2.0
    })
}

fn load(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("plan_gate: cannot read {path}: {e}");
        exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("plan_gate: {path} is not valid JSON: {e}");
        exit(1);
    })
}

/// `--recovery` leg: the seeded fault-campaign sweep vs the committed
/// robustness baseline. Loads both documents (a missing report is a
/// failure, never a skip) and delegates to [`recovery_checks`].
fn recovery_leg(report_path: &str, baseline_path: &str, failures: &mut Vec<String>) {
    let rob = load(report_path);
    let rob_base = load(baseline_path);
    for (doc, path) in [(&rob, report_path), (&rob_base, baseline_path)] {
        if let Err(e) = check_schema(doc, path) {
            eprintln!("plan_gate: FAIL: {e}");
            exit(1);
        }
    }
    recovery_checks(&rob, &rob_base, report_path, failures);
}

/// Gate the fault-campaign section: absolute invariants first (zero
/// verifier rejections, zero bitwise failures, cascade redone-flops
/// fraction under 0.75), then depth-2 patch latency and redone-fraction
/// medians against the committed baseline.
fn recovery_checks(
    rob: &serde_json::Value,
    rob_base: &serde_json::Value,
    report_path: &str,
    failures: &mut Vec<String>,
) {
    let factor: f64 = std::env::var("DCP_PLAN_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25);
    let fc = &rob["fault_campaign"];
    if fc.is_null() {
        failures.push(format!("{report_path} has no fault_campaign section"));
        return;
    }
    for key in ["verifier_rejections", "bitwise_failures"] {
        match fc[key].as_u64() {
            Some(0) => println!("plan_gate: fault_campaign {key} = 0"),
            Some(n) => failures.push(format!("fault_campaign {key} = {n} (must be 0)")),
            None => failures.push(format!("{report_path} fault_campaign lacks {key}")),
        }
    }
    const CASCADE_REDONE_CAP: f64 = 0.75;
    match fc["scenarios"]["cascade"]["redone_frac_median"].as_f64() {
        Some(v) if v < CASCADE_REDONE_CAP => println!(
            "plan_gate: cascade redone_frac_median {v:.3} < {CASCADE_REDONE_CAP} (absolute cap)"
        ),
        Some(v) => failures.push(format!(
            "cascade redone_frac_median {v:.3} >= {CASCADE_REDONE_CAP} (absolute cap)"
        )),
        None => failures.push(format!(
            "{report_path} fault_campaign lacks scenarios.cascade.redone_frac_median"
        )),
    }
    let base_fc = &rob_base["fault_campaign"];
    if base_fc.is_null() {
        println!("plan_gate: baseline has no fault_campaign section (relative checks skipped)");
        return;
    }
    // Sub-millisecond wall-clock medians are dominated by machine noise, so
    // the latency limit is the relative factor or an absolute grace budget
    // (`DCP_RECOVERY_GATE_MS`, default 5ms), whichever is larger. The redone
    // fraction is seed-deterministic and gets no grace.
    let grace_s = env_f64("DCP_RECOVERY_GATE_MS", 5.0) / 1e3;
    for (key, what, floor) in [
        (
            "cascade_patch_wall_s_median",
            "cascade depth-2 patch latency",
            grace_s,
        ),
        ("redone_frac_median", "campaign redone-flops fraction", 0.0),
    ] {
        match (fc[key].as_f64(), base_fc[key].as_f64()) {
            (Some(cur), Some(base)) => {
                let limit = (base * factor).max(floor);
                println!(
                    "plan_gate: {what} {cur:.4} vs baseline {base:.4} \
                     (limit {limit:.4}, {factor:.2}x)"
                );
                if cur > limit {
                    failures.push(format!(
                        "{what} regressed: {cur:.4} > {limit:.4} ({factor:.2}x baseline)"
                    ));
                }
            }
            (None, Some(_)) => {
                failures.push(format!("{report_path} fault_campaign lacks {key}"));
            }
            (_, None) => println!("plan_gate: baseline fault_campaign lacks {key} (skipped)"),
        }
    }
}

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let scaling_report_path = "BENCH_scaling.json";
    let scaling_baseline_path = "results/BENCH_scaling_baseline.json";
    if flags.iter().any(|f| f == "--scaling") {
        // Dedicated scaling-job mode: only the scaling leg, and a missing
        // report is a failure, never a skip.
        let mut failures = Vec::new();
        scaling_leg(scaling_report_path, scaling_baseline_path, &mut failures);
        if failures.is_empty() {
            println!("plan_gate: OK");
            return;
        }
        for f in &failures {
            eprintln!("plan_gate: FAIL: {f}");
        }
        exit(1);
    }
    if flags.iter().any(|f| f == "--recovery") {
        // Dedicated recovery-job mode: only the fault-campaign leg, and a
        // missing report is a failure, never a skip.
        let mut failures = Vec::new();
        recovery_leg(
            "BENCH_robustness.json",
            "results/BENCH_robustness_baseline.json",
            &mut failures,
        );
        if failures.is_empty() {
            println!("plan_gate: OK");
            return;
        }
        for f in &failures {
            eprintln!("plan_gate: FAIL: {f}");
        }
        exit(1);
    }
    let mut args = positional.into_iter();
    let report_path = args.next().unwrap_or_else(|| "BENCH_plan.json".into());
    let baseline_path = args
        .next()
        .unwrap_or_else(|| "results/BENCH_plan_baseline.json".into());
    let rob_report_path = args
        .next()
        .unwrap_or_else(|| "BENCH_robustness.json".into());
    let rob_baseline_path = args
        .next()
        .unwrap_or_else(|| "results/BENCH_robustness_baseline.json".into());
    let factor: f64 = std::env::var("DCP_PLAN_GATE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25);

    let report = load(&report_path);
    let baseline = load(&baseline_path);

    for (doc, path) in [(&report, &report_path), (&baseline, &baseline_path)] {
        if let Err(e) = check_schema(doc, path) {
            eprintln!("plan_gate: FAIL: {e}");
            exit(1);
        }
    }
    println!("plan_gate: schema_version OK on report and baseline");

    let current = median_plan_wall(&report).unwrap_or_else(|| {
        eprintln!("plan_gate: no plan_wall_s rows in {report_path}");
        exit(1);
    });
    let base = median_plan_wall(&baseline).unwrap_or_else(|| {
        eprintln!("plan_gate: no plan_wall_s rows in {baseline_path}");
        exit(1);
    });

    let mut failures = Vec::new();
    let limit = base * factor;
    println!(
        "plan_gate: median plan_wall_s {:.2}ms vs baseline {:.2}ms (limit {:.2}ms = {factor:.2}x)",
        current * 1e3,
        base * 1e3,
        limit * 1e3
    );
    if current > limit {
        failures.push(format!(
            "median plan_wall_s regressed: {:.2}ms > {:.2}ms ({factor:.2}x baseline)",
            current * 1e3,
            limit * 1e3
        ));
    }

    match report["planner"]["serial_parallel_identical"].as_bool() {
        Some(true) => println!("plan_gate: serial/parallel partitioner outputs identical"),
        Some(false) => {
            failures.push("serial and parallel partitioner outputs differ".into());
        }
        // Absent on pre-planner-section reports: nothing to check.
        None => println!("plan_gate: no serial/parallel check in report (skipped)"),
    }

    if let (Some(cold), Some(warm)) = (
        report["planner"]["plan_wall_s_cold_median"].as_f64(),
        report["planner"]["plan_wall_s_warm_median"].as_f64(),
    ) {
        let ratio = if cold > 0.0 { warm / cold } else { 0.0 };
        println!(
            "plan_gate: warm/cold median ratio {ratio:.4} ({:.3}ms / {:.2}ms)",
            warm * 1e3,
            cold * 1e3
        );
        if ratio >= 0.05 {
            failures.push(format!(
                "warm (cached) plan median is {:.1}% of cold — a hit must be <5%",
                ratio * 100.0
            ));
        }
    }

    // Incremental re-planning: the near-hit warm path carries an *absolute*
    // latency budget (default 1ms; override with `DCP_INC_GATE_MS`) — the
    // whole point of warm-starting is a sub-millisecond re-plan, so a
    // relative bound against the baseline would let it rot. Bitwise/oracle
    // equivalence and verifier passage are unconditional booleans on the
    // fresh report; the drift-path median and near-hit rate compare against
    // the baseline's section when it has one (skipped with a notice until a
    // baseline with the section is committed).
    let inc = &report["planner_incremental"];
    if inc.as_object().is_some() {
        let budget_ms: f64 = std::env::var("DCP_INC_GATE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        match inc["plan_wall_s_incremental_median"].as_f64() {
            Some(cur) => {
                println!(
                    "plan_gate: incremental re-plan median {:.3}ms (budget {budget_ms:.2}ms)",
                    cur * 1e3
                );
                if cur * 1e3 > budget_ms {
                    failures.push(format!(
                        "incremental re-plan median {:.3}ms exceeds the {budget_ms:.2}ms budget",
                        cur * 1e3
                    ));
                }
            }
            None => failures.push(format!(
                "{report_path} planner_incremental lacks plan_wall_s_incremental_median"
            )),
        }
        for (key, what) in [
            ("bitwise_identical", "reproduce the cold plan bitwise"),
            (
                "oracle_equivalent",
                "match the cold plan under the exec oracle",
            ),
            ("verified", "pass the stream verifier"),
        ] {
            match inc[key].as_bool() {
                Some(true) => {}
                _ => failures.push(format!("incremental re-plans failed to {what}")),
            }
        }
        let base_inc = &baseline["planner_incremental"];
        if base_inc.as_object().is_some() {
            match (
                inc["plan_wall_s_drift_median"].as_f64(),
                base_inc["plan_wall_s_drift_median"].as_f64(),
            ) {
                (Some(cur), Some(base)) => {
                    let limit = base * factor;
                    println!(
                        "plan_gate: drift re-plan median {:.3}ms vs baseline {:.3}ms \
                         (limit {:.3}ms = {factor:.2}x)",
                        cur * 1e3,
                        base * 1e3,
                        limit * 1e3
                    );
                    if cur > limit {
                        failures.push(format!(
                            "drift re-plan median regressed: {:.3}ms > {:.3}ms \
                             ({factor:.2}x baseline)",
                            cur * 1e3,
                            limit * 1e3
                        ));
                    }
                }
                (None, Some(_)) => failures.push(format!(
                    "{report_path} planner_incremental lacks plan_wall_s_drift_median"
                )),
                (_, None) => {
                    println!("plan_gate: baseline lacks plan_wall_s_drift_median (skipped)")
                }
            }
            match (
                inc["near_hit_rate"].as_f64(),
                base_inc["near_hit_rate"].as_f64(),
            ) {
                (Some(cur), Some(base)) => {
                    println!("plan_gate: near-hit rate {cur:.2} vs baseline {base:.2}");
                    // The workload and planner are deterministic, so the
                    // rate must not drop below the committed baseline.
                    if cur + 1e-9 < base {
                        failures.push(format!(
                            "near-hit rate dropped: {cur:.2} < baseline {base:.2}"
                        ));
                    }
                }
                (None, Some(_)) => failures.push(format!(
                    "{report_path} planner_incremental lacks near_hit_rate"
                )),
                (_, None) => println!("plan_gate: baseline lacks near_hit_rate (skipped)"),
            }
        } else {
            println!(
                "plan_gate: no planner_incremental section in baseline \
                 (drift/near-hit legs skipped)"
            );
        }
    } else if baseline["planner_incremental"].as_object().is_some() {
        failures.push(format!(
            "{report_path} has no planner_incremental section but the baseline does"
        ));
    } else {
        println!("plan_gate: no planner_incremental section in report (skipped)");
    }

    // Pass pipeline: optimized comm bytes, optimized simulated makespan and
    // bitwise equivalence. Bitwise equivalence is unconditional on the fresh
    // report; the byte/makespan comparisons need a baseline with a passes
    // section (skipped with a notice until one is committed).
    let passes = &report["passes"];
    if passes.as_object().is_some() {
        let pass_factor: f64 = std::env::var("DCP_PASS_GATE_FACTOR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.10);
        match passes["output_bitwise_identical"].as_bool() {
            Some(true) => println!("plan_gate: pass pipeline preserved outputs bitwise"),
            _ => failures.push("pass pipeline broke bitwise output equivalence".into()),
        }
        if let Some(runs) = passes["runs"].as_array() {
            for run in runs {
                if run["bitwise_identical"].as_bool() != Some(true) {
                    failures.push(format!(
                        "pass run {}/batch{} broke bitwise output equivalence",
                        run["mask"].as_str().unwrap_or("?"),
                        run["batch"].as_u64().unwrap_or(0)
                    ));
                }
            }
        }
        let base_passes = &baseline["passes"];
        if base_passes.as_object().is_some() {
            for (what, key, scale, unit) in [
                ("optimized comm bytes", "comm_bytes_after_total", 1e-6, "MB"),
                (
                    "optimized simulated makespan",
                    "simulated_makespan_after_s",
                    1e3,
                    "ms",
                ),
            ] {
                match (passes[key].as_f64(), base_passes[key].as_f64()) {
                    (Some(cur), Some(base)) => {
                        let limit = base * pass_factor;
                        println!(
                            "plan_gate: {what} {:.3}{unit} vs baseline {:.3}{unit} \
                             (limit {:.3}{unit} = {pass_factor:.2}x)",
                            cur * scale,
                            base * scale,
                            limit * scale
                        );
                        if cur > limit {
                            failures.push(format!(
                                "{what} regressed: {:.3}{unit} > {:.3}{unit} \
                                 ({pass_factor:.2}x baseline)",
                                cur * scale,
                                limit * scale
                            ));
                        }
                    }
                    (None, Some(_)) => {
                        failures.push(format!("{report_path} passes section lacks {key}"));
                    }
                    (_, None) => {
                        println!("plan_gate: baseline passes section lacks {key} (skipped)");
                    }
                }
            }
        } else {
            println!("plan_gate: no passes section in baseline (byte/makespan legs skipped)");
        }
    } else {
        println!("plan_gate: no passes section in report (skipped)");
    }

    // Elastic recovery: patch-plan latency vs the committed baseline. Only
    // skipped when no baseline is committed; a missing or schema-drifted
    // report with a committed baseline is a failure, never a silent pass.
    if std::path::Path::new(&rob_baseline_path).exists() {
        let rob = load(&rob_report_path);
        let rob_base = load(&rob_baseline_path);
        for (doc, path) in [(&rob, &rob_report_path), (&rob_base, &rob_baseline_path)] {
            if let Err(e) = check_schema(doc, path) {
                eprintln!("plan_gate: FAIL: {e}");
                exit(1);
            }
        }
        println!("plan_gate: schema_version OK on robustness report and baseline");
        let cur = rob["elastic_recovery"]["patch_plan_wall_s_median"].as_f64();
        let base = rob_base["elastic_recovery"]["patch_plan_wall_s_median"].as_f64();
        match (cur, base) {
            (Some(cur), Some(base)) => {
                let limit = base * factor;
                println!(
                    "plan_gate: median patch_plan_wall_s {:.2}ms vs baseline {:.2}ms \
                     (limit {:.2}ms = {factor:.2}x)",
                    cur * 1e3,
                    base * 1e3,
                    limit * 1e3
                );
                if cur > limit {
                    failures.push(format!(
                        "median patch_plan_wall_s regressed: {:.2}ms > {:.2}ms \
                         ({factor:.2}x baseline)",
                        cur * 1e3,
                        limit * 1e3
                    ));
                }
            }
            (None, Some(_)) => {
                failures.push(format!(
                    "{rob_report_path} has no elastic_recovery.patch_plan_wall_s_median \
                     but the baseline does"
                ));
            }
            // A pre-recovery baseline: nothing to compare against.
            (_, None) => println!("plan_gate: no patch-plan latency in baseline (skipped)"),
        }
        // Fault campaign: checked whenever the committed baseline carries a
        // campaign section (the dedicated CI leg uses `--recovery`).
        if rob_base["fault_campaign"].is_null() {
            println!("plan_gate: no fault_campaign section in baseline (skipped)");
        } else {
            recovery_checks(&rob, &rob_base, &rob_report_path, &mut failures);
        }
    } else {
        println!("plan_gate: no robustness baseline at {rob_baseline_path} (skipped)");
    }

    // Cluster scaling: only checked when this invocation's pipeline ran
    // `scaling_report` (the dedicated CI job uses `--scaling` instead).
    if std::path::Path::new(scaling_report_path).exists() {
        scaling_leg(scaling_report_path, scaling_baseline_path, &mut failures);
    } else {
        println!("plan_gate: no scaling report at {scaling_report_path} (skipped)");
    }

    // Trace analytics: only checked when this invocation's pipeline ran
    // `trace_analyze` (a self-contained leg — the pinned fault scenario
    // needs no committed baseline).
    let trace_report_path = "BENCH_trace.json";
    if std::path::Path::new(trace_report_path).exists() {
        trace_leg(trace_report_path, &mut failures);
    } else {
        println!("plan_gate: no trace report at {trace_report_path} (skipped)");
    }

    if failures.is_empty() {
        println!("plan_gate: OK");
    } else {
        for f in &failures {
            eprintln!("plan_gate: FAIL: {f}");
        }
        exit(1);
    }
}
