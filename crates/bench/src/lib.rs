//! Shared infrastructure for the per-figure benchmark harnesses.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig01_comm_overhead` … `fig22_decomposition`) that regenerates the
//! figure's series from the simulated cluster and prints them as a table
//! plus machine-readable JSON under `results/`. This library holds the
//! common setup: the paper's testbed configurations, dataset batching,
//! and the DCP/baseline runners.
//!
//! Environment knobs:
//!
//! - `DCP_BENCH_BATCHES`: batches averaged per configuration (default 8;
//!   the paper averages 200 — raise it for tighter estimates).
//! - `DCP_BENCH_SEED`: dataset seed (default 7).

use std::collections::BTreeMap;
use std::path::Path;

use dcp_baselines::{Baseline, BaselineOutput};
use dcp_core::{PlanOutput, Planner, PlannerConfig};
use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
use dcp_mask::MaskSpec;
use dcp_sim::{simulate_plan, PlanSim};
use dcp_types::{AttnSpec, ClusterSpec, DcpResult};

/// Batches averaged per configuration (`DCP_BENCH_BATCHES`, default 8).
pub fn num_batches() -> usize {
    std::env::var("DCP_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Dataset seed (`DCP_BENCH_SEED`, default 7).
pub fn seed() -> u64 {
    std::env::var("DCP_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// The paper's micro-benchmark testbed: 4 p4de nodes, 32 GPUs, all used for
/// context parallelism, GQA 8Q/2KV heads, d = 128.
pub fn micro_cluster() -> ClusterSpec {
    ClusterSpec::p4de(4)
}

/// The paper's end-to-end CP topology: 8 nodes x 8 GPUs with TP = 4,
/// leaving 16 CP ranks (2 per node).
pub fn e2e_cp_cluster() -> ClusterSpec {
    dcp_core::cp_cluster(&ClusterSpec::p4de(8), 4)
}

/// Sequence-chunk granularity used for the *baselines*' layouts. Real ring
/// implementations split at token granularity; 256 tokens is fine enough
/// that their chunk balance converges (checked empirically) while keeping
/// block counts tractable. DCP's block size is a separate, swept parameter.
pub const BASELINE_BLOCK: u32 = 256;

/// The micro-benchmark attention operator.
pub fn micro_attn() -> AttnSpec {
    AttnSpec::paper_micro()
}

/// Batches for one benchmark configuration: `n` batches of up to `budget`
/// tokens drawn from `kind` at the given length `scale`, capped at
/// `max_len`, with masks from `mask`.
pub fn make_batches(
    kind: DatasetKind,
    scale: f64,
    max_len: u32,
    budget: u64,
    mask: MaskSetting,
    n: usize,
) -> Vec<Vec<(u32, MaskSpec)>> {
    // Draw generously, then keep the first n batches.
    let lengths = sample_lengths(kind, n * 64, scale, max_len, seed());
    pack_batches(&lengths, budget, |l| mask.mask_for(l))
        .into_iter()
        .take(n)
        .map(|b| b.seqs)
        .collect()
}

/// Plans and simulates one batch with DCP. Returns `(sim, plan_output)`.
///
/// # Errors
///
/// Propagates planner/simulator failures.
pub fn run_dcp(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    cfg: &PlannerConfig,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, PlanOutput)> {
    let planner = Planner::new(cluster.clone(), attn, cfg.clone());
    let out = planner.plan(batch)?;
    let sim = simulate_plan(cluster, &out.plan)?;
    Ok((sim, out))
}

/// Builds and simulates one baseline on one batch.
///
/// # Errors
///
/// Propagates builder/simulator failures.
pub fn run_baseline(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    baseline: Baseline,
    block_size: u32,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, BaselineOutput)> {
    let out = baseline.build(attn, cluster.num_devices(), block_size, batch)?;
    let sim = simulate_plan(cluster, &out.plan)?;
    Ok((sim, out))
}

/// Plans and simulates one batch with DCP, searching a small
/// hyper-parameter portfolio and keeping the best simulated time — the
/// paper's own methodology ("we search through block sizes 512, 1024, 2048,
/// 4096 and report the best performance"), extended with the paper's Fig. 20
/// epsilon trade-off: a loose (communication-bound) and a tight
/// (computation-bound) imbalance tolerance.
///
/// # Errors
///
/// Propagates planner/simulator failures.
pub fn run_dcp_best(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    base: &PlannerConfig,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, PlanOutput)> {
    let mut best: Option<(PlanSim, PlanOutput)> = None;
    for block_size in [base.block_size, base.block_size * 2] {
        for (eps_intra, eps_inter) in [(0.1, 0.4), (0.05, 0.1)] {
            let cfg = PlannerConfig {
                block_size,
                eps_intra,
                eps_inter,
                ..base.clone()
            };
            let (sim, out) = run_dcp(cluster, attn, &cfg, batch)?;
            if best.as_ref().is_none_or(|(b, _)| sim.total() < b.total()) {
                best = Some((sim, out));
            }
        }
    }
    Ok(best.expect("at least one config"))
}

/// LoongTrain with the best inner-ring size in {1, 2, 4, 8} (the paper
/// reports the best), by simulated total time.
///
/// # Errors
///
/// Propagates builder/simulator failures.
pub fn run_loongtrain_best(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    head_groups: u32,
    block_size: u32,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, BaselineOutput)> {
    use dcp_baselines::{build_ring_baseline_with_layout, build_ring_layout, RingConfig};

    if batch.iter().any(|(_, m)| !matches!(m, MaskSpec::Causal)) {
        return Err(dcp_types::DcpError::invalid_argument(
            "LoongTrain supports only the causal mask",
        ));
    }
    let mut best: Option<(PlanSim, BaselineOutput)> = None;
    let rp = cluster.num_devices() / head_groups;
    let mut cfg = RingConfig {
        devices: cluster.num_devices(),
        head_groups,
        zigzag: true,
        inner_ring: 1,
        pad_to_max: true,
        block_size,
        reorder_copy: true,
    };
    // The padded layout is the expensive part; build it once and share it
    // across the inner-ring sweep.
    let layout = build_ring_layout(attn, &cfg, batch)?;
    for w in [1u32, 2, 4, 8] {
        if w > 1 && !rp.is_multiple_of(w) {
            continue;
        }
        cfg.inner_ring = w;
        let out =
            build_ring_baseline_with_layout(&format!("loongtrain-w{w}"), &cfg, layout.clone())?;
        let sim = simulate_plan(cluster, &out.plan)?;
        if best.as_ref().is_none_or(|(b, _)| sim.total() < b.total()) {
            best = Some((sim, out));
        }
    }
    Ok(best.expect("w = 1 always valid"))
}

/// Runs the shared Fig. 15 / Fig. 16 end-to-end experiment for `kind`:
/// iteration time of DCP vs the MLM(TE) baseline for every maximum
/// sequence length and mask setting, on the paper's TP4 x CP16 topology.
/// Prints the table and writes `results/<out_name>.json`.
pub fn e2e_figure(kind: DatasetKind, out_name: &str) {
    use dcp_core::{simulate_iteration, E2eConfig};

    let cp = e2e_cp_cluster();
    let cfg = E2eConfig::paper();
    let n = num_batches();
    let attn = micro_attn();
    let mut table = Table::new(&["max_len", "mask", "DCP_iter_s", "MLM_iter_s", "speedup"]);
    for max_len in [32768u32, 65536, 131072, 262144] {
        for mask in MaskSetting::ALL {
            let batches = make_batches(kind, 1.0, max_len, max_len as u64, mask, n);
            let block = if max_len >= 131072 { 2048 } else { 1024 };
            let mut dcp_t = Vec::new();
            let mut mlm_t = Vec::new();
            for batch in &batches {
                let (sim, out) = run_dcp_best(
                    &cp,
                    attn,
                    &PlannerConfig {
                        block_size: block,
                        ..Default::default()
                    },
                    batch,
                )
                .expect("dcp");
                let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                dcp_t.push(
                    simulate_iteration(&cfg, &sim, max_tokens, out.layout.total_tokens()).total,
                );
                let (sim, out) = run_baseline(
                    &cp,
                    attn,
                    Baseline::TransformerEngine { head_groups: 2 },
                    BASELINE_BLOCK,
                    batch,
                )
                .expect("te");
                let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                mlm_t.push(
                    simulate_iteration(&cfg, &sim, max_tokens, out.layout.total_tokens()).total,
                );
            }
            let (d, m) = (mean(&dcp_t), mean(&mlm_t));
            table.row(vec![
                max_len.to_string(),
                mask.name().to_string(),
                format!("{d:.3}"),
                format!("{m:.3}"),
                format!("{:.2}x", m / d),
            ]);
        }
    }
    println!(
        "End-to-end training iteration time on {} (8B GPT, TP4 x CP16, {n} batches/config)",
        kind.name()
    );
    table.print();
    write_results(out_name, &table.to_json());
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory) and reports the path on stdout.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => println!("\n[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// A simple fixed-width table printer for the harness binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// The rows as JSON (array of objects keyed by header).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let map: BTreeMap<&str, &str> = self
                    .header
                    .iter()
                    .map(String::as_str)
                    .zip(r.iter().map(String::as_str))
                    .collect();
                serde_json::to_value(map).expect("string map")
            })
            .collect();
        serde_json::Value::Array(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_respect_budget_and_count() {
        let bs = make_batches(
            DatasetKind::LongDataCollections,
            1.0,
            131072,
            131072,
            MaskSetting::Causal,
            5,
        );
        assert_eq!(bs.len(), 5);
        for b in &bs {
            let tokens: u64 = b.iter().map(|(l, _)| *l as u64).sum();
            assert!(tokens <= 131072);
        }
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let j = t.to_json();
        assert_eq!(j[0]["a"], "1");
        t.print();
    }

    #[test]
    fn runners_compose_on_small_input() {
        let cluster = ClusterSpec::single_node(4);
        let batch = vec![(4096u32, MaskSpec::Causal)];
        let (sim, out) = run_dcp(
            &cluster,
            micro_attn(),
            &PlannerConfig {
                block_size: 512,
                ..Default::default()
            },
            &batch,
        )
        .unwrap();
        assert!(sim.total() > 0.0);
        assert_eq!(out.num_devices(), 4);
        let (bsim, _) =
            run_baseline(&cluster, micro_attn(), Baseline::RfaZigzag, 512, &batch).unwrap();
        assert!(bsim.total() > 0.0);
        let (lsim, _) = run_loongtrain_best(&cluster, micro_attn(), 2, 512, &batch).unwrap();
        assert!(lsim.total() > 0.0);
    }
}
