//! Shared infrastructure for the per-figure benchmark harnesses.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig01_comm_overhead` … `fig22_decomposition`) that regenerates the
//! figure's series from the simulated cluster and prints them as a table
//! plus machine-readable JSON under `results/`. This library holds the
//! common setup: the paper's testbed configurations, dataset batching,
//! and the DCP/baseline runners.
//!
//! Environment knobs:
//!
//! - `DCP_BENCH_BATCHES`: batches averaged per configuration (default 8;
//!   the paper averages 200 — raise it for tighter estimates).
//! - `DCP_BENCH_SEED`: dataset seed (default 7).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use dcp_baselines::{Baseline, BaselineOutput};
use dcp_core::{DcpDataloader, PlanOutput, Planner, PlannerConfig};
use dcp_data::{pack_batches, sample_lengths, Batch, DatasetKind, MaskSetting};
use dcp_mask::MaskSpec;
use dcp_obs::{Event as ObsEvent, ObsHandle, ObsSink, RecordingSink};
use dcp_sim::{simulate_phase_traced, simulate_plan, trace_to_obs, PlanSim, TraceEvent, TraceKind};
use dcp_types::{AttnSpec, ClusterSpec, DcpResult};
use serde::Serialize;

/// Schema version stamped into every machine-readable report this crate
/// writes (`BENCH_exec.json`, `BENCH_plan.json`, `BENCH_robustness.json`,
/// `results/TRACE_e2e.json`). Bump it whenever a report's shape changes so
/// the gate binaries fail loudly instead of silently comparing mismatched
/// documents.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Checks that `report` carries the expected `schema_version`. Returns a
/// human-readable description of the drift, or `Ok` when the version
/// matches. Gate binaries treat a missing field the same as a mismatch: a
/// report without a version predates the schema contract and must be
/// regenerated, not compared.
pub fn check_schema(report: &serde_json::Value, what: &str) -> Result<(), String> {
    match report["schema_version"].as_u64() {
        Some(v) if v == BENCH_SCHEMA_VERSION => Ok(()),
        Some(v) => Err(format!(
            "{what}: schema_version {v} != expected {BENCH_SCHEMA_VERSION} — regenerate the report"
        )),
        None => Err(format!(
            "{what}: missing schema_version (expected {BENCH_SCHEMA_VERSION}) — regenerate the \
             report"
        )),
    }
}

/// Batches averaged per configuration (`DCP_BENCH_BATCHES`, default 8).
pub fn num_batches() -> usize {
    std::env::var("DCP_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Dataset seed (`DCP_BENCH_SEED`, default 7).
pub fn seed() -> u64 {
    std::env::var("DCP_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// The paper's micro-benchmark testbed: 4 p4de nodes, 32 GPUs, all used for
/// context parallelism, GQA 8Q/2KV heads, d = 128.
pub fn micro_cluster() -> ClusterSpec {
    ClusterSpec::p4de(4)
}

/// The paper's end-to-end CP topology: 8 nodes x 8 GPUs with TP = 4,
/// leaving 16 CP ranks (2 per node).
pub fn e2e_cp_cluster() -> ClusterSpec {
    dcp_core::cp_cluster(&ClusterSpec::p4de(8), 4)
}

/// Sequence-chunk granularity used for the *baselines*' layouts. Real ring
/// implementations split at token granularity; 256 tokens is fine enough
/// that their chunk balance converges (checked empirically) while keeping
/// block counts tractable. DCP's block size is a separate, swept parameter.
pub const BASELINE_BLOCK: u32 = 256;

/// The micro-benchmark attention operator.
pub fn micro_attn() -> AttnSpec {
    AttnSpec::paper_micro()
}

/// Batches for one benchmark configuration: `n` batches of up to `budget`
/// tokens drawn from `kind` at the given length `scale`, capped at
/// `max_len`, with masks from `mask`.
pub fn make_batches(
    kind: DatasetKind,
    scale: f64,
    max_len: u32,
    budget: u64,
    mask: MaskSetting,
    n: usize,
) -> Vec<Vec<(u32, MaskSpec)>> {
    // Draw generously, then keep the first n batches.
    let lengths = sample_lengths(kind, n * 64, scale, max_len, seed());
    pack_batches(&lengths, budget, |l| mask.mask_for(l))
        .into_iter()
        .take(n)
        .map(|b| b.seqs)
        .collect()
}

/// Plans and simulates one batch with DCP. Returns `(sim, plan_output)`.
///
/// # Errors
///
/// Propagates planner/simulator failures.
pub fn run_dcp(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    cfg: &PlannerConfig,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, PlanOutput)> {
    let planner = Planner::new(cluster.clone(), attn, cfg.clone());
    let out = planner.plan(batch)?;
    let sim = simulate_plan(cluster, &out.plan)?;
    Ok((sim, out))
}

/// Builds and simulates one baseline on one batch.
///
/// # Errors
///
/// Propagates builder/simulator failures.
pub fn run_baseline(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    baseline: Baseline,
    block_size: u32,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, BaselineOutput)> {
    let out = baseline.build(attn, cluster.num_devices(), block_size, batch)?;
    let sim = simulate_plan(cluster, &out.plan)?;
    Ok((sim, out))
}

/// Plans and simulates one batch with DCP, searching a small
/// hyper-parameter portfolio and keeping the best simulated time — the
/// paper's own methodology ("we search through block sizes 512, 1024, 2048,
/// 4096 and report the best performance"), extended with the paper's Fig. 20
/// epsilon trade-off: a loose (communication-bound) and a tight
/// (computation-bound) imbalance tolerance.
///
/// # Errors
///
/// Propagates planner/simulator failures.
pub fn run_dcp_best(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    base: &PlannerConfig,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, PlanOutput)> {
    let mut best: Option<(PlanSim, PlanOutput)> = None;
    for block_size in [base.block_size, base.block_size * 2] {
        for (eps_intra, eps_inter) in [(0.1, 0.4), (0.05, 0.1)] {
            let cfg = PlannerConfig {
                block_size,
                eps_intra,
                eps_inter,
                ..base.clone()
            };
            let (sim, out) = run_dcp(cluster, attn, &cfg, batch)?;
            if best.as_ref().is_none_or(|(b, _)| sim.total() < b.total()) {
                best = Some((sim, out));
            }
        }
    }
    Ok(best.expect("at least one config"))
}

/// LoongTrain with the best inner-ring size in {1, 2, 4, 8} (the paper
/// reports the best), by simulated total time.
///
/// # Errors
///
/// Propagates builder/simulator failures.
pub fn run_loongtrain_best(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    head_groups: u32,
    block_size: u32,
    batch: &[(u32, MaskSpec)],
) -> DcpResult<(PlanSim, BaselineOutput)> {
    use dcp_baselines::{build_ring_baseline_with_layout, build_ring_layout, RingConfig};

    if batch.iter().any(|(_, m)| !matches!(m, MaskSpec::Causal)) {
        return Err(dcp_types::DcpError::invalid_argument(
            "LoongTrain supports only the causal mask",
        ));
    }
    let mut best: Option<(PlanSim, BaselineOutput)> = None;
    let rp = cluster.num_devices() / head_groups;
    let mut cfg = RingConfig {
        devices: cluster.num_devices(),
        head_groups,
        zigzag: true,
        inner_ring: 1,
        pad_to_max: true,
        block_size,
        reorder_copy: true,
    };
    // The padded layout is the expensive part; build it once and share it
    // across the inner-ring sweep.
    let layout = build_ring_layout(attn, &cfg, batch)?;
    for w in [1u32, 2, 4, 8] {
        if w > 1 && !rp.is_multiple_of(w) {
            continue;
        }
        cfg.inner_ring = w;
        let out =
            build_ring_baseline_with_layout(&format!("loongtrain-w{w}"), &cfg, layout.clone())?;
        let sim = simulate_plan(cluster, &out.plan)?;
        if best.as_ref().is_none_or(|(b, _)| sim.total() < b.total()) {
            best = Some((sim, out));
        }
    }
    Ok(best.expect("w = 1 always valid"))
}

/// Runs the shared Fig. 15 / Fig. 16 end-to-end experiment for `kind`:
/// iteration time of DCP vs the MLM(TE) baseline for every maximum
/// sequence length and mask setting, on the paper's TP4 x CP16 topology.
/// Prints the table and writes `results/<out_name>.json`.
pub fn e2e_figure(kind: DatasetKind, out_name: &str) {
    use dcp_core::{simulate_iteration, E2eConfig};

    let cp = e2e_cp_cluster();
    let cfg = E2eConfig::paper();
    let n = num_batches();
    let attn = micro_attn();
    let mut table = Table::new(&["max_len", "mask", "DCP_iter_s", "MLM_iter_s", "speedup"]);
    for max_len in [32768u32, 65536, 131072, 262144] {
        for mask in MaskSetting::ALL {
            let batches = make_batches(kind, 1.0, max_len, max_len as u64, mask, n);
            let block = if max_len >= 131072 { 2048 } else { 1024 };
            let mut dcp_t = Vec::new();
            let mut mlm_t = Vec::new();
            for batch in &batches {
                let (sim, out) = run_dcp_best(
                    &cp,
                    attn,
                    &PlannerConfig {
                        block_size: block,
                        ..Default::default()
                    },
                    batch,
                )
                .expect("dcp");
                let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                dcp_t.push(
                    simulate_iteration(&cfg, &sim, max_tokens, out.layout.total_tokens()).total,
                );
                let (sim, out) = run_baseline(
                    &cp,
                    attn,
                    Baseline::TransformerEngine { head_groups: 2 },
                    BASELINE_BLOCK,
                    batch,
                )
                .expect("te");
                let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
                mlm_t.push(
                    simulate_iteration(&cfg, &sim, max_tokens, out.layout.total_tokens()).total,
                );
            }
            let (d, m) = (mean(&dcp_t), mean(&mlm_t));
            table.row(vec![
                max_len.to_string(),
                mask.name().to_string(),
                format!("{d:.3}"),
                format!("{m:.3}"),
                format!("{:.2}x", m / d),
            ]);
        }
    }
    println!(
        "End-to-end training iteration time on {} (8B GPT, TP4 x CP16, {n} batches/config)",
        kind.name()
    );
    table.print();
    write_results(out_name, &table.to_json());
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory) and reports the path on stdout.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => println!("\n[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Merges intervals into a sorted disjoint union.
fn interval_union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.partial_cmp(b).expect("no NaN interval"));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint union.
fn union_len(u: &[(f64, f64)]) -> f64 {
    u.iter().map(|(s, e)| e - s).sum()
}

/// Length of the intersection of two disjoint unions (two-pointer sweep).
fn intersect_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Communication-overlap summary for one division of one device's simulated
/// timeline: how much of the division's incoming-transfer time was hidden
/// under that device's compute.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DivisionOverlap {
    /// Device rank.
    pub device: u32,
    /// Division index on that device (attention calls close divisions,
    /// matching [`dcp_sched::DivisionReport`]'s attribution).
    pub division: u32,
    /// Seconds of incoming transfer activity in this division's window.
    pub comm_s: f64,
    /// Seconds of that activity concurrent with this device's compute.
    pub hidden_s: f64,
    /// `hidden_s / comm_s`; defined as 1.0 for a communication-free
    /// division (nothing was exposed).
    pub efficiency: f64,
}

/// Derives per-division overlap efficiency from a simulated phase trace.
///
/// Each device's timeline is split at the end of each fused attention call
/// (the instant its division closes); transfers are clipped to the division
/// windows and intersected with the device's compute segments (attention,
/// reductions, copies and straggle time all keep the device busy). Trailing
/// activity after the last attention call is charged to the last division,
/// mirroring [`dcp_sched::PlanReport`]'s division accounting.
pub fn division_overlap(trace: &[TraceEvent]) -> Vec<DivisionOverlap> {
    let n = trace.iter().map(|e| e.device).max().map_or(0, |d| d + 1);
    let mut out = Vec::new();
    for d in 0..n {
        let dev: Vec<&TraceEvent> = trace.iter().filter(|e| e.device == d).collect();
        let compute: Vec<(f64, f64)> = dev
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::Attn
                        | TraceKind::AttnBwd
                        | TraceKind::Reduce
                        | TraceKind::Copy
                        | TraceKind::Straggle
                )
            })
            .map(|e| (e.start, e.end))
            .collect();
        let transfers: Vec<(f64, f64)> = dev
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Transfer { .. }))
            .map(|e| (e.start, e.end))
            .collect();
        let mut bounds: Vec<f64> = dev
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Attn | TraceKind::AttnBwd))
            .map(|e| e.end)
            .collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("no NaN trace"));
        if bounds.is_empty() {
            bounds.push(f64::INFINITY);
        }
        let m = bounds.len();
        for (k, &bound) in bounds.iter().enumerate() {
            let w0 = if k == 0 { 0.0 } else { bounds[k - 1] };
            // The last division absorbs trailing activity.
            let w1 = if k == m - 1 { f64::INFINITY } else { bound };
            let clip = |iv: &[(f64, f64)]| -> Vec<(f64, f64)> {
                iv.iter()
                    .map(|&(s, e)| (s.max(w0), e.min(w1)))
                    .filter(|(s, e)| e > s)
                    .collect()
            };
            let tu = interval_union(clip(&transfers));
            let cu = interval_union(clip(&compute));
            let comm_s = union_len(&tu);
            let hidden_s = intersect_len(&tu, &cu);
            out.push(DivisionOverlap {
                device: d,
                division: k as u32,
                comm_s,
                hidden_s,
                efficiency: if comm_s > 0.0 { hidden_s / comm_s } else { 1.0 },
            });
        }
    }
    out
}

/// The unified event stream and overlap summary produced by
/// [`trace_workload`].
pub struct TraceOutcome {
    /// All captured events, in deterministic arrival order: planner and
    /// dataloader spans (replayed serially by the loader), executor
    /// instruction spans and buffer gauges, and the adapted simulator
    /// timeline.
    pub events: Vec<ObsEvent>,
    /// Per-iteration, per-phase, per-device, per-division overlap rows.
    pub overlap: Vec<serde_json::Value>,
    /// Aggregate per-device `(comm_s, hidden_s)` from the simulator's own
    /// interval accounting, across all iterations and both phases.
    pub device_comm: Vec<(f64, f64)>,
}

impl TraceOutcome {
    /// The overlap-efficiency summary block for trace reports.
    pub fn overlap_summary(&self) -> serde_json::Value {
        let per_device: Vec<serde_json::Value> = self
            .device_comm
            .iter()
            .enumerate()
            .map(|(d, (comm, hidden))| {
                serde_json::json!({
                    "device": d,
                    "comm_s": comm,
                    "hidden_s": hidden,
                    "efficiency": if *comm > 0.0 { hidden / comm } else { 1.0 },
                })
            })
            .collect();
        let comm: f64 = self.device_comm.iter().map(|(c, _)| c).sum();
        let hidden: f64 = self.device_comm.iter().map(|(_, h)| h).sum();
        serde_json::json!({
            "overall": if comm > 0.0 { hidden / comm } else { 1.0 },
            "per_device": per_device,
            "per_division": self.overlap,
        })
    }
}

/// Runs `batches` through the full instrumented pipeline — look-ahead
/// dataloader (which replays planner stage spans serially), the numeric
/// executor (when `execute` is set) and the cluster simulator — collecting
/// every span, counter and gauge into one recorded stream plus a
/// per-division communication-overlap summary.
///
/// The event stream is deterministic across `RAYON_NUM_THREADS` up to span
/// durations: all emission happens on the consumer thread (loader), the
/// executor's serial interpreter loop, or the simulator's sorted trace.
///
/// # Errors
///
/// Propagates loader, executor and simulator failures.
pub fn trace_workload(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    cfg: &PlannerConfig,
    batches: Vec<Batch>,
    execute: bool,
) -> DcpResult<TraceOutcome> {
    use dcp_blocks::TokenBlockId;
    use dcp_exec::{execute_backward_obs, execute_forward_obs, BatchData, ExecObs};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let sink = Arc::new(RecordingSink::new());
    let obs = ObsHandle::new(sink.clone());
    let planner = Planner::new(cluster.clone(), attn, cfg.clone());
    let loader = DcpDataloader::new(planner, batches, 2).with_obs(obs);
    let mut overlap = Vec::new();
    let mut device_comm = vec![(0.0f64, 0.0f64); cluster.num_devices() as usize];
    for (iter, item) in loader.enumerate() {
        let iter = iter as u64;
        let (_batch, out) = item?;
        if execute {
            let data = BatchData::random(&out.layout, 2024);
            let (qh, _) = BatchData::head_counts(&out.layout);
            let dim = out.layout.attn.head_dim as usize;
            let mut d_o = std::collections::HashMap::new();
            let mut rng = SmallRng::seed_from_u64(99);
            for (i, tb) in out.layout.token_blocks.iter().enumerate() {
                let v: Vec<f32> = (0..tb.len as usize * qh * dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                d_o.insert(TokenBlockId(i as u32), v);
            }
            let eo = ExecObs::new(sink.as_ref()).with_iter(iter);
            let fwd = execute_forward_obs(&out.layout, &out.placement, &out.plan, &data, &eo)?;
            execute_backward_obs(
                &out.layout,
                &out.placement,
                &out.plan,
                &data,
                &fwd,
                &d_o,
                &eo,
            )?;
        }
        for (phase, obs_phase, plan_phase) in [
            ("fwd", dcp_obs::Phase::Fwd, &out.plan.fwd),
            ("bwd", dcp_obs::Phase::Bwd, &out.plan.bwd),
        ] {
            let (sim, trace) = simulate_phase_traced(cluster, plan_phase)?;
            sink.record_all(trace_to_obs(&trace, obs_phase, Some(iter)));
            for (d, tl) in sim.devices.iter().enumerate() {
                device_comm[d].0 += tl.comm_active;
                device_comm[d].1 += tl.overlap;
            }
            for row in division_overlap(&trace) {
                overlap.push(serde_json::json!({
                    "iter": iter,
                    "phase": phase,
                    "device": row.device,
                    "division": row.division,
                    "comm_s": row.comm_s,
                    "hidden_s": row.hidden_s,
                    "efficiency": row.efficiency,
                }));
            }
        }
    }
    Ok(TraceOutcome {
        events: sink.drain(),
        overlap,
        device_comm,
    })
}

/// Assembles the unified trace document: a valid Chrome Trace Event file
/// (open it at `chrome://tracing` or in Perfetto — extra top-level keys are
/// ignored by both) that doubles as a machine-readable report with the
/// schema version, workload description and overlap-efficiency summary.
pub fn trace_doc(outcome: &TraceOutcome, workload: serde_json::Value) -> serde_json::Value {
    serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "overlap_efficiency": outcome.overlap_summary(),
        "events_captured": outcome.events.len() as u64,
        "traceEvents": dcp_obs::chrome_trace_events(&outcome.events),
        "displayTimeUnit": "ms",
    })
}

/// A simple fixed-width table printer for the harness binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// The rows as JSON (array of objects keyed by header).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let map: BTreeMap<&str, &str> = self
                    .header
                    .iter()
                    .map(String::as_str)
                    .zip(r.iter().map(String::as_str))
                    .collect();
                serde_json::to_value(map).expect("string map")
            })
            .collect();
        serde_json::Value::Array(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_respect_budget_and_count() {
        let bs = make_batches(
            DatasetKind::LongDataCollections,
            1.0,
            131072,
            131072,
            MaskSetting::Causal,
            5,
        );
        assert_eq!(bs.len(), 5);
        for b in &bs {
            let tokens: u64 = b.iter().map(|(l, _)| *l as u64).sum();
            assert!(tokens <= 131072);
        }
    }

    #[test]
    fn schema_check_flags_drift_loudly() {
        let ok = serde_json::json!({ "schema_version": BENCH_SCHEMA_VERSION });
        assert!(check_schema(&ok, "report").is_ok());
        let drifted = serde_json::json!({ "schema_version": BENCH_SCHEMA_VERSION + 1 });
        let err = check_schema(&drifted, "report").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let missing = serde_json::json!({ "runs": [] });
        let err = check_schema(&missing, "old.json").unwrap_err();
        assert!(err.contains("missing") && err.contains("old.json"), "{err}");
    }

    #[test]
    fn division_overlap_splits_at_attention_calls() {
        use dcp_sim::TraceKind;
        // Device 0: two divisions. Division 0: attn [0,2) with a transfer
        // [1,3) — 1s hidden under attn, 1s exposed in division 1's window.
        // Division 1: attn [4,6) closes it; a trailing transfer [6,7) is
        // charged to it, fully exposed.
        let t = |kind, start: f64, end: f64| TraceEvent {
            device: 0,
            kind,
            start,
            end,
        };
        let trace = vec![
            t(TraceKind::Attn, 0.0, 2.0),
            t(TraceKind::Transfer { from: 1 }, 1.0, 3.0),
            t(TraceKind::Attn, 4.0, 6.0),
            t(TraceKind::Transfer { from: 1 }, 6.0, 7.0),
        ];
        let rows = division_overlap(&trace);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].device, rows[0].division), (0, 0));
        assert!((rows[0].comm_s - 1.0).abs() < 1e-12);
        assert!((rows[0].hidden_s - 1.0).abs() < 1e-12);
        assert!((rows[0].efficiency - 1.0).abs() < 1e-12);
        // Division 1: transfer slice [2,3) exposed (no compute there),
        // trailing [6,7) exposed too.
        assert!((rows[1].comm_s - 2.0).abs() < 1e-12);
        assert!(rows[1].hidden_s.abs() < 1e-12);
        assert!(rows[1].efficiency.abs() < 1e-12);
    }

    #[test]
    fn division_overlap_handles_attention_free_devices() {
        use dcp_sim::TraceKind;
        let trace = vec![TraceEvent {
            device: 0,
            kind: TraceKind::Transfer { from: 1 },
            start: 0.0,
            end: 1.0,
        }];
        let rows = division_overlap(&trace);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].division, 0);
        assert!((rows[0].comm_s - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].efficiency, 0.0);
        assert!(division_overlap(&[]).is_empty());
    }

    #[test]
    fn trace_workload_captures_all_sources() {
        let batches = vec![Batch {
            seqs: vec![(1024, MaskSpec::Causal)],
        }];
        let cfg = PlannerConfig {
            block_size: 256,
            ..Default::default()
        };
        let outcome = trace_workload(
            &ClusterSpec::single_node(4),
            AttnSpec::new(4, 2, 16, 1),
            &cfg,
            batches,
            false,
        )
        .unwrap();
        assert!(!outcome.events.is_empty());
        for source in [
            dcp_obs::Source::Planner,
            dcp_obs::Source::Dataloader,
            dcp_obs::Source::Sim,
        ] {
            assert!(
                outcome.events.iter().any(|e| e.source == source),
                "no events from {source:?}"
            );
        }
        // execute = false: no executor events.
        assert!(!outcome
            .events
            .iter()
            .any(|e| e.source == dcp_obs::Source::Executor));
        let doc = trace_doc(&outcome, serde_json::json!({"w": 1}));
        assert_eq!(doc["schema_version"].as_u64(), Some(BENCH_SCHEMA_VERSION));
        assert!(doc["traceEvents"].as_array().map_or(0, Vec::len) > 0);
        let eff = doc["overlap_efficiency"]["overall"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&eff));
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let j = t.to_json();
        assert_eq!(j[0]["a"], "1");
        t.print();
    }

    #[test]
    fn runners_compose_on_small_input() {
        let cluster = ClusterSpec::single_node(4);
        let batch = vec![(4096u32, MaskSpec::Causal)];
        let (sim, out) = run_dcp(
            &cluster,
            micro_attn(),
            &PlannerConfig {
                block_size: 512,
                ..Default::default()
            },
            &batch,
        )
        .unwrap();
        assert!(sim.total() > 0.0);
        assert_eq!(out.num_devices(), 4);
        let (bsim, _) =
            run_baseline(&cluster, micro_attn(), Baseline::RfaZigzag, 512, &batch).unwrap();
        assert!(bsim.total() > 0.0);
        let (lsim, _) = run_loongtrain_best(&cluster, micro_attn(), 2, 512, &batch).unwrap();
        assert!(lsim.total() > 0.0);
    }
}
