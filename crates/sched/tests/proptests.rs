//! Property tests: scheduling invariants must hold for arbitrary layouts
//! and placements (DESIGN.md Sec. 6).

use std::collections::HashSet;

use dcp_blocks::{BatchLayout, BlockConfig, CompBlockId};
use dcp_mask::MaskSpec;
use dcp_sched::schedule::validate_plan;
use dcp_sched::{build_plan, Instr, Payload, PayloadKind, Placement, ScheduleConfig};
use dcp_types::AttnSpec;
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = MaskSpec> {
    prop_oneof![
        Just(MaskSpec::Causal),
        Just(MaskSpec::Full),
        (0u32..4, 1u32..32).prop_map(|(sink, window)| MaskSpec::Lambda { sink, window }),
        (1u32..8, 1u32..4).prop_map(|(block, wb)| MaskSpec::CausalBlockwise {
            block,
            window_blocks: wb,
            sink_blocks: 1,
        }),
    ]
}

prop_compose! {
    fn arb_case()(
        lens in prop::collection::vec(1u32..200, 1..5),
        masks in prop::collection::vec(arb_mask(), 5),
        bs in 1u32..64,
        n in 1u32..6,
        t in 1u32..6,
        seed in 0u64..1000,
    ) -> (Vec<(u32, MaskSpec)>, u32, u32, u32, u64) {
        let seqs: Vec<(u32, MaskSpec)> = lens
            .iter()
            .zip(masks.iter().cycle())
            .map(|(&l, m)| (l, m.clone()))
            .collect();
        (seqs, bs, n, t, seed)
    }
}

fn random_placement(layout: &BatchLayout, n: u32, seed: u64) -> Placement {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    Placement {
        num_devices: n,
        token_to_dev: (0..layout.token_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
        comp_to_dev: (0..layout.comp_blocks.len())
            .map(|_| rng.gen_range(0..n))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (layout, placement) pair yields a structurally valid plan:
    /// every comp block scheduled exactly once on its device, waits
    /// matched, transfers consistent with ownership.
    #[test]
    fn plans_always_validate((seqs, bs, n, t, seed) in arb_case()) {
        let layout = BatchLayout::build(
            AttnSpec::new(2, 2, 4, 2),
            BlockConfig { block_size: bs, head_blocks: 1 },
            &seqs,
        ).unwrap();
        let placement = random_placement(&layout, n, seed);
        let plan = build_plan(&layout, &placement, &ScheduleConfig {
            divisions: t,
            ..Default::default()
        }).unwrap();
        validate_plan(&layout, &placement, &plan).unwrap();
    }

    /// Each remote input block is fetched at most once per destination
    /// device, in both phases (no duplicate transfers).
    #[test]
    fn no_duplicate_fetches((seqs, bs, n, t, seed) in arb_case()) {
        let layout = BatchLayout::build(
            AttnSpec::new(2, 2, 4, 2),
            BlockConfig { block_size: bs, head_blocks: 1 },
            &seqs,
        ).unwrap();
        let placement = random_placement(&layout, n, seed);
        let plan = build_plan(&layout, &placement, &ScheduleConfig {
            divisions: t,
            ..Default::default()
        }).unwrap();
        for phase in [&plan.fwd, &plan.bwd] {
            let mut seen: HashSet<(u32, PayloadKind, u32, u32)> = HashSet::new();
            for op in &phase.comms {
                for tr in &op.transfers {
                    let key = (tr.payload.token_block().0, tr.payload.kind(), tr.from, tr.to);
                    prop_assert!(
                        seen.insert(key),
                        "duplicate transfer {:?} to {}",
                        tr.payload,
                        tr.to
                    );
                }
            }
        }
    }

    /// The backward phase fetches at least what the forward fetches per
    /// (KV block, destination): re-communication plus gradients.
    #[test]
    fn backward_superset_of_forward_kv((seqs, bs, n, t, seed) in arb_case()) {
        let layout = BatchLayout::build(
            AttnSpec::new(2, 2, 4, 2),
            BlockConfig { block_size: bs, head_blocks: 1 },
            &seqs,
        ).unwrap();
        let placement = random_placement(&layout, n, seed);
        let plan = build_plan(&layout, &placement, &ScheduleConfig {
            divisions: t,
            ..Default::default()
        }).unwrap();
        let kv_fetches = |phase: &dcp_sched::PhasePlan| -> HashSet<(u32, u32)> {
            phase
                .comms
                .iter()
                .flat_map(|c| c.transfers.iter())
                .filter(|tr| matches!(tr.payload, Payload::Kv(_)))
                .map(|tr| (tr.payload.token_block().0, tr.to))
                .collect()
        };
        let fwd = kv_fetches(&plan.fwd);
        let bwd = kv_fetches(&plan.bwd);
        prop_assert!(fwd.is_subset(&bwd));
    }

    /// Total forward communication equals the closed-form ownership
    /// accounting (the connectivity-cost identity).
    #[test]
    fn forward_comm_closed_form((seqs, bs, n, t, seed) in arb_case()) {
        let layout = BatchLayout::build(
            AttnSpec::new(2, 2, 4, 2),
            BlockConfig { block_size: bs, head_blocks: 1 },
            &seqs,
        ).unwrap();
        let placement = random_placement(&layout, n, seed);
        let plan = build_plan(&layout, &placement, &ScheduleConfig {
            divisions: t,
            ..Default::default()
        }).unwrap();
        let mut expect = 0u64;
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            let owner = placement.token_to_dev[i];
            let q_devs: HashSet<u32> = layout.q_consumers[i]
                .iter()
                .map(|&c| placement.comp_dev(c))
                .filter(|&d| d != owner)
                .collect();
            let kv_devs: HashSet<u32> = layout.kv_consumers[i]
                .iter()
                .map(|&c| placement.comp_dev(c))
                .filter(|&d| d != owner)
                .collect();
            expect += (tb.q_bytes + tb.o_bytes) * q_devs.len() as u64
                + tb.kv_bytes * kv_devs.len() as u64;
        }
        prop_assert_eq!(plan.fwd.total_comm_bytes(), expect);
    }

    /// Attention items in the stream preserve the per-device comp set.
    #[test]
    fn attn_items_partition_comp_blocks((seqs, bs, n, t, seed) in arb_case()) {
        let layout = BatchLayout::build(
            AttnSpec::new(2, 2, 4, 2),
            BlockConfig { block_size: bs, head_blocks: 1 },
            &seqs,
        ).unwrap();
        let placement = random_placement(&layout, n, seed);
        let plan = build_plan(&layout, &placement, &ScheduleConfig {
            divisions: t,
            ..Default::default()
        }).unwrap();
        for (phase, bwd) in [(&plan.fwd, false), (&plan.bwd, true)] {
            let mut scheduled: Vec<CompBlockId> = Vec::new();
            for stream in &phase.devices {
                for ins in &stream.instrs {
                    match ins {
                        Instr::Attn { items, .. } if !bwd => scheduled.extend(items),
                        Instr::AttnBwd { items, .. } if bwd => scheduled.extend(items),
                        _ => {}
                    }
                }
            }
            scheduled.sort_unstable();
            let expect: Vec<CompBlockId> =
                (0..layout.comp_blocks.len() as u32).map(CompBlockId).collect();
            prop_assert_eq!(scheduled, expect);
        }
    }
}
