//! The execution-plan IR: the paper's five instructions plus the transfer
//! and communication-operation records they reference.

use dcp_blocks::{CompBlockId, TokenBlockId};
use serde::{Deserialize, Serialize};

/// Index of a [`CommOp`] within a [`PhasePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CommId(pub u32);

/// What a transfer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Payload {
    /// The Q slice of a token block (forward input fetch).
    Q(TokenBlockId),
    /// The K+V slices of a token block (forward/backward input fetch).
    Kv(TokenBlockId),
    /// A partial attention output (O + log-sum-exp) for a token block,
    /// produced on the given device, sent to the block's owner.
    PartialO(TokenBlockId, u32),
    /// The output gradient dO of a token block (backward input fetch).
    DO(TokenBlockId),
    /// A partial dQ for a token block produced on the given device.
    PartialDq(TokenBlockId, u32),
    /// A partial dK/dV for a token block produced on the given device.
    PartialDkv(TokenBlockId, u32),
}

impl Payload {
    /// The token block this payload concerns.
    pub fn token_block(&self) -> TokenBlockId {
        match *self {
            Payload::Q(t)
            | Payload::Kv(t)
            | Payload::PartialO(t, _)
            | Payload::DO(t)
            | Payload::PartialDq(t, _)
            | Payload::PartialDkv(t, _) => t,
        }
    }

    /// The coarse payload kind (used for fetch deduplication).
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Q(_) => PayloadKind::Q,
            Payload::Kv(_) => PayloadKind::Kv,
            Payload::PartialO(..) => PayloadKind::PartialO,
            Payload::DO(_) => PayloadKind::DO,
            Payload::PartialDq(..) => PayloadKind::PartialDq,
            Payload::PartialDkv(..) => PayloadKind::PartialDkv,
        }
    }
}

/// Coarse classification of payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Query slice.
    Q,
    /// Key/value slices.
    Kv,
    /// Partial output.
    PartialO,
    /// Output gradient slice.
    DO,
    /// Partial query gradient.
    PartialDq,
    /// Partial key/value gradient.
    PartialDkv,
}

/// One point-to-point transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Sending device.
    pub from: u32,
    /// Receiving device.
    pub to: u32,
    /// What is carried.
    pub payload: Payload,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A batch of transfers launched together (one `CommLaunch`/`CommWait`
/// pair). Corresponds to one fused NCCL group call in the paper's executor.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommOp {
    /// The transfers of this operation.
    pub transfers: Vec<Transfer>,
}

impl CommOp {
    /// Total bytes moved by this operation.
    pub fn bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Bytes received by device `d`.
    pub fn bytes_into(&self, d: u32) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.to == d)
            .map(|t| t.bytes)
            .sum()
    }
}

/// A reduction merging partial results into a block owned by this device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceItem {
    /// The owned token block being reduced into.
    pub target: TokenBlockId,
    /// The remote devices whose partials are merged.
    pub sources: Vec<u32>,
    /// What is being reduced (partial O, dQ or dKV).
    pub kind: PayloadKind,
}

/// One instruction of a device stream — the paper's five instruction types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Asynchronously launch a communication operation.
    CommLaunch(CommId),
    /// Block until the incoming transfers of the operation have arrived.
    CommWait(CommId),
    /// Fused blockwise attention over the computation blocks of one
    /// division. Accumulates into the per-Q-block online-softmax
    /// accumulators on this device (FlashAttention-style rescale-and-add is
    /// fused into the kernel, as in the paper).
    Attn {
        /// Computation blocks executed by this fused call.
        items: Vec<CompBlockId>,
        /// Total forward FLOPs of the call.
        flops: u64,
    },
    /// Fused blockwise attention *backward* over one division's blocks.
    AttnBwd {
        /// Computation blocks whose backward is executed.
        items: Vec<CompBlockId>,
        /// Total backward FLOPs of the call.
        flops: u64,
    },
    /// Fused blockwise reduction merging remote partials into owned blocks.
    Reduce {
        /// Reductions performed by this fused call.
        items: Vec<ReduceItem>,
        /// Total bytes read+written by the reduction.
        bytes: u64,
    },
    /// Fused on-device block copy (buffer compaction / staging).
    Copy {
        /// Bytes copied.
        bytes: u64,
    },
}

/// The instruction stream of one device for one phase, plus its buffer
/// accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStream {
    /// Device rank.
    pub device: u32,
    /// Instructions, executed in order.
    pub instrs: Vec<Instr>,
    /// Peak buffer usage of this stream (set by the buffer manager).
    pub buffer: crate::buffer::BufferStats,
}

/// All device streams and communication operations of one pass direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Communication operations referenced by `CommLaunch`/`CommWait`.
    pub comms: Vec<CommOp>,
    /// One stream per device, indexed by rank.
    pub devices: Vec<DeviceStream>,
}

impl PhasePlan {
    /// Total bytes communicated in this phase.
    pub fn total_comm_bytes(&self) -> u64 {
        self.comms.iter().map(CommOp::bytes).sum()
    }

    /// Total bytes of transfers for which `pred(from, to)` holds (e.g.
    /// cross-node transfers under some topology).
    pub fn comm_bytes_where(&self, mut pred: impl FnMut(u32, u32) -> bool) -> u64 {
        self.comms
            .iter()
            .flat_map(|c| c.transfers.iter())
            .filter(|t| pred(t.from, t.to))
            .map(|t| t.bytes)
            .sum()
    }

    /// Bytes communicated per tier distance under `cluster`'s topology:
    /// index 0 is intra-node traffic, 1 crosses only the first network tier
    /// (e.g. stays under one leaf), and so on up to
    /// [`dcp_types::ClusterSpec::num_tier_distances`]` - 1` for traffic
    /// crossing the whole fabric. The flat two-tier model yields
    /// `[intra_node, inter_node]`.
    pub fn comm_bytes_by_tier(&self, cluster: &dcp_types::ClusterSpec) -> Vec<u64> {
        let mut out = vec![0u64; cluster.num_tier_distances()];
        for t in self.comms.iter().flat_map(|c| c.transfers.iter()) {
            let d = cluster.tier_distance(dcp_types::DeviceId(t.from), dcp_types::DeviceId(t.to));
            out[d as usize] += t.bytes;
        }
        out
    }

    /// Maximum, over devices, of bytes sent plus bytes received.
    pub fn max_device_comm_bytes(&self) -> u64 {
        let n = self.devices.len();
        let mut per_dev = vec![0u64; n];
        for c in &self.comms {
            for t in &c.transfers {
                per_dev[t.from as usize] += t.bytes;
                per_dev[t.to as usize] += t.bytes;
            }
        }
        per_dev.into_iter().max().unwrap_or(0)
    }

    /// Per-device total attention FLOPs in this phase.
    pub fn comp_loads(&self) -> Vec<u64> {
        self.devices
            .iter()
            .map(|d| {
                d.instrs
                    .iter()
                    .map(|i| match i {
                        Instr::Attn { flops, .. } | Instr::AttnBwd { flops, .. } => *flops,
                        _ => 0,
                    })
                    .sum()
            })
            .collect()
    }
}

/// A complete execution plan for one training iteration's attention:
/// forward and backward phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Number of participating devices.
    pub num_devices: u32,
    /// Forward-pass streams.
    pub fwd: PhasePlan,
    /// Backward-pass streams.
    pub bwd: PhasePlan,
}

impl ExecutionPlan {
    /// Number of participating devices.
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// Total bytes communicated over both phases.
    pub fn total_comm_bytes(&self) -> u64 {
        self.fwd.total_comm_bytes() + self.bwd.total_comm_bytes()
    }

    /// Per-tier-distance bytes over both phases (see
    /// [`PhasePlan::comm_bytes_by_tier`]).
    pub fn comm_bytes_by_tier(&self, cluster: &dcp_types::ClusterSpec) -> Vec<u64> {
        let mut out = self.fwd.comm_bytes_by_tier(cluster);
        for (o, b) in out.iter_mut().zip(self.bwd.comm_bytes_by_tier(cluster)) {
            *o += b;
        }
        out
    }

    /// Serializes the plan to JSON (the dataloader-to-executor handoff).
    ///
    /// # Errors
    ///
    /// Returns [`dcp_types::DcpError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> dcp_types::DcpResult<String> {
        serde_json::to_string(self).map_err(|e| dcp_types::DcpError::Serialization(e.to_string()))
    }

    /// Deserializes a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`dcp_types::DcpError::Serialization`] if decoding fails.
    pub fn from_json(s: &str) -> dcp_types::DcpResult<Self> {
        serde_json::from_str(s).map_err(|e| dcp_types::DcpError::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_op_byte_accounting() {
        let op = CommOp {
            transfers: vec![
                Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Q(TokenBlockId(3)),
                    bytes: 100,
                },
                Transfer {
                    from: 2,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(4)),
                    bytes: 50,
                },
                Transfer {
                    from: 1,
                    to: 0,
                    payload: Payload::PartialO(TokenBlockId(3), 1),
                    bytes: 25,
                },
            ],
        };
        assert_eq!(op.bytes(), 175);
        assert_eq!(op.bytes_into(1), 150);
        assert_eq!(op.bytes_into(0), 25);
    }

    #[test]
    fn payload_kind_and_block() {
        let p = Payload::PartialDkv(TokenBlockId(7), 3);
        assert_eq!(p.kind(), PayloadKind::PartialDkv);
        assert_eq!(p.token_block(), TokenBlockId(7));
    }

    #[test]
    fn phase_filters() {
        let phase = PhasePlan {
            comms: vec![CommOp {
                transfers: vec![
                    Transfer {
                        from: 0,
                        to: 9,
                        payload: Payload::Kv(TokenBlockId(0)),
                        bytes: 10,
                    },
                    Transfer {
                        from: 1,
                        to: 2,
                        payload: Payload::Kv(TokenBlockId(1)),
                        bytes: 7,
                    },
                ],
            }],
            devices: vec![],
        };
        assert_eq!(phase.total_comm_bytes(), 17);
        // "Cross-node" if ranks are 8 apart.
        assert_eq!(phase.comm_bytes_where(|a, b| a / 8 != b / 8), 10);
    }

    #[test]
    fn comm_bytes_by_tier_splits_traffic_by_crossed_fabric_level() {
        let phase = PhasePlan {
            comms: vec![CommOp {
                transfers: vec![
                    // Intra-node (devices 0 and 1 share node 0).
                    Transfer {
                        from: 0,
                        to: 1,
                        payload: Payload::Kv(TokenBlockId(0)),
                        bytes: 3,
                    },
                    // Cross-node, same leaf (nodes 0 and 1, leaf 0).
                    Transfer {
                        from: 1,
                        to: 9,
                        payload: Payload::Kv(TokenBlockId(1)),
                        bytes: 5,
                    },
                    // Cross-leaf (node 0 → node 2).
                    Transfer {
                        from: 0,
                        to: 17,
                        payload: Payload::Kv(TokenBlockId(2)),
                        bytes: 11,
                    },
                ],
            }],
            devices: vec![],
        };
        // 4 nodes of 8 devices, 2 nodes per leaf → leaf boundary at node 2.
        let spine = dcp_types::ClusterSpec::p4de_spine(4, 2, 4.0);
        assert_eq!(phase.comm_bytes_by_tier(&spine), vec![3, 5, 11]);
        // Flat topology folds all cross-node traffic into one bucket.
        let flat = dcp_types::ClusterSpec::p4de(4);
        assert_eq!(phase.comm_bytes_by_tier(&flat), vec![3, 16]);
    }
}
