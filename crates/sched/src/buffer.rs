//! Block-buffer accounting with slot reuse (paper Sec. 5).
//!
//! The paper's executor keeps one contiguous GPU buffer per block type and
//! addresses blocks by (type, index), reusing indices whose blocks are no
//! longer needed. This module replays a device's instruction stream and
//! computes the peak number of live slots per type — with a free-list, so an
//! index freed by an earlier division is reused by a later fetch — plus the
//! resulting peak bytes.

use std::collections::HashMap;

use dcp_blocks::BatchLayout;
use serde::{Deserialize, Serialize};

use crate::plan::{CommOp, Instr, Payload, PayloadKind};

/// Peak buffer usage of one device stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BufferStats {
    /// Peak live remote-Q slots.
    pub q_slots: u32,
    /// Peak live remote-KV slots.
    pub kv_slots: u32,
    /// Peak live partial/gradient slots (PartialO/DO/PartialDq/PartialDkv).
    pub partial_slots: u32,
    /// Bytes of locally owned blocks resident for the whole phase.
    pub owned_bytes: u64,
    /// Peak bytes of fetched/partial slots (slot size x peak slots).
    pub fetched_bytes: u64,
}

impl BufferStats {
    /// Total peak bytes of the stream's buffers.
    pub fn peak_bytes(&self) -> u64 {
        self.owned_bytes + self.fetched_bytes
    }
}

/// A per-kind slot allocator with index reuse.
#[derive(Debug, Default)]
struct SlotPool {
    free: Vec<u32>,
    next: u32,
    peak: u32,
    live: HashMap<Payload, u32>,
}

impl SlotPool {
    fn alloc(&mut self, p: Payload) -> u32 {
        if let Some(&s) = self.live.get(&p) {
            return s; // Already resident (e.g. re-referenced payload).
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next;
            self.next += 1;
            s
        });
        self.live.insert(p, slot);
        self.peak = self.peak.max(self.next);
        slot
    }

    fn release(&mut self, p: &Payload) {
        if let Some(s) = self.live.remove(p) {
            self.free.push(s);
        }
    }
}

/// Replays `instrs` for device `device`, computing [`BufferStats`].
///
/// Fetched blocks become live at their `CommWait` and are released after the
/// last instruction that consumes them (attention for Q/KV/DO fetches,
/// reduction for partials). Owned blocks are counted as resident for the
/// whole phase.
pub fn compute_stats(
    layout: &BatchLayout,
    comms: &[CommOp],
    device: u32,
    instrs: &[Instr],
    owned_token_blocks: &[u32],
) -> BufferStats {
    // Last instruction index consuming each incoming payload.
    let mut last_use: HashMap<Payload, usize> = HashMap::new();
    // Incoming payloads by the CommWait instruction index that makes them
    // live.
    let mut arrivals: Vec<(usize, Payload)> = Vec::new();

    for (idx, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::CommWait(cid) => {
                for t in &comms[cid.0 as usize].transfers {
                    if t.to == device {
                        arrivals.push((idx, t.payload));
                    }
                }
            }
            Instr::Attn { items, .. } | Instr::AttnBwd { items, .. } => {
                for &c in items {
                    let cb = &layout.comp_blocks[c.0 as usize];
                    for payload in [
                        Payload::Q(cb.q_block),
                        Payload::Kv(cb.kv_block),
                        Payload::DO(cb.q_block),
                    ] {
                        last_use.insert(payload, idx);
                    }
                }
            }
            Instr::Reduce { items, .. } => {
                for item in items {
                    for &src in &item.sources {
                        let payload = match item.kind {
                            PayloadKind::PartialO => Payload::PartialO(item.target, src),
                            PayloadKind::PartialDq => Payload::PartialDq(item.target, src),
                            PayloadKind::PartialDkv => Payload::PartialDkv(item.target, src),
                            _ => continue,
                        };
                        last_use.insert(payload, idx);
                    }
                }
            }
            _ => {}
        }
    }

    // Sweep: allocate at arrival, release after last use.
    let mut pools: HashMap<PayloadKind, SlotPool> = HashMap::new();
    let mut releases: HashMap<usize, Vec<Payload>> = HashMap::new();
    for (arrive_idx, payload) in &arrivals {
        let release_idx = last_use.get(payload).copied().unwrap_or(*arrive_idx);
        releases.entry(release_idx).or_default().push(*payload);
        // Allocation happens during the sweep below; remember arrival order.
        let _ = arrive_idx;
    }
    let mut arrivals_by_idx: HashMap<usize, Vec<Payload>> = HashMap::new();
    for (idx, p) in arrivals {
        arrivals_by_idx.entry(idx).or_default().push(p);
    }
    for idx in 0..instrs.len() {
        if let Some(ps) = arrivals_by_idx.get(&idx) {
            for &p in ps {
                pools.entry(p.kind()).or_default().alloc(p);
            }
        }
        if let Some(ps) = releases.get(&idx) {
            for p in ps {
                if let Some(pool) = pools.get_mut(&p.kind()) {
                    pool.release(p);
                }
            }
        }
    }

    // Slot byte sizes: the maximum block size of the kind (uniform slots in
    // one contiguous buffer, as in the paper).
    let max_q = layout
        .token_blocks
        .iter()
        .map(|t| t.q_bytes)
        .max()
        .unwrap_or(0);
    let max_kv = layout
        .token_blocks
        .iter()
        .map(|t| t.kv_bytes)
        .max()
        .unwrap_or(0);
    let max_o = layout
        .token_blocks
        .iter()
        .map(|t| t.o_bytes)
        .max()
        .unwrap_or(0);

    let peak = |k: PayloadKind| pools.get(&k).map_or(0, |p| p.peak);
    let q_slots = peak(PayloadKind::Q);
    let kv_slots = peak(PayloadKind::Kv);
    let partial_slots = peak(PayloadKind::PartialO)
        + peak(PayloadKind::DO)
        + peak(PayloadKind::PartialDq)
        + peak(PayloadKind::PartialDkv);

    let owned_bytes: u64 = owned_token_blocks
        .iter()
        .map(|&t| layout.token_blocks[t as usize].total_bytes())
        .sum();
    let fetched_bytes = q_slots as u64 * max_q
        + kv_slots as u64 * max_kv
        + peak(PayloadKind::PartialO) as u64 * max_o
        + peak(PayloadKind::DO) as u64 * max_o
        + peak(PayloadKind::PartialDq) as u64 * max_q
        + peak(PayloadKind::PartialDkv) as u64 * max_kv;

    BufferStats {
        q_slots,
        kv_slots,
        partial_slots,
        owned_bytes,
        fetched_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CommId, Transfer};
    use dcp_blocks::{BlockConfig, CompBlockId, TokenBlockId};
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout() -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(2048, MaskSpec::Causal)],
        )
        .unwrap()
    }

    #[test]
    fn slot_pool_reuses_freed_indices() {
        let mut pool = SlotPool::default();
        let a = pool.alloc(Payload::Q(TokenBlockId(0)));
        let b = pool.alloc(Payload::Q(TokenBlockId(1)));
        assert_ne!(a, b);
        pool.release(&Payload::Q(TokenBlockId(0)));
        let c = pool.alloc(Payload::Q(TokenBlockId(2)));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(pool.peak, 2);
    }

    #[test]
    fn sequential_fetch_use_release_keeps_peak_low() {
        let l = layout();
        // Device 1 fetches KV(0), uses it, then fetches KV(2), uses it.
        // Comp block ids: find comp with kv_block 0 and q_block 1 etc. For
        // simplicity use comp blocks 1 (q1,kv0) and 5 (q2... ) — look up.
        let find = |q: u32, kv: u32| {
            CompBlockId(
                l.comp_blocks
                    .iter()
                    .position(|c| c.q_block == TokenBlockId(q) && c.kv_block == TokenBlockId(kv))
                    .unwrap() as u32,
            )
        };
        let c10 = find(1, 0);
        let c21 = find(2, 1);
        let comms = vec![
            CommOp {
                transfers: vec![Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(0)),
                    bytes: 10,
                }],
            },
            CommOp {
                transfers: vec![Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(1)),
                    bytes: 10,
                }],
            },
        ];
        let instrs = vec![
            Instr::CommWait(CommId(0)),
            Instr::Attn {
                items: vec![c10],
                flops: 1,
            },
            Instr::CommWait(CommId(1)),
            Instr::Attn {
                items: vec![c21],
                flops: 1,
            },
        ];
        let stats = compute_stats(&l, &comms, 1, &instrs, &[4 % l.token_blocks.len() as u32]);
        // KV(0) is released after instruction 1, before KV(1) arrives:
        // peak 1 slot... but note arrival at idx 2 comes after release at
        // idx 1, so the pool holds at most 1 live slot — yet peak counts
        // allocations high-water: expect 1.
        assert_eq!(stats.kv_slots, 1);
        assert_eq!(stats.q_slots, 0);
    }

    #[test]
    fn overlapping_fetches_need_two_slots() {
        let l = layout();
        let comms = vec![CommOp {
            transfers: vec![
                Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(0)),
                    bytes: 10,
                },
                Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(1)),
                    bytes: 10,
                },
            ],
        }];
        let c10 = CompBlockId(
            l.comp_blocks
                .iter()
                .position(|c| c.q_block == TokenBlockId(1) && c.kv_block == TokenBlockId(0))
                .unwrap() as u32,
        );
        let instrs = vec![
            Instr::CommWait(CommId(0)),
            Instr::Attn {
                items: vec![c10],
                flops: 1,
            },
        ];
        let stats = compute_stats(&l, &comms, 1, &instrs, &[]);
        assert_eq!(stats.kv_slots, 2);
        assert_eq!(stats.owned_bytes, 0);
        assert!(stats.fetched_bytes > 0);
    }

    #[test]
    fn owned_bytes_counted() {
        let l = layout();
        let stats = compute_stats(&l, &[], 0, &[], &[0, 1]);
        let expect = l.token_blocks[0].total_bytes() + l.token_blocks[1].total_bytes();
        assert_eq!(stats.owned_bytes, expect);
        assert_eq!(stats.peak_bytes(), expect);
    }
}
