//! Device placement of token blocks and computation blocks.

use dcp_blocks::{BatchLayout, CompBlockId, TokenBlockId};
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

/// The device assignment of every block of a batch.
///
/// `token_to_dev[t]` is the device owning token block `t` (its Q, K, V and O
/// slices, and hence those tokens of the model input); `comp_to_dev[c]` is
/// the device executing computation block `c`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Number of devices the placement targets.
    pub num_devices: u32,
    /// Owner device of each token block.
    pub token_to_dev: Vec<u32>,
    /// Executing device of each computation block.
    pub comp_to_dev: Vec<u32>,
}

impl Placement {
    /// Validates shape and ranges against `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] on length mismatch or an
    /// out-of-range device.
    pub fn validate(&self, layout: &BatchLayout) -> DcpResult<()> {
        if self.token_to_dev.len() != layout.token_blocks.len() {
            return Err(DcpError::invalid_argument(format!(
                "placement has {} token entries, layout has {}",
                self.token_to_dev.len(),
                layout.token_blocks.len()
            )));
        }
        if self.comp_to_dev.len() != layout.comp_blocks.len() {
            return Err(DcpError::invalid_argument(format!(
                "placement has {} comp entries, layout has {}",
                self.comp_to_dev.len(),
                layout.comp_blocks.len()
            )));
        }
        if let Some(&d) = self
            .token_to_dev
            .iter()
            .chain(self.comp_to_dev.iter())
            .find(|&&d| d >= self.num_devices)
        {
            return Err(DcpError::invalid_argument(format!(
                "device {d} out of range ({} devices)",
                self.num_devices
            )));
        }
        Ok(())
    }

    /// Owner of token block `t`.
    #[inline]
    pub fn token_dev(&self, t: TokenBlockId) -> u32 {
        self.token_to_dev[t.0 as usize]
    }

    /// Executor of computation block `c`.
    #[inline]
    pub fn comp_dev(&self, c: CompBlockId) -> u32 {
        self.comp_to_dev[c.0 as usize]
    }

    /// A trivial placement putting everything on device 0 of `n` devices.
    pub fn all_on_zero(layout: &BatchLayout, n: u32) -> Self {
        Placement {
            num_devices: n,
            token_to_dev: vec![0; layout.token_blocks.len()],
            comp_to_dev: vec![0; layout.comp_blocks.len()],
        }
    }

    /// Per-device computation FLOPs under this placement.
    pub fn comp_loads(&self, layout: &BatchLayout) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_devices as usize];
        for (i, c) in layout.comp_blocks.iter().enumerate() {
            loads[self.comp_to_dev[i] as usize] += c.flops;
        }
        loads
    }

    /// Per-device token counts (memory proxy) under this placement.
    pub fn token_loads(&self, layout: &BatchLayout) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_devices as usize];
        for (i, t) in layout.token_blocks.iter().enumerate() {
            loads[self.token_to_dev[i] as usize] += t.len as u64;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout() -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(1024, MaskSpec::Causal)],
        )
        .unwrap()
    }

    #[test]
    fn validate_checks_shapes_and_ranges() {
        let l = layout();
        let p = Placement::all_on_zero(&l, 2);
        assert!(p.validate(&l).is_ok());

        let mut bad = p.clone();
        bad.token_to_dev.pop();
        assert!(bad.validate(&l).is_err());

        let mut bad = p.clone();
        bad.comp_to_dev[0] = 9;
        assert!(bad.validate(&l).is_err());
    }

    #[test]
    fn loads_accumulate() {
        let l = layout();
        // 2 token blocks, 3 comp blocks (causal 2x2 lower triangle).
        assert_eq!(l.comp_blocks.len(), 3);
        let p = Placement {
            num_devices: 2,
            token_to_dev: vec![0, 1],
            comp_to_dev: vec![0, 1, 1],
        };
        let cl = p.comp_loads(&l);
        assert_eq!(cl[0], l.comp_blocks[0].flops);
        assert_eq!(cl[1], l.comp_blocks[1].flops + l.comp_blocks[2].flops);
        let tl = p.token_loads(&l);
        assert_eq!(tl, vec![512, 512]);
    }
}
