//! Device placement of token blocks and computation blocks.

use dcp_blocks::{BatchLayout, CompBlockId, TokenBlockId};
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

/// The device assignment of every block of a batch.
///
/// `token_to_dev[t]` is the device owning token block `t` (its Q, K, V and O
/// slices, and hence those tokens of the model input); `comp_to_dev[c]` is
/// the device executing computation block `c`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Number of devices the placement targets.
    pub num_devices: u32,
    /// Owner device of each token block.
    pub token_to_dev: Vec<u32>,
    /// Executing device of each computation block.
    pub comp_to_dev: Vec<u32>,
}

impl Placement {
    /// Validates shape and ranges against `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] on length mismatch or an
    /// out-of-range device.
    pub fn validate(&self, layout: &BatchLayout) -> DcpResult<()> {
        if self.token_to_dev.len() != layout.token_blocks.len() {
            return Err(DcpError::invalid_argument(format!(
                "placement has {} token entries, layout has {}",
                self.token_to_dev.len(),
                layout.token_blocks.len()
            )));
        }
        if self.comp_to_dev.len() != layout.comp_blocks.len() {
            return Err(DcpError::invalid_argument(format!(
                "placement has {} comp entries, layout has {}",
                self.comp_to_dev.len(),
                layout.comp_blocks.len()
            )));
        }
        if let Some(&d) = self
            .token_to_dev
            .iter()
            .chain(self.comp_to_dev.iter())
            .find(|&&d| d >= self.num_devices)
        {
            return Err(DcpError::invalid_argument(format!(
                "device {d} out of range ({} devices)",
                self.num_devices
            )));
        }
        Ok(())
    }

    /// Owner of token block `t`.
    #[inline]
    pub fn token_dev(&self, t: TokenBlockId) -> u32 {
        self.token_to_dev[t.0 as usize]
    }

    /// Executor of computation block `c`.
    #[inline]
    pub fn comp_dev(&self, c: CompBlockId) -> u32 {
        self.comp_to_dev[c.0 as usize]
    }

    /// A trivial placement putting everything on device 0 of `n` devices.
    pub fn all_on_zero(layout: &BatchLayout, n: u32) -> Self {
        Placement {
            num_devices: n,
            token_to_dev: vec![0; layout.token_blocks.len()],
            comp_to_dev: vec![0; layout.comp_blocks.len()],
        }
    }

    /// A deterministic greedy placement for `n` devices: computation blocks
    /// are assigned longest-processing-time-first to the least-loaded device
    /// (balancing FLOPs within one block of granularity), then each token
    /// block goes to the device executing the most of its consumers (Q + KV),
    /// minimizing communication locally. This is the planner's first
    /// fallback tier when hypergraph partitioning is infeasible: it
    /// guarantees good compute balance but optimizes communication only
    /// locally.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] if `n == 0`.
    pub fn greedy(layout: &BatchLayout, n: u32) -> DcpResult<Self> {
        if n == 0 {
            return Err(DcpError::invalid_argument(
                "greedy placement needs at least one device",
            ));
        }
        // LPT: heaviest computation block first, ties broken by block id so
        // the result is deterministic.
        let mut order: Vec<usize> = (0..layout.comp_blocks.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(layout.comp_blocks[i].flops), i));
        let mut comp_to_dev = vec![0u32; layout.comp_blocks.len()];
        let mut loads = vec![0u64; n as usize];
        for i in order {
            let dev = loads
                .iter()
                .enumerate()
                .min_by_key(|&(d, &l)| (l, d))
                .map(|(d, _)| d)
                .unwrap_or(0);
            comp_to_dev[i] = dev as u32;
            loads[dev] += layout.comp_blocks[i].flops;
        }
        // Token blocks follow their consumers: pick the device executing the
        // largest FLOP share of this block's Q and KV consumers (so the
        // heaviest transfers become local). Blocks without consumers spread
        // round-robin to keep token memory balanced.
        let mut token_to_dev = vec![0u32; layout.token_blocks.len()];
        for (t, dev) in token_to_dev.iter_mut().enumerate() {
            let mut weight = vec![0u64; n as usize];
            for c in layout.q_consumers[t].iter().chain(&layout.kv_consumers[t]) {
                let d = comp_to_dev[c.0 as usize] as usize;
                weight[d] += layout.comp_blocks[c.0 as usize].flops;
            }
            *dev = match weight
                .iter()
                .enumerate()
                .max_by_key(|&(d, &w)| (w, std::cmp::Reverse(d)))
            {
                Some((d, &w)) if w > 0 => d as u32,
                _ => (t % n as usize) as u32,
            };
        }
        Ok(Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        })
    }

    /// Per-device computation FLOPs under this placement.
    pub fn comp_loads(&self, layout: &BatchLayout) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_devices as usize];
        for (i, c) in layout.comp_blocks.iter().enumerate() {
            loads[self.comp_to_dev[i] as usize] += c.flops;
        }
        loads
    }

    /// Per-device token counts (memory proxy) under this placement.
    pub fn token_loads(&self, layout: &BatchLayout) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_devices as usize];
        for (i, t) in layout.token_blocks.iter().enumerate() {
            loads[self.token_to_dev[i] as usize] += t.len as u64;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout() -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(1024, MaskSpec::Causal)],
        )
        .unwrap()
    }

    #[test]
    fn validate_checks_shapes_and_ranges() {
        let l = layout();
        let p = Placement::all_on_zero(&l, 2);
        assert!(p.validate(&l).is_ok());

        let mut bad = p.clone();
        bad.token_to_dev.pop();
        assert!(bad.validate(&l).is_err());

        let mut bad = p.clone();
        bad.comp_to_dev[0] = 9;
        assert!(bad.validate(&l).is_err());
    }

    #[test]
    fn greedy_is_valid_balanced_and_deterministic() {
        let l = BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(8192, MaskSpec::Causal), (4096, MaskSpec::Causal)],
        )
        .unwrap();
        let a = Placement::greedy(&l, 4).unwrap();
        a.validate(&l).unwrap();
        let b = Placement::greedy(&l, 4).unwrap();
        assert_eq!(a, b, "greedy placement must be deterministic");
        // LPT bound: max load is within one block of the average.
        let loads = a.comp_loads(&l);
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let max_block = l.comp_blocks.iter().map(|c| c.flops).max().unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(
            (max as f64) <= avg + max_block as f64,
            "max {max} vs avg {avg} + block {max_block}"
        );
    }

    #[test]
    fn greedy_rejects_zero_devices() {
        let l = layout();
        assert!(Placement::greedy(&l, 0).is_err());
    }

    #[test]
    fn greedy_single_device_is_local() {
        let l = layout();
        let p = Placement::greedy(&l, 1).unwrap();
        assert!(p.token_to_dev.iter().all(|&d| d == 0));
        assert!(p.comp_to_dev.iter().all(|&d| d == 0));
    }

    #[test]
    fn loads_accumulate() {
        let l = layout();
        // 2 token blocks, 3 comp blocks (causal 2x2 lower triangle).
        assert_eq!(l.comp_blocks.len(), 3);
        let p = Placement {
            num_devices: 2,
            token_to_dev: vec![0, 1],
            comp_to_dev: vec![0, 1, 1],
        };
        let cl = p.comp_loads(&l);
        assert_eq!(cl[0], l.comp_blocks[0].flops);
        assert_eq!(cl[1], l.comp_blocks[1].flops + l.comp_blocks[2].flops);
        let tl = p.token_loads(&l);
        assert_eq!(tl, vec![512, 512]);
    }
}
