//! Plan inspection: per-device statistics and the communication matrix.
//!
//! [`PlanReport`] summarizes a [`crate::PhasePlan`] without executing it —
//! what each device computes, sends, receives and buffers — for harness
//! output, debugging and the memory-balance experiment.

use serde::{Deserialize, Serialize};

use crate::plan::{Instr, PhasePlan};

/// Per-device summary of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Bytes this device sends.
    pub sent_bytes: u64,
    /// Bytes this device receives.
    pub recv_bytes: u64,
    /// Attention FLOPs executed here.
    pub attn_flops: u64,
    /// Fused attention kernel invocations.
    pub attn_calls: u32,
    /// Bytes moved by reductions.
    pub reduce_bytes: u64,
    /// Bytes moved by copies.
    pub copy_bytes: u64,
    /// `CommWait` instructions (synchronization points).
    pub waits: u32,
    /// Peak buffer bytes (owned blocks + fetched slots).
    pub peak_buffer_bytes: u64,
}

/// Per-division summary on one device: how one slice of the
/// compute/communication pipeline is loaded. A division is closed by its
/// fused `Attn`/`AttnBwd` call; `CommLaunch`/`CommWait` issued before that
/// call (prefetching the *next* division's data) are attributed to the
/// division they run under, and trailing `Reduce`/`Copy` work lands on the
/// last division.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DivisionReport {
    /// Division index within the device's stream.
    pub division: u32,
    /// FLOPs of this division's fused attention call.
    pub attn_flops: u64,
    /// Computation blocks in the fused call.
    pub attn_items: u32,
    /// Bytes launched (sent) while this division was current.
    pub launch_bytes: u64,
    /// Bytes moved by reductions in this division.
    pub reduce_bytes: u64,
    /// Bytes moved by copies in this division.
    pub copy_bytes: u64,
    /// `CommWait` synchronization points in this division.
    pub waits: u32,
}

/// A full phase summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// One row per device rank.
    pub devices: Vec<DeviceReport>,
    /// `comm_matrix[from][to]`: bytes moved between each device pair.
    pub comm_matrix: Vec<Vec<u64>>,
    /// `divisions[device]`: the per-division breakdown of each device's
    /// stream, so imbalance can be inspected per division (the granularity
    /// the paper's §4.3 overlap objective operates at), not just per device.
    pub divisions: Vec<Vec<DivisionReport>>,
}

impl PlanReport {
    /// Builds the report from a phase.
    pub fn from_phase(phase: &PhasePlan) -> Self {
        let n = phase.devices.len();
        let mut devices = vec![DeviceReport::default(); n];
        let mut comm_matrix = vec![vec![0u64; n]; n];
        let mut divisions: Vec<Vec<DivisionReport>> = vec![Vec::new(); n];
        for op in &phase.comms {
            for tr in &op.transfers {
                if (tr.from as usize) < n && (tr.to as usize) < n {
                    comm_matrix[tr.from as usize][tr.to as usize] += tr.bytes;
                    devices[tr.from as usize].sent_bytes += tr.bytes;
                    devices[tr.to as usize].recv_bytes += tr.bytes;
                }
            }
        }
        for (d, stream) in phase.devices.iter().enumerate() {
            devices[d].peak_buffer_bytes = stream.buffer.peak_bytes();
            let mut cur = DivisionReport::default();
            let mut closed = false;
            for ins in &stream.instrs {
                match ins {
                    Instr::Attn { items, flops } | Instr::AttnBwd { items, flops } => {
                        devices[d].attn_flops += flops;
                        devices[d].attn_calls += 1;
                        // The fused attention call closes the division.
                        cur.attn_flops = *flops;
                        cur.attn_items = items.len() as u32;
                        divisions[d].push(cur);
                        cur = DivisionReport {
                            division: divisions[d].len() as u32,
                            ..Default::default()
                        };
                        closed = true;
                    }
                    Instr::Reduce { bytes, .. } => {
                        devices[d].reduce_bytes += bytes;
                        cur.reduce_bytes += bytes;
                    }
                    Instr::Copy { bytes } => {
                        devices[d].copy_bytes += bytes;
                        cur.copy_bytes += bytes;
                    }
                    Instr::CommWait(cid) => {
                        devices[d].waits += 1;
                        cur.waits += 1;
                        let _ = cid;
                    }
                    Instr::CommLaunch(cid) => {
                        cur.launch_bytes += phase.comms[cid.0 as usize].bytes();
                    }
                }
            }
            // Trailing work after the last fused call (final reductions,
            // copies, waits) belongs to the last division.
            if (cur.launch_bytes | cur.reduce_bytes | cur.copy_bytes) != 0 || cur.waits != 0 {
                match (closed, divisions[d].last_mut()) {
                    (true, Some(last)) => {
                        last.launch_bytes += cur.launch_bytes;
                        last.reduce_bytes += cur.reduce_bytes;
                        last.copy_bytes += cur.copy_bytes;
                        last.waits += cur.waits;
                    }
                    _ => divisions[d].push(cur),
                }
            }
        }
        PlanReport {
            devices,
            comm_matrix,
            divisions,
        }
    }

    /// Max-over-devices / mean ratio of a per-device metric (1.0 = perfectly
    /// balanced). Returns 1.0 when the metric is all-zero.
    pub fn imbalance(&self, metric: impl Fn(&DeviceReport) -> u64) -> f64 {
        let vals: Vec<u64> = self.devices.iter().map(metric).collect();
        let max = *vals.iter().max().unwrap_or(&0) as f64;
        let mean = vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Renders a compact text summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("dev    attn_TFLOP  calls  sent_MiB  recv_MiB  buffer_MiB  waits\n");
        for (d, r) in self.devices.iter().enumerate() {
            out.push_str(&format!(
                "{d:<6} {:>10.3} {:>6} {:>9.1} {:>9.1} {:>11.1} {:>6}\n",
                r.attn_flops as f64 / 1e12,
                r.attn_calls,
                r.sent_bytes as f64 / (1 << 20) as f64,
                r.recv_bytes as f64 / (1 << 20) as f64,
                r.peak_buffer_bytes as f64 / (1 << 20) as f64,
                r.waits,
            ));
        }
        out.push_str(&format!(
            "imbalance: flops {:.2}, memory {:.2}, comm {:.2}\n",
            self.imbalance(|r| r.attn_flops),
            self.imbalance(|r| r.peak_buffer_bytes),
            self.imbalance(|r| r.sent_bytes + r.recv_bytes),
        ));
        out
    }

    /// Renders the per-division breakdown as CSV (one row per device ×
    /// division) for plotting imbalance at division granularity. The header
    /// is `device,division,attn_flops,attn_items,launch_bytes,reduce_bytes,
    /// copy_bytes,waits`.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "device,division,attn_flops,attn_items,launch_bytes,reduce_bytes,copy_bytes,waits\n",
        );
        for (d, divs) in self.divisions.iter().enumerate() {
            for r in divs {
                out.push_str(&format!(
                    "{d},{},{},{},{},{},{},{}\n",
                    r.division,
                    r.attn_flops,
                    r.attn_items,
                    r.launch_bytes,
                    r.reduce_bytes,
                    r.copy_bytes,
                    r.waits,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::{BatchLayout, BlockConfig};
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn sample_phase() -> (BatchLayout, crate::Placement, crate::ExecutionPlan) {
        let layout = BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(4096, MaskSpec::Causal)],
        )
        .unwrap();
        let n = 4u32;
        let token_to_dev: Vec<u32> = (0..layout.token_blocks.len() as u32)
            .map(|i| i % n)
            .collect();
        let comp_to_dev: Vec<u32> = layout
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        let placement = crate::Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        };
        let plan =
            crate::build_plan(&layout, &placement, &crate::ScheduleConfig::default()).unwrap();
        (layout, placement, plan)
    }

    #[test]
    fn report_totals_match_phase_accounting() {
        let (layout, placement, plan) = sample_phase();
        let report = PlanReport::from_phase(&plan.fwd);
        let sent: u64 = report.devices.iter().map(|d| d.sent_bytes).sum();
        let recv: u64 = report.devices.iter().map(|d| d.recv_bytes).sum();
        assert_eq!(sent, plan.fwd.total_comm_bytes());
        assert_eq!(recv, plan.fwd.total_comm_bytes());
        let flops: u64 = report.devices.iter().map(|d| d.attn_flops).sum();
        assert_eq!(flops, layout.total_flops());
        let _ = placement;
        // Matrix row/col sums equal device send/recv.
        for d in 0..4usize {
            let row: u64 = report.comm_matrix[d].iter().sum();
            assert_eq!(row, report.devices[d].sent_bytes);
            let col: u64 = report.comm_matrix.iter().map(|r| r[d]).sum();
            assert_eq!(col, report.devices[d].recv_bytes);
        }
        // No self-communication.
        for d in 0..4usize {
            assert_eq!(report.comm_matrix[d][d], 0);
        }
    }

    #[test]
    fn divisions_reconcile_with_device_totals() {
        let (_, _, plan) = sample_phase();
        let report = PlanReport::from_phase(&plan.fwd);
        assert_eq!(report.divisions.len(), report.devices.len());
        for (d, dev) in report.devices.iter().enumerate() {
            let divs = &report.divisions[d];
            assert_eq!(divs.len() as u32, dev.attn_calls);
            // Division indices are dense and in order.
            for (i, r) in divs.iter().enumerate() {
                assert_eq!(r.division, i as u32);
            }
            // Per-division sums reconcile with the device aggregates.
            assert_eq!(
                divs.iter().map(|r| r.attn_flops).sum::<u64>(),
                dev.attn_flops
            );
            assert_eq!(
                divs.iter().map(|r| r.reduce_bytes).sum::<u64>(),
                dev.reduce_bytes
            );
            assert_eq!(
                divs.iter().map(|r| r.copy_bytes).sum::<u64>(),
                dev.copy_bytes
            );
            assert_eq!(divs.iter().map(|r| r.waits).sum::<u32>(), dev.waits);
        }
        // Launch bytes across all divisions cover every comm op once.
        let launched: u64 = report
            .divisions
            .iter()
            .flatten()
            .map(|r| r.launch_bytes)
            .sum();
        assert_eq!(launched, plan.fwd.total_comm_bytes());
    }

    #[test]
    fn csv_has_one_row_per_division() {
        let (_, _, plan) = sample_phase();
        let report = PlanReport::from_phase(&plan.fwd);
        let csv = report.render_csv();
        let total_divs: usize = report.divisions.iter().map(Vec::len).sum();
        assert_eq!(csv.lines().count(), 1 + total_divs);
        assert!(csv.starts_with(
            "device,division,attn_flops,attn_items,launch_bytes,reduce_bytes,copy_bytes,waits\n"
        ));
        // Every data row has the full column count.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 8);
        }
    }

    #[test]
    fn render_format_is_unchanged_by_divisions() {
        let (_, _, plan) = sample_phase();
        let report = PlanReport::from_phase(&plan.fwd);
        let text = report.render();
        // Header + one row per device + the imbalance footer, exactly.
        assert_eq!(text.lines().count(), 2 + report.devices.len());
        assert!(text.starts_with("dev    attn_TFLOP"));
    }

    #[test]
    fn render_and_imbalance() {
        let (_, _, plan) = sample_phase();
        let report = PlanReport::from_phase(&plan.fwd);
        let text = report.render();
        assert!(text.contains("imbalance"));
        assert!(report.imbalance(|r| r.attn_flops) >= 1.0);
        // All-zero metric is defined as balanced.
        assert_eq!(report.imbalance(|_| 0), 1.0);
    }
}
