//! Division scheduling, buffer management and the execution-plan IR
//! (paper Sec. 4.3 and Sec. 5).
//!
//! Given a [`dcp_blocks::BatchLayout`] and a [`Placement`] (the device
//! assignment of every token block and computation block, produced by the
//! hypergraph partitioner or by a baseline), this crate:
//!
//! 1. derives the required communication (input fetches and output partial
//!    returns, deduplicated per destination device),
//! 2. groups each device's computation blocks into `T` *divisions* with the
//!    paper's greedy heuristic (Listing 3), so the communication of division
//!    `i+1` overlaps the computation of division `i`,
//! 3. emits per-device instruction streams over the paper's five
//!    instructions — blockwise attention, blockwise reduction, blockwise
//!    copy, communication launch, communication wait — for both the forward
//!    and the backward pass, and
//! 4. replays the streams through a [`buffer::BufferManager`] to account for
//!    peak block-buffer memory with slot reuse.
//!
//! The resulting [`ExecutionPlan`] is consumed by the numerical executor
//! (`dcp-exec`) and by the cluster simulator (`dcp-sim`), and serializes to
//! JSON for the dataloader-to-executor handoff the paper implements with a
//! distributed KV store.

pub mod buffer;
pub mod passes;
pub mod placement;
pub mod plan;
pub mod report;
pub mod schedule;
pub mod verify;

pub use buffer::BufferStats;
pub use passes::{Pass, PassConfig, PassCx, PassManager, PassOutcome};
pub use placement::Placement;
pub use plan::{
    CommId, CommOp, DeviceStream, ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan,
    ReduceItem, Transfer,
};
pub use report::{DeviceReport, DivisionReport, PlanReport};
pub use schedule::{build_plan, ScheduleConfig};
pub use verify::{
    verify_phase, verify_plan, verify_structure, Diagnostic, VerifyCtx, ViolationKind,
};
