//! Plan-IR optimizer: a compiler-style pass pipeline over rendered
//! instruction streams.
//!
//! Each [`Pass`] rewrites one [`PhasePlan`] in place and reports what it
//! changed as a serializable [`PassOutcome`]. The [`PassManager`] runs the
//! configured passes in a fixed order:
//!
//! 1. **dead-comm elimination** ([`DeadCommElim`]): removes transfers whose
//!    destination never waits for them or never reads them (e.g. the
//!    prefetch a recovery patch truncates past), then drops launches and
//!    waits that no longer move anything for their device. Comm ops are
//!    never renumbered — emptied ops stay in the table so external comm-id
//!    references (salvage contexts, spliced recovery streams) stay valid.
//! 2. **copy/reduction coalescing** ([`CoalesceCopyReduce`]): merges
//!    adjacent `Copy` instructions and folds `Reduce` instructions
//!    separated only by comm instructions into one fused reduction (item
//!    order preserved, so merged outputs stay bitwise identical).
//! 3. **launch fusion** ([`FuseCommLaunch`]): fuses small input-fetch ops
//!    with the same source route into the preceding fetch of the same
//!    device, trading pipelining of tiny messages for fewer per-op
//!    overheads.
//! 4. **wait sinking** ([`SinkCommWait`]): moves every `CommWait` to the
//!    latest position before its first reader, widening the window in which
//!    communication overlaps compute.
//!
//! All four passes preserve the verifier contract (`crate::verify`) and the
//! executor's merged outputs bitwise: they only delete provably-unread
//! data, reorder operations whose relative order the executor's semantics
//! do not observe, or re-batch transfers whose arrival order is already
//! unordered within a wait.

use std::collections::{HashMap, HashSet};

use dcp_blocks::BatchLayout;
use serde::{Deserialize, Serialize};

use crate::buffer::compute_stats;
use crate::placement::Placement;
use crate::plan::{ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan};
use crate::verify::instr_reads;

/// Configuration of the pass pipeline.
///
/// The planner's default keeps the pipeline **disabled**: downstream
/// consumers that splice streams (the recovery patcher) assume the
/// scheduler's canonical emission shape. Callers that only execute or
/// simulate plans opt in with [`PassConfig::optimize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Master switch; `false` skips the pipeline entirely.
    pub enabled: bool,
    /// Run dead-communication elimination.
    pub dead_comm: bool,
    /// Run copy/reduction coalescing.
    pub coalesce: bool,
    /// Run small-message launch fusion.
    pub fuse: bool,
    /// Run wait sinking.
    pub sink: bool,
    /// Launch fusion cap: two fetch ops fuse only while their combined
    /// bytes stay at or under this threshold — the bound is inclusive
    /// (fusing large fetches would serialize the division pipeline they
    /// were split for).
    pub fuse_threshold_bytes: u64,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            enabled: false,
            dead_comm: true,
            coalesce: true,
            fuse: true,
            sink: true,
            fuse_threshold_bytes: 256 * 1024,
        }
    }
}

impl PassConfig {
    /// The full pipeline, enabled.
    pub fn optimize() -> Self {
        PassConfig {
            enabled: true,
            ..PassConfig::default()
        }
    }
}

/// What one pass did to one phase. All counters are zero when the pass
/// found nothing to change.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PassOutcome {
    /// Pass name (`dead_comm`, `coalesce`, `fuse_launch`, `sink_wait`).
    pub pass: String,
    /// Phase label (`fwd`, `bwd`, or a caller-supplied label).
    pub phase: String,
    /// Total phase comm bytes before the pass.
    pub comm_bytes_before: u64,
    /// Total phase comm bytes after the pass.
    pub comm_bytes_after: u64,
    /// Transfers deleted.
    pub transfers_removed: u64,
    /// Instructions deleted (launches/waits dropped, instrs merged away).
    pub instrs_removed: u64,
    /// Comm ops folded into an earlier op.
    pub ops_fused: u64,
    /// Reduce instructions merged into a later reduce.
    pub reduces_coalesced: u64,
    /// Copy instructions merged into a neighbor.
    pub copies_coalesced: u64,
    /// CommWait instructions moved later.
    pub waits_sunk: u64,
}

impl PassOutcome {
    /// Comm bytes this pass removed from the phase.
    pub fn comm_bytes_saved(&self) -> u64 {
        self.comm_bytes_before.saturating_sub(self.comm_bytes_after)
    }

    /// Whether the pass changed anything.
    pub fn changed(&self) -> bool {
        self.transfers_removed
            + self.instrs_removed
            + self.ops_fused
            + self.reduces_coalesced
            + self.copies_coalesced
            + self.waits_sunk
            > 0
    }
}

/// Context shared by every pass invocation on one phase.
pub struct PassCx<'a> {
    /// Block decomposition the streams reference.
    pub layout: &'a BatchLayout,
    /// Comm ids the passes must leave untouched (no deletion, fusion or
    /// reordering): a recovery patch's salvage ops, whose waits carry
    /// install-accumulator side effects the passes cannot see.
    pub protected: &'a HashSet<u32>,
    /// Byte cap for launch fusion.
    pub fuse_threshold_bytes: u64,
}

/// One rewrite over a phase's instruction streams.
pub trait Pass {
    /// Stable pass name used in reports and observability spans.
    fn name(&self) -> &'static str;
    /// Rewrites `phase` in place, returning what changed.
    fn run(&self, phase: &mut PhasePlan, cx: &PassCx<'_>) -> PassOutcome;
}

fn outcome(pass: &dyn Pass, phase_bytes_before: u64, phase: &PhasePlan) -> PassOutcome {
    PassOutcome {
        pass: pass.name().to_string(),
        comm_bytes_before: phase_bytes_before,
        comm_bytes_after: phase.total_comm_bytes(),
        ..PassOutcome::default()
    }
}

/// Dead-communication elimination (see module docs).
pub struct DeadCommElim;

impl Pass for DeadCommElim {
    fn name(&self) -> &'static str {
        "dead_comm"
    }

    fn run(&self, phase: &mut PhasePlan, cx: &PassCx<'_>) -> PassOutcome {
        let before = phase.total_comm_bytes();
        // Per device: which ops it waits on, and which payloads it reads.
        let mut reads: HashMap<u32, HashSet<Payload>> = HashMap::new();
        let mut waits_by_dev: HashMap<u32, HashSet<u32>> = HashMap::new();
        for stream in &phase.devices {
            let r = reads.entry(stream.device).or_default();
            let w = waits_by_dev.entry(stream.device).or_default();
            for ins in &stream.instrs {
                if let Instr::CommWait(cid) = ins {
                    w.insert(cid.0);
                }
                instr_reads(cx.layout, ins, r);
            }
        }
        let empty_reads = HashSet::new();
        let empty_waits = HashSet::new();
        let mut transfers_removed = 0u64;
        for (cid, op) in phase.comms.iter_mut().enumerate() {
            if cx.protected.contains(&(cid as u32)) {
                continue;
            }
            let n0 = op.transfers.len();
            op.transfers.retain(|tr| {
                let dest_waits = waits_by_dev.get(&tr.to).unwrap_or(&empty_waits);
                if !dest_waits.contains(&(cid as u32)) {
                    return false; // never waited: the data can never arrive
                }
                let dest_reads = reads.get(&tr.to).unwrap_or(&empty_reads);
                dest_reads.contains(&tr.payload)
            });
            transfers_removed += (n0 - op.transfers.len()) as u64;
        }
        // Drop launches/waits that no longer move anything for their device.
        let mut instrs_removed = 0u64;
        if transfers_removed > 0 {
            for stream in &mut phase.devices {
                let dev = stream.device;
                let n0 = stream.instrs.len();
                stream.instrs.retain(|ins| match ins {
                    Instr::CommLaunch(cid) => {
                        // Keep the launch while the op still carries any
                        // partial: partials are producer-launched, and in a
                        // recovery patch the launcher can be a salvage
                        // stand-in whose transfers are still labelled with
                        // the original (failed) producer — `from`/`to`
                        // alone cannot prove the launch dead.
                        cx.protected.contains(&cid.0)
                            || phase.comms[cid.0 as usize].transfers.iter().any(|t| {
                                t.to == dev
                                    || t.from == dev
                                    || !matches!(
                                        t.payload.kind(),
                                        PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO
                                    )
                            })
                    }
                    Instr::CommWait(cid) => {
                        cx.protected.contains(&cid.0)
                            || phase.comms[cid.0 as usize]
                                .transfers
                                .iter()
                                .any(|t| t.to == dev)
                    }
                    _ => true,
                });
                instrs_removed += (n0 - stream.instrs.len()) as u64;
            }
        }
        PassOutcome {
            transfers_removed,
            instrs_removed,
            ..outcome(self, before, phase)
        }
    }
}

/// Copy/reduction coalescing (see module docs).
pub struct CoalesceCopyReduce;

impl Pass for CoalesceCopyReduce {
    fn name(&self) -> &'static str {
        "coalesce"
    }

    fn run(&self, phase: &mut PhasePlan, _cx: &PassCx<'_>) -> PassOutcome {
        let before = phase.total_comm_bytes();
        let mut reduces_coalesced = 0u64;
        let mut copies_coalesced = 0u64;
        let mut instrs_removed = 0u64;
        for stream in &mut phase.devices {
            // Reduce carrying: a reduce slides past comm instructions and
            // copies (none of which read finalized outputs or accumulator
            // state) and merges into the next reduce it meets. Item order is
            // preserved — earlier items first — so merged reductions execute
            // the same per-target source order as before.
            let mut out: Vec<Instr> = Vec::with_capacity(stream.instrs.len());
            let mut carry: Option<(Vec<crate::plan::ReduceItem>, u64)> = None;
            for ins in stream.instrs.drain(..) {
                match ins {
                    Instr::Reduce { items, bytes } => {
                        carry = Some(match carry.take() {
                            None => (items, bytes),
                            Some((mut acc, b)) => {
                                reduces_coalesced += 1;
                                instrs_removed += 1;
                                acc.extend(items);
                                (acc, b + bytes)
                            }
                        });
                    }
                    Instr::CommWait(_) | Instr::CommLaunch(_) | Instr::Copy { .. } => {
                        out.push(ins);
                    }
                    Instr::Attn { .. } | Instr::AttnBwd { .. } => {
                        // Attention mutates accumulator state a pending
                        // reduce may read; flush before crossing it.
                        if let Some((items, bytes)) = carry.take() {
                            out.push(Instr::Reduce { items, bytes });
                        }
                        out.push(ins);
                    }
                }
            }
            if let Some((items, bytes)) = carry.take() {
                out.push(Instr::Reduce { items, bytes });
            }
            // Adjacent copies fold into one staging call.
            let mut merged: Vec<Instr> = Vec::with_capacity(out.len());
            for ins in out {
                if let (Some(Instr::Copy { bytes: b0 }), Instr::Copy { bytes }) =
                    (merged.last_mut(), &ins)
                {
                    *b0 += bytes;
                    copies_coalesced += 1;
                    instrs_removed += 1;
                    continue;
                }
                merged.push(ins);
            }
            stream.instrs = merged;
        }
        PassOutcome {
            reduces_coalesced,
            copies_coalesced,
            instrs_removed,
            ..outcome(self, before, phase)
        }
    }
}

/// Small-message launch fusion (see module docs).
pub struct FuseCommLaunch;

impl Pass for FuseCommLaunch {
    fn name(&self) -> &'static str {
        "fuse_launch"
    }

    fn run(&self, phase: &mut PhasePlan, cx: &PassCx<'_>) -> PassOutcome {
        let before = phase.total_comm_bytes();
        // Ops referenced by exactly one device (its receiver), input-only:
        // the scheduler's per-division fetch ops.
        let mut refs: HashMap<u32, HashSet<u32>> = HashMap::new();
        for stream in &phase.devices {
            for ins in &stream.instrs {
                if let Instr::CommLaunch(cid) | Instr::CommWait(cid) = ins {
                    refs.entry(cid.0).or_default().insert(stream.device);
                }
            }
        }
        let fusible = |cid: u32, dev: u32, phase: &PhasePlan| -> bool {
            if cx.protected.contains(&cid) {
                return false;
            }
            let op = &phase.comms[cid as usize];
            !op.transfers.is_empty()
                && op.transfers.iter().all(|t| {
                    t.to == dev
                        && matches!(
                            t.payload.kind(),
                            PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO
                        )
                })
                && refs
                    .get(&cid)
                    .is_some_and(|r| r.len() == 1 && r.contains(&dev))
        };
        let route = |cid: u32, phase: &PhasePlan| -> Vec<u32> {
            let mut srcs: Vec<u32> = phase.comms[cid as usize]
                .transfers
                .iter()
                .map(|t| t.from)
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            srcs
        };
        let mut ops_fused = 0u64;
        let mut instrs_removed = 0u64;
        for d in 0..phase.devices.len() {
            let dev = phase.devices[d].device;
            // Launch order of this device's fusible fetch ops.
            let launch_order: Vec<u32> = phase.devices[d]
                .instrs
                .iter()
                .filter_map(|ins| match ins {
                    Instr::CommLaunch(cid) if fusible(cid.0, dev, phase) => Some(cid.0),
                    _ => None,
                })
                .collect();
            let mut head: Option<u32> = None;
            let mut drop_ids: HashSet<u32> = HashSet::new();
            for cid in launch_order {
                let Some(h) = head else {
                    head = Some(cid);
                    continue;
                };
                let combined = phase.comms[h as usize].bytes() + phase.comms[cid as usize].bytes();
                if combined <= cx.fuse_threshold_bytes && route(cid, phase) == route(h, phase) {
                    let moved = std::mem::take(&mut phase.comms[cid as usize].transfers);
                    phase.comms[h as usize].transfers.extend(moved);
                    drop_ids.insert(cid);
                    ops_fused += 1;
                } else {
                    head = Some(cid);
                }
            }
            if !drop_ids.is_empty() {
                let n0 = phase.devices[d].instrs.len();
                phase.devices[d].instrs.retain(|ins| match ins {
                    Instr::CommLaunch(cid) | Instr::CommWait(cid) => !drop_ids.contains(&cid.0),
                    _ => true,
                });
                instrs_removed += (n0 - phase.devices[d].instrs.len()) as u64;
            }
        }
        PassOutcome {
            ops_fused,
            instrs_removed,
            ..outcome(self, before, phase)
        }
    }
}

/// Wait sinking (see module docs).
pub struct SinkCommWait;

impl Pass for SinkCommWait {
    fn name(&self) -> &'static str {
        "sink_wait"
    }

    fn run(&self, phase: &mut PhasePlan, cx: &PassCx<'_>) -> PassOutcome {
        let before = phase.total_comm_bytes();
        let mut waits_sunk = 0u64;
        for stream in &mut phase.devices {
            let dev = stream.device;
            let n = stream.instrs.len();
            // Per instruction: the payloads it reads.
            let reads: Vec<HashSet<Payload>> = stream
                .instrs
                .iter()
                .map(|ins| {
                    let mut r = HashSet::new();
                    instr_reads(cx.layout, ins, &mut r);
                    r
                })
                .collect();
            // Sort key: non-waits keep their slot (2*i); a movable wait
            // whose first reader sits at j sinks to just before it
            // (2*j - 1). Stable sort preserves the relative order of waits
            // sharing a reader and of everything else.
            let keys: Vec<usize> = stream
                .instrs
                .iter()
                .enumerate()
                .map(|(i, ins)| {
                    let Instr::CommWait(cid) = ins else {
                        return 2 * i;
                    };
                    if cx.protected.contains(&cid.0) {
                        return 2 * i;
                    }
                    let incoming: Vec<Payload> = phase.comms[cid.0 as usize]
                        .transfers
                        .iter()
                        .filter(|t| t.to == dev)
                        .map(|t| t.payload)
                        .collect();
                    if incoming.is_empty() {
                        return 2 * i;
                    }
                    match (i + 1..n).find(|&j| incoming.iter().any(|p| reads[j].contains(p))) {
                        Some(j) if 2 * j - 1 > 2 * i => {
                            waits_sunk += 1;
                            2 * j - 1
                        }
                        _ => 2 * i,
                    }
                })
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| keys[i]);
            if order.iter().enumerate().any(|(pos, &i)| pos != i) {
                let mut instrs = std::mem::take(&mut stream.instrs);
                let mut slot: Vec<Option<Instr>> = instrs.drain(..).map(Some).collect();
                stream.instrs = order
                    .into_iter()
                    .map(|i| slot[i].take().expect("each index used once"))
                    .collect();
            }
        }
        PassOutcome {
            waits_sunk,
            ..outcome(self, before, phase)
        }
    }
}

/// Runs the configured passes in their fixed order over phases and plans.
pub struct PassManager {
    cfg: PassConfig,
}

impl PassManager {
    /// A manager for the given configuration.
    pub fn new(cfg: PassConfig) -> Self {
        PassManager { cfg }
    }

    /// The configured passes, in execution order.
    pub fn passes(&self) -> Vec<Box<dyn Pass>> {
        let mut out: Vec<Box<dyn Pass>> = Vec::new();
        if !self.cfg.enabled {
            return out;
        }
        if self.cfg.dead_comm {
            out.push(Box::new(DeadCommElim));
        }
        if self.cfg.coalesce {
            out.push(Box::new(CoalesceCopyReduce));
        }
        if self.cfg.fuse {
            out.push(Box::new(FuseCommLaunch));
        }
        if self.cfg.sink {
            out.push(Box::new(SinkCommWait));
        }
        out
    }

    /// Runs the pipeline over one phase. `label` tags the outcomes (`fwd`,
    /// `bwd`, `timing`); `protected` ops are left untouched.
    pub fn run_phase(
        &self,
        layout: &BatchLayout,
        phase: &mut PhasePlan,
        label: &str,
        protected: &HashSet<u32>,
    ) -> Vec<PassOutcome> {
        let cx = PassCx {
            layout,
            protected,
            fuse_threshold_bytes: self.cfg.fuse_threshold_bytes,
        };
        self.passes()
            .iter()
            .map(|p| {
                let mut o = p.run(phase, &cx);
                o.phase = label.to_string();
                o
            })
            .collect()
    }

    /// Runs the pipeline over both phases of a plan and refreshes the
    /// per-stream buffer statistics (the passes change arrival and release
    /// points, so the scheduler's accounting is stale afterwards).
    pub fn run_plan(
        &self,
        layout: &BatchLayout,
        placement: &Placement,
        plan: &mut ExecutionPlan,
    ) -> Vec<PassOutcome> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let none = HashSet::new();
        let mut out = self.run_phase(layout, &mut plan.fwd, "fwd", &none);
        out.extend(self.run_phase(layout, &mut plan.bwd, "bwd", &none));
        if out.iter().any(PassOutcome::changed) {
            for phase in [&mut plan.fwd, &mut plan.bwd] {
                for stream in &mut phase.devices {
                    let owned: Vec<u32> = (0..layout.token_blocks.len() as u32)
                        .filter(|&tb| placement.token_to_dev[tb as usize] == stream.device)
                        .collect();
                    stream.buffer =
                        compute_stats(layout, &phase.comms, stream.device, &stream.instrs, &owned);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferStats;
    use crate::plan::{CommId, CommOp, DeviceStream, Transfer};
    use crate::schedule::{build_plan, ScheduleConfig};
    use crate::verify::{verify_plan, verify_structure};
    use dcp_blocks::{BlockConfig, CompBlockId, TokenBlockId};
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout(seqs: &[(u32, MaskSpec)], bs: u32) -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: bs,
                head_blocks: 1,
            },
            seqs,
        )
        .unwrap()
    }

    fn ring_placement(l: &BatchLayout, n: u32) -> Placement {
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        }
    }

    fn small_case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    /// Comp blocks on their *kv* owner: forward partials and multi-item
    /// reduces exist.
    fn scatter_case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let n = 4;
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.kv_block.0 as usize])
            .collect();
        let p = Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        };
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    /// Every comp block on device 0, every token block on device 1: all of
    /// device 0's division fetches share the single-source route `{1}`, so
    /// launch fusion always has adjacent same-route candidates.
    fn fan_in_case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = layout(&[(2048, MaskSpec::Causal)], 512);
        let p = Placement {
            num_devices: 2,
            token_to_dev: vec![1; l.token_blocks.len()],
            comp_to_dev: vec![0; l.comp_blocks.len()],
        };
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    #[test]
    fn fuse_cap_is_inclusive_at_the_exact_boundary() {
        // The fusion guard is `combined <= fuse_threshold_bytes`: a pair
        // whose combined size equals the cap exactly must fuse, and one
        // byte less must not. Pin the default cap while at it.
        assert_eq!(PassConfig::default().fuse_threshold_bytes, 256 * 1024);
        let fuse_only = |threshold: u64| -> (ExecutionPlan, Vec<PassOutcome>) {
            let (l, p, mut plan) = fan_in_case();
            let pm = PassManager::new(PassConfig {
                enabled: true,
                dead_comm: false,
                coalesce: false,
                sink: false,
                fuse_threshold_bytes: threshold,
                ..PassConfig::default()
            });
            let none = HashSet::new();
            let outs = pm.run_phase(&l, &mut plan.fwd, "fwd", &none);
            verify_plan(&l, &p, &plan).unwrap();
            (plan, outs)
        };
        let (_, _, base) = fan_in_case();
        let orig: Vec<u64> = base.fwd.comms.iter().map(|c| c.bytes()).collect();
        // Unbounded dry run to locate the first fusion: `e` is the first op
        // emptied in pass scan order (first fused device, launch order), and
        // its head `h` is the op that now holds e's transfers. The first
        // merge into h happened while h still had its original size, so the
        // pair fused at exactly orig[h] + orig[e] combined bytes.
        let (maxed, outs) = fuse_only(u64::MAX);
        assert!(
            outs.iter().any(|o| o.ops_fused > 0),
            "fixture must fuse: {outs:?}"
        );
        let mut pair = None;
        'devices: for d in 0..base.fwd.devices.len() {
            for ins in &base.fwd.devices[d].instrs {
                let Instr::CommLaunch(cid) = ins else {
                    continue;
                };
                let e = cid.0 as usize;
                if maxed.fwd.comms[e].transfers.is_empty()
                    && !base.fwd.comms[e].transfers.is_empty()
                {
                    let moved = &base.fwd.comms[e].transfers[0];
                    let h = maxed
                        .fwd
                        .comms
                        .iter()
                        .position(|op| op.transfers.contains(moved))
                        .expect("some head holds the emptied op's transfers");
                    pair = Some((h, e));
                    break 'devices;
                }
            }
        }
        let (h, e) = pair.expect("a fused pair exists");
        let at_cap = orig[h] + orig[e];
        assert!(orig[h] > 0 && orig[e] > 0);

        // Threshold == combined size: the pair fuses, and the head stops
        // growing at exactly the cap (the next candidate would exceed it).
        let (fused, outs) = fuse_only(at_cap);
        assert!(outs.iter().any(|o| o.ops_fused > 0));
        assert!(
            fused.fwd.comms[e].transfers.is_empty(),
            "pair must fuse at exactly the cap"
        );
        assert_eq!(
            fused.fwd.comms[h].bytes(),
            at_cap,
            "head must stop growing at the cap"
        );

        // One byte under: that same pair must not fuse.
        let (unfused, _) = fuse_only(at_cap - 1);
        assert!(
            !unfused.fwd.comms[e].transfers.is_empty(),
            "pair must not fuse one byte under the cap"
        );
        assert_eq!(unfused.fwd.comms[h].bytes(), orig[h]);
    }

    #[test]
    fn pipeline_preserves_verifier_validity() {
        let (l, p, mut plan) = small_case();
        let pm = PassManager::new(PassConfig::optimize());
        let outcomes = pm.run_plan(&l, &p, &mut plan);
        assert!(!outcomes.is_empty());
        verify_plan(&l, &p, &plan).unwrap();
        verify_structure(&plan.fwd).unwrap();
        verify_structure(&plan.bwd).unwrap();
    }

    #[test]
    fn clean_streams_have_no_dead_comm() {
        // The scheduler deduplicates fetches and mirrors reductions exactly,
        // so dead-comm elimination must find nothing on a fresh plan.
        let (l, p, mut plan) = small_case();
        let before = plan.total_comm_bytes();
        let pm = PassManager::new(PassConfig {
            enabled: true,
            coalesce: false,
            fuse: false,
            sink: false,
            ..PassConfig::default()
        });
        let outs = pm.run_plan(&l, &p, &mut plan);
        assert_eq!(plan.total_comm_bytes(), before);
        assert!(outs.iter().all(|o| o.transfers_removed == 0), "{outs:?}");
    }

    #[test]
    fn dead_comm_removes_unwaited_transfer() {
        let (l, p, mut plan) = small_case();
        // Graft a transfer into device 0 on a brand-new op that only a
        // launch references — the wait was "truncated" (the recovery
        // prefetch shape).
        let tb = TokenBlockId(0);
        let from = p.token_to_dev[0];
        let to = (from + 1) % p.num_devices;
        let cid = CommId(plan.fwd.comms.len() as u32);
        plan.fwd.comms.push(CommOp {
            transfers: vec![Transfer {
                from,
                to,
                payload: Payload::Q(tb),
                bytes: 999,
            }],
        });
        plan.fwd.devices[to as usize]
            .instrs
            .insert(0, Instr::CommLaunch(cid));
        let before = plan.fwd.total_comm_bytes();
        let none = HashSet::new();
        let pm = PassManager::new(PassConfig::optimize());
        let outs = pm.run_phase(&l, &mut plan.fwd, "fwd", &none);
        assert_eq!(plan.fwd.total_comm_bytes(), before - 999);
        let dead: &PassOutcome = outs.iter().find(|o| o.pass == "dead_comm").unwrap();
        assert_eq!(dead.transfers_removed, 1);
        assert!(dead.instrs_removed >= 1, "dangling launch must be dropped");
        // Ops are never renumbered: the table keeps the emptied slot.
        assert!(plan.fwd.comms[cid.0 as usize].transfers.is_empty());
    }

    #[test]
    fn sink_moves_wait_to_latest_safe_point() {
        // A wait followed by instructions that do not read its payloads
        // (here a Copy) must sink to just before its first reader.
        let l = layout(&[(1024, MaskSpec::Causal)], 512);
        let c10 = l
            .comp_blocks
            .iter()
            .position(|c| c.q_block.0 == 1 && c.kv_block.0 == 0)
            .expect("causal layout has the (q1, kv0) comp block");
        let mut phase = PhasePlan {
            comms: vec![CommOp {
                transfers: vec![Transfer {
                    from: 0,
                    to: 1,
                    payload: Payload::Kv(TokenBlockId(0)),
                    bytes: 64,
                }],
            }],
            devices: vec![DeviceStream {
                device: 1,
                instrs: vec![
                    Instr::CommLaunch(CommId(0)),
                    Instr::CommWait(CommId(0)),
                    Instr::Copy { bytes: 1 },
                    Instr::Attn {
                        items: vec![CompBlockId(c10 as u32)],
                        flops: 1,
                    },
                ],
                buffer: BufferStats::default(),
            }],
        };
        let none = HashSet::new();
        let pm = PassManager::new(PassConfig {
            enabled: true,
            dead_comm: false,
            coalesce: false,
            fuse: false,
            ..PassConfig::default()
        });
        let outs = pm.run_phase(&l, &mut phase, "fwd", &none);
        let sunk: &PassOutcome = outs.iter().find(|o| o.pass == "sink_wait").unwrap();
        assert_eq!(sunk.waits_sunk, 1);
        assert!(
            matches!(
                phase.devices[0].instrs.as_slice(),
                [
                    Instr::CommLaunch(_),
                    Instr::Copy { .. },
                    Instr::CommWait(_),
                    Instr::Attn { .. },
                ]
            ),
            "{:?}",
            phase.devices[0].instrs
        );
    }

    #[test]
    fn sink_preserves_validity_on_real_plan() {
        let (l, p, mut plan) = scatter_case();
        let none = HashSet::new();
        let pm = PassManager::new(PassConfig {
            enabled: true,
            dead_comm: false,
            coalesce: false,
            fuse: false,
            ..PassConfig::default()
        });
        let outs = pm.run_phase(&l, &mut plan.fwd, "fwd", &none);
        let _ = pm.run_phase(&l, &mut plan.bwd, "bwd", &none);
        verify_plan(&l, &p, &plan).unwrap();
        let sunk: &PassOutcome = outs.iter().find(|o| o.pass == "sink_wait").unwrap();
        assert_eq!(sunk.comm_bytes_before, sunk.comm_bytes_after);
    }

    #[test]
    fn coalesce_merges_split_reduce() {
        let (l, p, mut plan) = scatter_case();
        // Split a fused reduce into two adjacent halves; the pass must glue
        // them back together with item order preserved.
        let mut split_dev = None;
        for (d, stream) in plan.fwd.devices.iter_mut().enumerate() {
            if let Some(i) = stream
                .instrs
                .iter()
                .position(|ins| matches!(ins, Instr::Reduce { items, .. } if items.len() >= 2))
            {
                let Instr::Reduce { items, bytes } = stream.instrs.remove(i) else {
                    unreachable!()
                };
                let mid = items.len() / 2;
                let (a, b) = (items[..mid].to_vec(), items[mid..].to_vec());
                stream.instrs.insert(
                    i,
                    Instr::Reduce {
                        items: b,
                        bytes: bytes / 2,
                    },
                );
                stream.instrs.insert(
                    i,
                    Instr::Reduce {
                        items: a,
                        bytes: bytes - bytes / 2,
                    },
                );
                split_dev = Some(d);
                break;
            }
        }
        let Some(d) = split_dev else {
            panic!("expected a multi-item reduce to split");
        };
        let expected_items = {
            let mut items = Vec::new();
            for ins in &plan.fwd.devices[d].instrs {
                if let Instr::Reduce { items: it, .. } = ins {
                    items.extend(it.clone());
                }
            }
            items
        };
        let none = HashSet::new();
        let pm = PassManager::new(PassConfig {
            enabled: true,
            dead_comm: false,
            fuse: false,
            sink: false,
            ..PassConfig::default()
        });
        let outs = pm.run_phase(&l, &mut plan.fwd, "fwd", &none);
        let co: &PassOutcome = outs.iter().find(|o| o.pass == "coalesce").unwrap();
        assert_eq!(co.reduces_coalesced, 1);
        let reduces: Vec<_> = plan.fwd.devices[d]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Reduce { .. }))
            .collect();
        assert_eq!(reduces.len(), 1);
        if let Instr::Reduce { items, .. } = reduces[0] {
            assert_eq!(*items, expected_items, "item order must be preserved");
        }
        verify_plan(&l, &p, &plan).unwrap();
    }

    #[test]
    fn fuse_respects_threshold_and_route() {
        let (l, p, mut plan) = small_case();
        let none = HashSet::new();
        let pm = PassManager::new(PassConfig {
            enabled: true,
            dead_comm: false,
            coalesce: false,
            sink: false,
            fuse_threshold_bytes: u64::MAX,
            ..PassConfig::default()
        });
        let outs = pm.run_phase(&l, &mut plan.fwd, "fwd", &none);
        let fu: &PassOutcome = outs.iter().find(|o| o.pass == "fuse_launch").unwrap();
        // Whatever fused, the result must still verify and keep its bytes.
        assert_eq!(fu.comm_bytes_before, fu.comm_bytes_after);
        verify_plan(&l, &p, &plan).unwrap();

        // With a zero threshold nothing ever fuses.
        let (l2, _p2, mut plan2) = small_case();
        let pm0 = PassManager::new(PassConfig {
            enabled: true,
            dead_comm: false,
            coalesce: false,
            sink: false,
            fuse_threshold_bytes: 0,
            ..PassConfig::default()
        });
        let outs0 = pm0.run_phase(&l2, &mut plan2.fwd, "fwd", &none);
        assert!(outs0.iter().all(|o| o.ops_fused == 0));
    }

    #[test]
    fn disabled_pipeline_is_identity() {
        let (l, p, mut plan) = small_case();
        let orig = plan.clone();
        let pm = PassManager::new(PassConfig::default());
        let outs = pm.run_plan(&l, &p, &mut plan);
        assert!(outs.is_empty());
        assert_eq!(plan, orig);
    }

    #[test]
    fn protected_ops_are_untouched() {
        let (l, _p, mut plan) = small_case();
        // Protect every op: the pipeline must not delete or move any comm
        // instruction.
        let all: HashSet<u32> = (0..plan.fwd.comms.len() as u32).collect();
        let comm_idx = |phase: &PhasePlan| -> Vec<Vec<Instr>> {
            phase
                .devices
                .iter()
                .map(|s| {
                    s.instrs
                        .iter()
                        .filter(|i| matches!(i, Instr::CommLaunch(_) | Instr::CommWait(_)))
                        .cloned()
                        .collect()
                })
                .collect()
        };
        let before = comm_idx(&plan.fwd);
        let pm = PassManager::new(PassConfig::optimize());
        pm.run_phase(&l, &mut plan.fwd, "fwd", &all);
        assert_eq!(comm_idx(&plan.fwd), before);
    }

    #[test]
    fn outcome_serializes() {
        let o = PassOutcome {
            pass: "dead_comm".into(),
            phase: "fwd".into(),
            comm_bytes_before: 10,
            comm_bytes_after: 4,
            transfers_removed: 2,
            ..PassOutcome::default()
        };
        let s = serde_json::to_string(&o).unwrap();
        let back: PassOutcome = serde_json::from_str(&s).unwrap();
        assert_eq!(o, back);
        assert_eq!(back.comm_bytes_saved(), 6);
        assert!(back.changed());
    }
}
