//! Stream verifier: a symbolic interpreter over rendered instruction
//! streams.
//!
//! The verifier mirrors the numerical executor's legality rules — deposit
//! rules at `CommLaunch`, arrival rules at `CommWait`, input availability at
//! `Attn`/`AttnBwd`, partial availability at `Reduce`, round-robin progress
//! — without touching any data, so it runs in microseconds per plan and can
//! gate every planner output and every recovery-patch rendering. Where the
//! executor would return an opaque [`dcp_types::DcpError::InvalidPlan`] or
//! deadlock, the verifier returns a typed [`Diagnostic`] naming the
//! violated rule, the offending device and the instruction index.
//!
//! Three entry points:
//!
//! - [`verify_plan`]: both phases of an [`ExecutionPlan`] against its layout
//!   and placement (normal planner outputs).
//! - [`verify_phase`]: one phase with an explicit [`VerifyCtx`], encoding
//!   the relaxed ownership rules of a recovery patch plan (salvage ops,
//!   re-owned blocks, shard-deposited partials) exactly as
//!   `dcp_exec::executor::execute_forward_recovery` interprets them.
//! - [`verify_structure`]: launch/wait/deposit structure only, for streams
//!   with no logical placement (a recovery patch's host-folded `timing`
//!   plan, whose self-transfers are filtered and whose waits may legally
//!   receive nothing after folding).

use std::collections::{HashMap, HashSet};
use std::fmt;

use dcp_blocks::{BatchLayout, TokenBlockId};
use serde::{Deserialize, Serialize};

use crate::placement::Placement;
use crate::plan::{ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan};

/// Which legality rule a stream violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A `CommLaunch`/`CommWait` references a comm id outside the op table.
    CommIdOutOfRange,
    /// An input-only op is waited by a device that never launched it
    /// (input fetches are receiver-launched).
    WaitWithoutLaunch,
    /// A device waits on an op that sends it nothing.
    WaitReceivesNothing,
    /// An attention instruction reads a Q/KV/dO block that is neither local
    /// nor arrived.
    MissingInput,
    /// A reduction reads a partial that never arrived (or arrived as a raw
    /// salvage accumulator rather than a finalized partial).
    MissingPartial,
    /// A device launches a partial it has not computed yet.
    MissingProducerState,
    /// An instruction's direction or payload kind contradicts the phase.
    WrongPhase,
    /// A computation block executes on a device other than its placement.
    WrongDevice,
    /// A computation block is scheduled more than once.
    DuplicateCompute,
    /// A computation block is never scheduled.
    MissingCompute,
    /// A transfer's endpoints contradict ownership/producer records.
    BadRoute,
    /// A transfer sends a device data it already holds.
    SelfTransfer,
    /// A salvage op installs an accumulator the device already has.
    DuplicateSalvage,
    /// No device can make progress (circular or absent dependencies).
    Deadlock,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::CommIdOutOfRange => "comm-id-out-of-range",
            ViolationKind::WaitWithoutLaunch => "wait-without-launch",
            ViolationKind::WaitReceivesNothing => "wait-receives-nothing",
            ViolationKind::MissingInput => "missing-input",
            ViolationKind::MissingPartial => "missing-partial",
            ViolationKind::MissingProducerState => "missing-producer-state",
            ViolationKind::WrongPhase => "wrong-phase",
            ViolationKind::WrongDevice => "wrong-device",
            ViolationKind::DuplicateCompute => "duplicate-compute",
            ViolationKind::MissingCompute => "missing-compute",
            ViolationKind::BadRoute => "bad-route",
            ViolationKind::SelfTransfer => "self-transfer",
            ViolationKind::DuplicateSalvage => "duplicate-salvage",
            ViolationKind::Deadlock => "deadlock",
        };
        f.write_str(s)
    }
}

/// A typed verifier rejection: the violated rule, where it anchors in the
/// streams (device rank and instruction index, when the violation has a
/// stream position), and a human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The violated rule.
    pub kind: ViolationKind,
    /// Device whose stream violates the rule, if anchored.
    pub device: Option<u32>,
    /// Index of the offending instruction in that device's stream, if
    /// anchored.
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn at(kind: ViolationKind, device: u32, instr: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            device: Some(device),
            instr: Some(instr),
            message: message.into(),
        }
    }

    fn phase_level(kind: ViolationKind, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            device: None,
            instr: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.kind)?;
        if let (Some(d), Some(i)) = (self.device, self.instr) {
            write!(f, "device {d} instr {i}: ")?;
        } else if let Some(d) = self.device {
            write!(f, "device {d}: ")?;
        }
        f.write_str(&self.message)
    }
}

/// Result alias for verifier entry points.
pub type VerifyResult = Result<(), Diagnostic>;

/// Recovery semantics for [`verify_phase`], mirroring the executor's
/// `SalvageCtx`. The default context encodes a normal (non-recovery) plan.
#[derive(Debug, Clone, Default)]
pub struct VerifyCtx {
    /// Dead logical streams of a recovery patch: the failed physical
    /// rank(s) plus any recovery-shard streams they were hosting when they
    /// died (cascading failures compose patches, so more than one stream
    /// can be dead at once).
    pub failed: HashSet<u32>,
    /// Comm ids carrying raw accumulators from a dead stream to its
    /// replacement shards.
    pub salvage_comms: HashSet<u32>,
    /// Shard that deposits each outstanding forward partial under the
    /// original comm id, keyed by `(token block, original producer)` — the
    /// payload's producer field still names the dead stream, and two dead
    /// streams may hold distinct partials for the same token block.
    pub producer_of: HashMap<(TokenBlockId, u32), u32>,
    /// Shard that deposits each outstanding backward dQ partial under the
    /// original comm id, keyed by `(token block, original producer)`.
    pub producer_of_dq: HashMap<(TokenBlockId, u32), u32>,
    /// Shard that deposits each outstanding backward dKV partial under the
    /// original comm id, keyed by `(token block, original producer)`.
    pub producer_of_dkv: HashMap<(TokenBlockId, u32), u32>,
    /// Token blocks re-owned away from dead streams; their truncated
    /// prefixes may still read them locally.
    pub reowned: HashSet<TokenBlockId>,
}

impl VerifyCtx {
    fn is_failed(&self, dev: u32) -> bool {
        self.failed.contains(&dev)
    }
}

/// What each instruction of one device's stream reads from arrived data.
/// Shared by the verifier and the passes (dead-comm, wait sinking).
pub(crate) fn instr_reads(layout: &BatchLayout, ins: &Instr, out: &mut HashSet<Payload>) {
    match ins {
        Instr::Attn { items, .. } => {
            for &c in items {
                let cb = &layout.comp_blocks[c.0 as usize];
                out.insert(Payload::Q(cb.q_block));
                out.insert(Payload::Kv(cb.kv_block));
            }
        }
        Instr::AttnBwd { items, .. } => {
            for &c in items {
                let cb = &layout.comp_blocks[c.0 as usize];
                out.insert(Payload::Q(cb.q_block));
                out.insert(Payload::Kv(cb.kv_block));
                out.insert(Payload::DO(cb.q_block));
            }
        }
        Instr::Reduce { items, .. } => {
            for item in items {
                for &src in &item.sources {
                    let p = match item.kind {
                        PayloadKind::PartialO => Payload::PartialO(item.target, src),
                        PayloadKind::PartialDq => Payload::PartialDq(item.target, src),
                        PayloadKind::PartialDkv => Payload::PartialDkv(item.target, src),
                        _ => continue,
                    };
                    out.insert(p);
                }
            }
        }
        _ => {}
    }
}

/// Verifies both phases of a plan against its layout and placement with
/// normal (non-recovery) semantics.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] encountered.
pub fn verify_plan(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
) -> VerifyResult {
    let ctx = VerifyCtx::default();
    verify_phase(layout, placement, &plan.fwd, false, &ctx)?;
    verify_phase(layout, placement, &plan.bwd, true, &ctx)
}

/// Symbolic state of one phase verification.
struct SymState {
    /// Per device: payloads that have arrived, flagged raw-accumulator.
    avail: Vec<HashMap<Payload, bool>>,
    /// In-flight deposits keyed `(comm id, payload)`, flagged
    /// raw-accumulator.
    mailbox: HashMap<(u32, Payload), bool>,
    /// Per device: forward accumulators / backward dQ / backward dKV state.
    acc: Vec<HashSet<TokenBlockId>>,
    dq: Vec<HashSet<TokenBlockId>>,
    dkv: Vec<HashSet<TokenBlockId>>,
    /// Per device: comm ids launched so far.
    launched: Vec<HashSet<u32>>,
    /// Computation blocks executed so far.
    seen: Vec<bool>,
}

/// Verifies one phase with explicit recovery semantics, mirroring the
/// executor instruction by instruction (round-robin progress, deposit and
/// arrival rules, accumulator state).
///
/// # Errors
///
/// Returns the first [`Diagnostic`] encountered; blocked progress surfaces
/// as [`ViolationKind::Deadlock`] anchored at the first stalled device.
// The round-robin executor indexes `ip` and `phase.devices` in lockstep.
#[allow(clippy::needless_range_loop)]
pub fn verify_phase(
    layout: &BatchLayout,
    placement: &Placement,
    phase: &PhasePlan,
    backward: bool,
    ctx: &VerifyCtx,
) -> VerifyResult {
    let n = phase.devices.len();
    let mut st = SymState {
        avail: vec![HashMap::new(); n],
        mailbox: HashMap::new(),
        acc: vec![HashSet::new(); n],
        dq: vec![HashSet::new(); n],
        dkv: vec![HashSet::new(); n],
        launched: vec![HashSet::new(); n],
        seen: vec![false; layout.comp_blocks.len()],
    };
    let mut ip = vec![0usize; n];
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for d in 0..n {
            loop {
                let idx = ip[d];
                let Some(ins) = phase.devices[d].instrs.get(idx) else {
                    break;
                };
                all_done = false;
                if step(
                    layout, placement, phase, backward, ctx, &mut st, d as u32, idx, ins,
                )? {
                    ip[d] += 1;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            let d = (0..n)
                .find(|&d| ip[d] < phase.devices[d].instrs.len())
                .expect("some device is blocked");
            return Err(Diagnostic::at(
                ViolationKind::Deadlock,
                phase.devices[d].device,
                ip[d],
                "no device can make progress (missing launch or circular wait)",
            ));
        }
    }
    // Coverage: every computation block executed exactly once, on its
    // assigned device (duplicates and wrong devices are caught in-stream).
    if let Some(missing) = st.seen.iter().position(|&s| !s) {
        return Err(Diagnostic::phase_level(
            ViolationKind::MissingCompute,
            format!("comp block {missing} never scheduled in this phase"),
        ));
    }
    Ok(())
}

/// Kinds of payload legal in each phase direction.
fn kind_in_phase(kind: PayloadKind, backward: bool) -> bool {
    match kind {
        PayloadKind::Q | PayloadKind::Kv => true,
        PayloadKind::PartialO => !backward,
        PayloadKind::DO | PayloadKind::PartialDq | PayloadKind::PartialDkv => backward,
    }
}

/// Executes one symbolic instruction; `Ok(false)` means blocked on a wait.
#[allow(clippy::too_many_arguments)]
fn step(
    layout: &BatchLayout,
    placement: &Placement,
    phase: &PhasePlan,
    backward: bool,
    ctx: &VerifyCtx,
    st: &mut SymState,
    dev: u32,
    idx: usize,
    ins: &Instr,
) -> Result<bool, Diagnostic> {
    let d = dev as usize;
    match ins {
        Instr::CommLaunch(cid) => {
            if cid.0 as usize >= phase.comms.len() {
                return Err(Diagnostic::at(
                    ViolationKind::CommIdOutOfRange,
                    dev,
                    idx,
                    format!("launch of comm id {} outside op table", cid.0),
                ));
            }
            let op = &phase.comms[cid.0 as usize];
            // Route checks for every transfer of the op (anchored at the
            // launch, the first stream position that references the op).
            for tr in &op.transfers {
                if tr.from == tr.to {
                    return Err(Diagnostic::at(
                        ViolationKind::SelfTransfer,
                        dev,
                        idx,
                        format!(
                            "op {} transfer {:?} sends a device its own data",
                            cid.0, tr.payload
                        ),
                    ));
                }
                if !kind_in_phase(tr.payload.kind(), backward) {
                    return Err(Diagnostic::at(
                        ViolationKind::WrongPhase,
                        dev,
                        idx,
                        format!(
                            "op {} carries {:?} in the {} phase",
                            cid.0,
                            tr.payload.kind(),
                            if backward { "backward" } else { "forward" }
                        ),
                    ));
                }
                let tb = tr.payload.token_block();
                let owner = placement.token_dev(tb);
                let ok = match tr.payload {
                    Payload::Q(_) | Payload::Kv(_) | Payload::DO(_) => {
                        tr.from == owner || (ctx.is_failed(tr.from) && ctx.reowned.contains(&tb))
                    }
                    Payload::PartialO(_, p)
                    | Payload::PartialDq(_, p)
                    | Payload::PartialDkv(_, p) => {
                        tr.from == p && (tr.to == owner || ctx.salvage_comms.contains(&cid.0))
                    }
                };
                if !ok {
                    return Err(Diagnostic::at(
                        ViolationKind::BadRoute,
                        dev,
                        idx,
                        format!("op {} transfer {tr:?} inconsistent with ownership", cid.0),
                    ));
                }
            }
            // Deposits, exactly as the executor performs them.
            for tr in &op.transfers {
                let tb = tr.payload.token_block();
                let deposit = match tr.payload {
                    Payload::Q(_) | Payload::Kv(_) | Payload::DO(_) => tr.to == dev,
                    Payload::PartialO(_, p) if !backward => {
                        tr.from == dev
                            || (ctx.is_failed(tr.from)
                                && ctx.producer_of.get(&(tb, p)) == Some(&dev))
                    }
                    Payload::PartialDq(_, p) if backward => {
                        tr.from == dev
                            || (ctx.is_failed(tr.from)
                                && ctx.producer_of_dq.get(&(tb, p)) == Some(&dev))
                    }
                    Payload::PartialDkv(_, p) if backward => {
                        tr.from == dev
                            || (ctx.is_failed(tr.from)
                                && ctx.producer_of_dkv.get(&(tb, p)) == Some(&dev))
                    }
                    _ => false,
                };
                if !deposit {
                    continue;
                }
                match tr.payload {
                    Payload::Q(_) | Payload::Kv(_) | Payload::DO(_) => {
                        st.mailbox.insert((cid.0, tr.payload), false);
                    }
                    Payload::PartialO(..) => {
                        if !st.acc[d].contains(&tb) {
                            return Err(Diagnostic::at(
                                ViolationKind::MissingProducerState,
                                dev,
                                idx,
                                format!("sends partial O for {tb:?} it never computed"),
                            ));
                        }
                        let is_acc = ctx.salvage_comms.contains(&cid.0);
                        st.mailbox.insert((cid.0, tr.payload), is_acc);
                    }
                    Payload::PartialDq(..) => {
                        if !st.dq[d].contains(&tb) {
                            return Err(Diagnostic::at(
                                ViolationKind::MissingProducerState,
                                dev,
                                idx,
                                format!("sends dQ partial for {tb:?} it never computed"),
                            ));
                        }
                        let is_acc = ctx.salvage_comms.contains(&cid.0);
                        st.mailbox.insert((cid.0, tr.payload), is_acc);
                    }
                    Payload::PartialDkv(..) => {
                        if !st.dkv[d].contains(&tb) {
                            return Err(Diagnostic::at(
                                ViolationKind::MissingProducerState,
                                dev,
                                idx,
                                format!("sends dKV partial for {tb:?} it never computed"),
                            ));
                        }
                        let is_acc = ctx.salvage_comms.contains(&cid.0);
                        st.mailbox.insert((cid.0, tr.payload), is_acc);
                    }
                }
            }
            st.launched[d].insert(cid.0);
            Ok(true)
        }
        Instr::CommWait(cid) => {
            if cid.0 as usize >= phase.comms.len() {
                return Err(Diagnostic::at(
                    ViolationKind::CommIdOutOfRange,
                    dev,
                    idx,
                    format!("wait on comm id {} outside op table", cid.0),
                ));
            }
            let op = &phase.comms[cid.0 as usize];
            let incoming: Vec<Payload> = op
                .transfers
                .iter()
                .filter(|t| t.to == dev)
                .map(|t| t.payload)
                .collect();
            if incoming.is_empty() {
                return Err(Diagnostic::at(
                    ViolationKind::WaitReceivesNothing,
                    dev,
                    idx,
                    format!("waits on op {} that sends it nothing", cid.0),
                ));
            }
            // Input fetches are receiver-launched; a wait on an input-only
            // op without a prior launch in the same stream can never be
            // satisfied by another device.
            let input_only = op.transfers.iter().all(|t| {
                matches!(
                    t.payload.kind(),
                    PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO
                )
            });
            if input_only && !st.launched[d].contains(&cid.0) {
                return Err(Diagnostic::at(
                    ViolationKind::WaitWithoutLaunch,
                    dev,
                    idx,
                    format!("waits on input op {} before launching it", cid.0),
                ));
            }
            if incoming
                .iter()
                .any(|p| !st.mailbox.contains_key(&(cid.0, *p)))
            {
                return Ok(false);
            }
            for p in incoming {
                let is_acc = st.mailbox.remove(&(cid.0, p)).expect("checked present");
                st.avail[d].insert(p, is_acc);
            }
            if ctx.salvage_comms.contains(&cid.0) {
                for tr in op.transfers.iter().filter(|t| t.to == dev) {
                    let tb = tr.payload.token_block();
                    if st.avail[d].get(&tr.payload) == Some(&true) {
                        st.avail[d].remove(&tr.payload);
                        // Raw accumulators resume the dead stream's state:
                        // forward O/LSE accs, or backward dQ/dKV sums.
                        let target = match tr.payload {
                            Payload::PartialDq(..) => &mut st.dq[d],
                            Payload::PartialDkv(..) => &mut st.dkv[d],
                            _ => &mut st.acc[d],
                        };
                        if !target.insert(tb) {
                            return Err(Diagnostic::at(
                                ViolationKind::DuplicateSalvage,
                                dev,
                                idx,
                                format!("salvaged {tb:?} it already accumulates"),
                            ));
                        }
                    }
                }
            }
            Ok(true)
        }
        Instr::Attn { items, .. } => {
            if backward {
                return Err(Diagnostic::at(
                    ViolationKind::WrongPhase,
                    dev,
                    idx,
                    "forward attention in backward phase",
                ));
            }
            for &c in items {
                if placement.comp_dev(c) != dev {
                    return Err(Diagnostic::at(
                        ViolationKind::WrongDevice,
                        dev,
                        idx,
                        format!(
                            "comp block {c:?} belongs to device {}",
                            placement.comp_dev(c)
                        ),
                    ));
                }
                if st.seen[c.0 as usize] {
                    return Err(Diagnostic::at(
                        ViolationKind::DuplicateCompute,
                        dev,
                        idx,
                        format!("comp block {c:?} scheduled twice"),
                    ));
                }
                st.seen[c.0 as usize] = true;
                let cb = &layout.comp_blocks[c.0 as usize];
                let local = |tb: TokenBlockId| {
                    placement.token_dev(tb) == dev
                        || (ctx.is_failed(dev) && ctx.reowned.contains(&tb))
                };
                if !local(cb.q_block) && st.avail[d].get(&Payload::Q(cb.q_block)) != Some(&false) {
                    return Err(Diagnostic::at(
                        ViolationKind::MissingInput,
                        dev,
                        idx,
                        format!("computes {c:?} without Q({:?})", cb.q_block),
                    ));
                }
                if !local(cb.kv_block) && st.avail[d].get(&Payload::Kv(cb.kv_block)) != Some(&false)
                {
                    return Err(Diagnostic::at(
                        ViolationKind::MissingInput,
                        dev,
                        idx,
                        format!("computes {c:?} without KV({:?})", cb.kv_block),
                    ));
                }
                st.acc[d].insert(cb.q_block);
            }
            Ok(true)
        }
        Instr::AttnBwd { items, .. } => {
            if !backward {
                return Err(Diagnostic::at(
                    ViolationKind::WrongPhase,
                    dev,
                    idx,
                    "backward attention in forward phase",
                ));
            }
            for &c in items {
                if placement.comp_dev(c) != dev {
                    return Err(Diagnostic::at(
                        ViolationKind::WrongDevice,
                        dev,
                        idx,
                        format!(
                            "comp block {c:?} belongs to device {}",
                            placement.comp_dev(c)
                        ),
                    ));
                }
                if st.seen[c.0 as usize] {
                    return Err(Diagnostic::at(
                        ViolationKind::DuplicateCompute,
                        dev,
                        idx,
                        format!("comp block {c:?} scheduled twice"),
                    ));
                }
                st.seen[c.0 as usize] = true;
                let cb = &layout.comp_blocks[c.0 as usize];
                let local = |tb: TokenBlockId| {
                    placement.token_dev(tb) == dev
                        || (ctx.is_failed(dev) && ctx.reowned.contains(&tb))
                };
                let q_owned = local(cb.q_block);
                let kv_owned = local(cb.kv_block);
                if !q_owned && st.avail[d].get(&Payload::Q(cb.q_block)) != Some(&false) {
                    return Err(Diagnostic::at(
                        ViolationKind::MissingInput,
                        dev,
                        idx,
                        format!("bwd {c:?} without Q({:?})", cb.q_block),
                    ));
                }
                if !kv_owned && st.avail[d].get(&Payload::Kv(cb.kv_block)) != Some(&false) {
                    return Err(Diagnostic::at(
                        ViolationKind::MissingInput,
                        dev,
                        idx,
                        format!("bwd {c:?} without KV({:?})", cb.kv_block),
                    ));
                }
                if !q_owned && st.avail[d].get(&Payload::DO(cb.q_block)) != Some(&false) {
                    return Err(Diagnostic::at(
                        ViolationKind::MissingInput,
                        dev,
                        idx,
                        format!("bwd {c:?} without dO({:?})", cb.q_block),
                    ));
                }
                st.dq[d].insert(cb.q_block);
                st.dkv[d].insert(cb.kv_block);
            }
            Ok(true)
        }
        Instr::Reduce { items, .. } => {
            for item in items {
                let tb = item.target;
                let expect_kind = if backward {
                    matches!(item.kind, PayloadKind::PartialDq | PayloadKind::PartialDkv)
                } else {
                    item.kind == PayloadKind::PartialO
                };
                if !expect_kind {
                    return Err(Diagnostic::at(
                        ViolationKind::WrongPhase,
                        dev,
                        idx,
                        format!("reduce of {:?} in the wrong phase", item.kind),
                    ));
                }
                for &src in &item.sources {
                    let p = match item.kind {
                        PayloadKind::PartialO => Payload::PartialO(tb, src),
                        PayloadKind::PartialDq => Payload::PartialDq(tb, src),
                        PayloadKind::PartialDkv => Payload::PartialDkv(tb, src),
                        _ => unreachable!("checked above"),
                    };
                    if st.avail[d].get(&p) != Some(&false) {
                        return Err(Diagnostic::at(
                            ViolationKind::MissingPartial,
                            dev,
                            idx,
                            format!("reduces {tb:?} without partial from {src}"),
                        ));
                    }
                }
            }
            Ok(true)
        }
        Instr::Copy { .. } => Ok(true),
    }
}

/// Structural verification for streams with no logical placement (e.g. a
/// recovery patch's host-folded `timing` plan): comm ids in range, every
/// wait's incoming transfers deposited by some launch (receiver-launched
/// for inputs, sender-launched for partials), and round-robin progress
/// without deadlock. Waits that receive nothing are legal here — host
/// folding filters same-host transfers out of ops whose waits remain.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] encountered.
// The round-robin walk indexes `ip` and `phase.devices` in lockstep.
#[allow(clippy::needless_range_loop)]
pub fn verify_structure(phase: &PhasePlan) -> VerifyResult {
    let n = phase.devices.len();
    // Which devices launch each op (any position, any stream).
    let mut launchers: Vec<HashSet<u32>> = vec![HashSet::new(); phase.comms.len()];
    for stream in &phase.devices {
        for (idx, ins) in stream.instrs.iter().enumerate() {
            match ins {
                Instr::CommLaunch(cid) | Instr::CommWait(cid) => {
                    if cid.0 as usize >= phase.comms.len() {
                        return Err(Diagnostic::at(
                            ViolationKind::CommIdOutOfRange,
                            stream.device,
                            idx,
                            format!("comm id {} outside op table", cid.0),
                        ));
                    }
                    if matches!(ins, Instr::CommLaunch(_)) {
                        launchers[cid.0 as usize].insert(stream.device);
                    }
                }
                _ => {}
            }
        }
    }
    // A wait can only be satisfied if each of its incoming transfers has a
    // depositor: the receiver (inputs) or the sender (partials) launches
    // the op somewhere.
    for stream in &phase.devices {
        for (idx, ins) in stream.instrs.iter().enumerate() {
            let Instr::CommWait(cid) = ins else { continue };
            let op = &phase.comms[cid.0 as usize];
            for tr in op.transfers.iter().filter(|t| t.to == stream.device) {
                let depositor = match tr.payload.kind() {
                    PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO => tr.to,
                    _ => tr.from,
                };
                if !launchers[cid.0 as usize].contains(&depositor) {
                    return Err(Diagnostic::at(
                        ViolationKind::WaitWithoutLaunch,
                        stream.device,
                        idx,
                        format!(
                            "waits on op {} whose {:?} is never launched by device {depositor}",
                            cid.0, tr.payload
                        ),
                    ));
                }
            }
        }
    }
    // Round-robin progress with structural deposits.
    let mut mailbox: HashSet<(u32, Payload)> = HashSet::new();
    let mut ip = vec![0usize; n];
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for d in 0..n {
            let dev = phase.devices[d].device;
            loop {
                let idx = ip[d];
                let Some(ins) = phase.devices[d].instrs.get(idx) else {
                    break;
                };
                all_done = false;
                let ok = match ins {
                    Instr::CommLaunch(cid) => {
                        let op = &phase.comms[cid.0 as usize];
                        for tr in &op.transfers {
                            let depositor = match tr.payload.kind() {
                                PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO => tr.to,
                                _ => tr.from,
                            };
                            if depositor == dev {
                                mailbox.insert((cid.0, tr.payload));
                            }
                        }
                        true
                    }
                    Instr::CommWait(cid) => phase.comms[cid.0 as usize]
                        .transfers
                        .iter()
                        .filter(|t| t.to == dev)
                        .all(|t| mailbox.contains(&(cid.0, t.payload))),
                    _ => true,
                };
                if ok {
                    ip[d] += 1;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if all_done {
            return Ok(());
        }
        if !progressed {
            let d = (0..n)
                .find(|&d| ip[d] < phase.devices[d].instrs.len())
                .expect("some device is blocked");
            return Err(Diagnostic::at(
                ViolationKind::Deadlock,
                phase.devices[d].device,
                ip[d],
                "no device can make progress (missing launch or circular wait)",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CommId, CommOp, Transfer};
    use crate::schedule::{build_plan, ScheduleConfig};
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout(seqs: &[(u32, MaskSpec)], bs: u32) -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: bs,
                head_blocks: 1,
            },
            seqs,
        )
        .unwrap()
    }

    fn ring_placement(l: &BatchLayout, n: u32) -> Placement {
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        }
    }

    fn small_case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    /// Like [`small_case`] but with comp blocks on their *kv* owner, so
    /// forward partials (and reduces at the q owners) exist.
    fn scatter_case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let n = 4;
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.kv_block.0 as usize])
            .collect();
        let p = Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        };
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    #[test]
    fn accepts_scatter_plan_with_partials() {
        let (l, p, plan) = scatter_case();
        assert!(
            plan.fwd
                .comms
                .iter()
                .flat_map(|op| &op.transfers)
                .any(|t| matches!(t.payload, Payload::PartialO(..))),
            "fixture must exercise the partial/reduce path"
        );
        verify_plan(&l, &p, &plan).unwrap();
        verify_structure(&plan.fwd).unwrap();
        verify_structure(&plan.bwd).unwrap();
    }

    #[test]
    fn accepts_schedule_output() {
        let (l, p, plan) = small_case();
        verify_plan(&l, &p, &plan).unwrap();
        verify_structure(&plan.fwd).unwrap();
        verify_structure(&plan.bwd).unwrap();
    }

    #[test]
    fn accepts_all_local_plan() {
        let l = layout(&[(2048, MaskSpec::Causal)], 512);
        let p = Placement::all_on_zero(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        verify_plan(&l, &p, &plan).unwrap();
    }

    #[test]
    fn rejects_wait_before_launch_with_instr_index() {
        let (l, p, mut plan) = small_case();
        // Find a stream with a launch followed later by its wait, and swap
        // the wait to the front.
        let mut mutated = false;
        'outer: for stream in &mut plan.fwd.devices {
            for i in 0..stream.instrs.len() {
                if let Instr::CommLaunch(cid) = stream.instrs[i] {
                    let input_only = plan.fwd.comms[cid.0 as usize]
                        .transfers
                        .iter()
                        .all(|t| matches!(t.payload.kind(), PayloadKind::Q | PayloadKind::Kv));
                    if !input_only {
                        continue;
                    }
                    if let Some(j) = stream.instrs[i + 1..]
                        .iter()
                        .position(|x| *x == Instr::CommWait(cid))
                    {
                        let wait = stream.instrs.remove(i + 1 + j);
                        stream.instrs.insert(i, wait);
                        mutated = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(mutated, "expected an input launch/wait pair to mutate");
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert_eq!(err.kind, ViolationKind::WaitWithoutLaunch);
        assert!(err.instr.is_some(), "diagnostic must name the instruction");
    }

    #[test]
    fn rejects_duplicate_and_misplaced_compute() {
        let (l, p, mut plan) = small_case();
        let (d, i) = plan
            .fwd
            .devices
            .iter()
            .enumerate()
            .find_map(|(d, s)| {
                s.instrs
                    .iter()
                    .position(|ins| matches!(ins, Instr::Attn { .. }))
                    .map(|i| (d, i))
            })
            .unwrap();
        if let Instr::Attn { items, .. } = &mut plan.fwd.devices[d].instrs[i] {
            let c = items[0];
            items.push(c);
        }
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert_eq!(err.kind, ViolationKind::DuplicateCompute);
        assert_eq!(err.device, Some(d as u32));
        assert_eq!(err.instr, Some(i));
    }

    #[test]
    fn rejects_missing_transfer_as_missing_input() {
        let (l, p, mut plan) = small_case();
        // Remove one input transfer: the consuming Attn must be flagged.
        let mut removed = false;
        for op in &mut plan.fwd.comms {
            if let Some(pos) = op
                .transfers
                .iter()
                .position(|t| matches!(t.payload, Payload::Q(_) | Payload::Kv(_)))
            {
                op.transfers.remove(pos);
                removed = true;
                break;
            }
        }
        assert!(removed);
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert!(
            matches!(
                err.kind,
                ViolationKind::MissingInput | ViolationKind::WaitReceivesNothing
            ),
            "{err}"
        );
        assert!(err.instr.is_some());
    }

    #[test]
    fn rejects_out_of_range_comm_id() {
        let (l, p, mut plan) = small_case();
        let bogus = CommId(plan.fwd.comms.len() as u32 + 7);
        plan.fwd.devices[0].instrs.insert(0, Instr::CommWait(bogus));
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert_eq!(err.kind, ViolationKind::CommIdOutOfRange);
        assert_eq!(err.instr, Some(0));
    }

    #[test]
    fn rejects_bad_route_and_self_transfer() {
        let (l, p, mut plan) = small_case();
        let mut flipped = false;
        'outer: for op in &mut plan.fwd.comms {
            for tr in &mut op.transfers {
                if matches!(tr.payload, Payload::Q(_) | Payload::Kv(_)) {
                    tr.from = tr.to; // now a self transfer
                    flipped = true;
                    break 'outer;
                }
            }
        }
        assert!(flipped);
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert_eq!(err.kind, ViolationKind::SelfTransfer);
    }

    #[test]
    fn rejects_dropped_attn_as_missing_state() {
        let (l, p, mut plan) = small_case();
        let (d, i) = plan
            .fwd
            .devices
            .iter()
            .enumerate()
            .find_map(|(d, s)| {
                s.instrs
                    .iter()
                    .position(|ins| matches!(ins, Instr::Attn { .. }))
                    .map(|i| (d, i))
            })
            .unwrap();
        plan.fwd.devices[d].instrs.remove(i);
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert!(
            matches!(
                err.kind,
                ViolationKind::MissingProducerState
                    | ViolationKind::MissingCompute
                    | ViolationKind::MissingPartial
            ),
            "{err}"
        );
    }

    #[test]
    fn structural_catches_unlaunched_wait() {
        let phase = PhasePlan {
            comms: vec![CommOp {
                transfers: vec![Transfer {
                    from: 1,
                    to: 0,
                    payload: Payload::Q(TokenBlockId(0)),
                    bytes: 8,
                }],
            }],
            devices: vec![
                DeviceStreamBuilder::new(0).wait(0).build(),
                DeviceStreamBuilder::new(1).build(),
            ],
        };
        let err = verify_structure(&phase).unwrap_err();
        assert_eq!(err.kind, ViolationKind::WaitWithoutLaunch);
        assert_eq!(err.device, Some(0));
        assert_eq!(err.instr, Some(0));
    }

    #[test]
    fn diagnostic_serializes_and_displays() {
        let d = Diagnostic::at(ViolationKind::MissingInput, 3, 7, "no Q");
        let s = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
        let shown = d.to_string();
        assert!(shown.contains("missing-input"), "{shown}");
        assert!(shown.contains("device 3"), "{shown}");
        assert!(shown.contains("instr 7"), "{shown}");
    }

    /// Minimal stream builder for structural tests.
    struct DeviceStreamBuilder {
        device: u32,
        instrs: Vec<Instr>,
    }

    impl DeviceStreamBuilder {
        fn new(device: u32) -> Self {
            DeviceStreamBuilder {
                device,
                instrs: Vec::new(),
            }
        }
        fn wait(mut self, cid: u32) -> Self {
            self.instrs.push(Instr::CommWait(CommId(cid)));
            self
        }
        fn build(self) -> crate::plan::DeviceStream {
            crate::plan::DeviceStream {
                device: self.device,
                instrs: self.instrs,
                buffer: crate::buffer::BufferStats::default(),
            }
        }
    }

    #[test]
    fn reduce_missing_partial_is_typed() {
        let (l, p, mut plan) = scatter_case();
        // Drop a source's partial transfer from an out op while keeping the
        // reduce item: the owner's reduce must be flagged.
        let mut dropped = false;
        'outer: for op in &mut plan.fwd.comms {
            for pos in 0..op.transfers.len() {
                if matches!(op.transfers[pos].payload, Payload::PartialO(..)) {
                    op.transfers.remove(pos);
                    dropped = true;
                    break 'outer;
                }
            }
        }
        assert!(dropped, "expected a partial transfer in the forward phase");
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert!(
            matches!(
                err.kind,
                ViolationKind::MissingPartial | ViolationKind::WaitReceivesNothing
            ),
            "{err}"
        );
    }

    #[test]
    fn reduce_items_are_checked_against_arrivals() {
        let (l, p, mut plan) = scatter_case();
        // Add a phantom source to a reduce: no transfer carries it.
        let mut added = false;
        'outer: for stream in &mut plan.fwd.devices {
            let dev = stream.device;
            for ins in &mut stream.instrs {
                if let Instr::Reduce { items, .. } = ins {
                    for item in items.iter_mut() {
                        if let Some(phantom) =
                            (0..p.num_devices).find(|d| !item.sources.contains(d) && *d != dev)
                        {
                            item.sources.push(phantom);
                            added = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(added, "expected a reduce item with a free phantom source");
        let err = verify_plan(&l, &p, &plan).unwrap_err();
        assert_eq!(err.kind, ViolationKind::MissingPartial);
    }
}
